//! Golden-equivalence suite for the step-based `Solver`/`Session` API.
//!
//! `tests/golden/solvers.golden` was captured from the **pre-refactor**
//! monolithic drivers (`run_bismo`, `run_am_smo`, `run_abbe_mo`,
//! `run_nilt_proxy`, `run_milt_proxy`) on the quick fixture. Every entry
//! records the trace length, the final loss as exact `f64` bits, and FNV-1a
//! hashes over the full θ_J / θ_M vectors' bit patterns — so a comparison
//! failure means the optimization arithmetic changed, not just a tolerance.
//!
//! Three suites check against the same file:
//!
//! 1. the deprecated `run_*` shims (now thin wrappers over `Session`);
//! 2. registry-constructed `Session` runs under equivalent `SolverConfig`s;
//! 3. the same sessions **paused and resumed mid-run** (`run_steps`), which
//!    must not perturb a single bit.
//!
//! To regenerate after a *deliberate* numeric change:
//!
//! ```sh
//! BISMO_BLESS=1 cargo test --release --test solver_golden
//! ```

#![allow(deprecated)]

use bismo::prelude::*;

/// FNV-1a over the exact bit patterns of a float slice.
fn hash_f64s(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[derive(Debug, PartialEq, Eq, Clone)]
struct Golden {
    name: String,
    trace_len: usize,
    loss_bits: u64,
    theta_j_hash: u64,
    theta_m_hash: u64,
}

impl Golden {
    fn from_parts(name: &str, trace: &ConvergenceTrace, tj: &[f64], tm: &RealField) -> Golden {
        Golden {
            name: name.to_string(),
            trace_len: trace.len(),
            loss_bits: trace.final_loss().expect("non-empty trace").to_bits(),
            theta_j_hash: hash_f64s(tj),
            theta_m_hash: hash_f64s(tm.as_slice()),
        }
    }

    fn render(&self) -> String {
        format!(
            "{}|{}|{:016x}|{:016x}|{:016x}",
            self.name, self.trace_len, self.loss_bits, self.theta_j_hash, self.theta_m_hash
        )
    }

    fn parse(line: &str) -> Option<Golden> {
        let mut it = line.split('|');
        Some(Golden {
            name: it.next()?.to_string(),
            trace_len: it.next()?.parse().ok()?,
            loss_bits: u64::from_str_radix(it.next()?, 16).ok()?,
            theta_j_hash: u64::from_str_radix(it.next()?, 16).ok()?,
            theta_m_hash: u64::from_str_radix(it.next()?, 16).ok()?,
        })
    }
}

fn fixture() -> (SmoProblem, Vec<f64>, RealField) {
    let cfg = OpticalConfig::test_small();
    let clip = Clip::simple_rect(&cfg);
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target).unwrap();
    let tj = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let tm = problem.init_theta_m();
    (problem, tj, tm)
}

/// The golden run matrix: small budgets, but every control-flow path —
/// plain budgets, plateau stops, AM phase stops, the MILT step-size
/// schedule, and all three hypergradients.
fn legacy_outcomes() -> Vec<Golden> {
    let (problem, tj0, tm0) = fixture();
    let template = problem.source(&tj0);
    let mut out = Vec::new();

    let mo = |steps: usize, stop: Option<StopRule>| MoConfig {
        steps,
        lr: 0.1,
        kind: OptimizerKind::Adam,
        stop,
    };

    let r = run_abbe_mo(&problem, &tj0, &tm0, mo(6, None)).unwrap();
    out.push(Golden::from_parts("abbe-mo", &r.trace, &tj0, &r.theta_m));

    let r = run_abbe_mo(
        &problem,
        &tj0,
        &tm0,
        mo(
            40,
            Some(StopRule {
                window: 3,
                rel_tol: 0.5,
            }),
        ),
    )
    .unwrap();
    out.push(Golden::from_parts(
        "abbe-mo-stop",
        &r.trace,
        &tj0,
        &r.theta_m,
    ));

    let r = run_nilt_proxy(
        problem.abbe().core(),
        problem.settings(),
        problem.target(),
        &template,
        mo(5, None),
    )
    .unwrap();
    out.push(Golden::from_parts("nilt", &r.trace, &tj0, &r.theta_m));

    let r = run_milt_proxy(
        problem.abbe().core(),
        problem.settings(),
        problem.target(),
        &template,
        mo(6, None),
    )
    .unwrap();
    out.push(Golden::from_parts("milt", &r.trace, &tj0, &r.theta_m));

    let r = run_am_smo(
        &problem,
        &tj0,
        &tm0,
        AmSmoConfig {
            rounds: 2,
            so_steps: 3,
            mo_steps: 3,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Abbe,
            stop: None,
            phase_stop: None,
        },
    )
    .unwrap();
    out.push(Golden::from_parts(
        "am-abbe", &r.trace, &r.theta_j, &r.theta_m,
    ));

    let r = run_am_smo(
        &problem,
        &tj0,
        &tm0,
        AmSmoConfig {
            rounds: 2,
            so_steps: 5,
            mo_steps: 5,
            lr: 0.2,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Hopkins { q: 12 },
            stop: Some(StopRule::harness_default()),
            phase_stop: Some(StopRule {
                window: 2,
                rel_tol: 1e-3,
            }),
        },
    )
    .unwrap();
    out.push(Golden::from_parts(
        "am-hybrid",
        &r.trace,
        &r.theta_j,
        &r.theta_m,
    ));

    let bismo = |outer: usize, method: HypergradMethod, stop: Option<StopRule>| BismoConfig {
        outer_steps: outer,
        unroll_t: 2,
        xi_j: 0.1,
        xi_m: 0.2,
        method,
        kind_m: OptimizerKind::Adam,
        kind_j: OptimizerKind::Adam,
        hvp_eps: 1e-2,
        stop,
    };
    let r = run_bismo(
        &problem,
        &tj0,
        &tm0,
        bismo(4, HypergradMethod::FiniteDiff, None),
    )
    .unwrap();
    out.push(Golden::from_parts(
        "bismo-fd", &r.trace, &r.theta_j, &r.theta_m,
    ));

    let r = run_bismo(
        &problem,
        &tj0,
        &tm0,
        bismo(3, HypergradMethod::Neumann { k: 2 }, None),
    )
    .unwrap();
    out.push(Golden::from_parts(
        "bismo-nmn",
        &r.trace,
        &r.theta_j,
        &r.theta_m,
    ));

    let r = run_bismo(
        &problem,
        &tj0,
        &tm0,
        bismo(3, HypergradMethod::ConjGrad { k: 2 }, None),
    )
    .unwrap();
    out.push(Golden::from_parts(
        "bismo-cg", &r.trace, &r.theta_j, &r.theta_m,
    ));

    let r = run_bismo(
        &problem,
        &tj0,
        &tm0,
        bismo(
            30,
            HypergradMethod::FiniteDiff,
            Some(StopRule {
                window: 3,
                rel_tol: 0.5,
            }),
        ),
    )
    .unwrap();
    out.push(Golden::from_parts(
        "bismo-stop",
        &r.trace,
        &r.theta_j,
        &r.theta_m,
    ));

    out
}

fn golden_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("solvers.golden")
}

fn load_golden() -> Vec<Golden> {
    let text = std::fs::read_to_string(golden_path())
        .expect("tests/golden/solvers.golden missing — run with BISMO_BLESS=1 to capture");
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| Golden::parse(l).expect("malformed golden line"))
        .collect()
}

fn bless_requested() -> bool {
    std::env::var("BISMO_BLESS").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

fn check_against_golden(kind: &str, got: Vec<Golden>) {
    let want = load_golden();
    assert_eq!(
        got.len(),
        want.len(),
        "{kind}: golden entry count changed — bless deliberately if so"
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(
            g,
            w,
            "{kind} diverges from the pre-refactor driver on {:?}:\n  got  {}\n  want {}",
            w.name,
            g.render(),
            w.render()
        );
    }
}

/// The session-side mirror of [`legacy_outcomes`]: the same ten runs,
/// expressed as registry lookups over equivalent `SolverConfig`s. When
/// `pause` is set, every session is interrupted twice mid-run (after 1 and
/// 3 more steps) before being driven to completion.
fn session_outcomes(pause: bool) -> Vec<Golden> {
    let (problem, tj0, tm0) = fixture();
    let registry = SolverRegistry::builtin();
    let mut out = Vec::new();

    let drive = |name: &str, method: &str, cfg: &SolverConfig, out: &mut Vec<Golden>| {
        let mut session = registry
            .session_with_init(method, &problem, cfg, tj0.clone(), tm0.clone())
            .expect("registry session");
        if pause {
            // Interrupt twice; resuming must be bit-identical.
            session.run_steps(1).expect(method);
            session.run_steps(3).expect(method);
        }
        session.run().expect(method);
        let o = session.into_outcome();
        out.push(Golden::from_parts(name, &o.trace, &o.theta_j, &o.theta_m));
    };

    let plain_stop = Some(StopRule {
        window: 3,
        rel_tol: 0.5,
    });

    let mut mo_cfg = SolverConfig::default();
    mo_cfg.mo.steps = 6;
    drive("abbe-mo", "Abbe-MO", &mo_cfg, &mut out);

    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 40;
    cfg.stop = plain_stop;
    drive("abbe-mo-stop", "Abbe-MO", &cfg, &mut out);

    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 5;
    drive("nilt", "NILT", &cfg, &mut out);

    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 6;
    drive("milt", "DAC23-MILT", &cfg, &mut out);

    let mut cfg = SolverConfig::default();
    cfg.am.rounds = 2;
    cfg.am.so_steps = 3;
    cfg.am.mo_steps = 3;
    drive("am-abbe", "AM(A~A)", &cfg, &mut out);

    let mut cfg = SolverConfig {
        lr: 0.2,
        stop: Some(StopRule::harness_default()),
        ..SolverConfig::default()
    };
    cfg.am.rounds = 2;
    cfg.am.so_steps = 5;
    cfg.am.mo_steps = 5;
    cfg.am.hybrid_q = 12;
    cfg.am.phase_stop = Some(StopRule {
        window: 2,
        rel_tol: 1e-3,
    });
    drive("am-hybrid", "AM(A~H)", &cfg, &mut out);

    let mut bismo_cfg = SolverConfig::default();
    bismo_cfg.bismo.unroll_t = 2;
    bismo_cfg.bismo.xi_m = 0.2;

    let mut cfg = bismo_cfg.clone();
    cfg.bismo.outer_steps = 4;
    drive("bismo-fd", "BiSMO-FD", &cfg, &mut out);

    let mut cfg = bismo_cfg.clone();
    cfg.bismo.outer_steps = 3;
    cfg.bismo.k = 2;
    drive("bismo-nmn", "BiSMO-NMN", &cfg, &mut out);
    drive("bismo-cg", "BiSMO-CG", &cfg, &mut out);

    let mut cfg = bismo_cfg;
    cfg.bismo.outer_steps = 30;
    cfg.stop = plain_stop;
    drive("bismo-stop", "BiSMO-FD", &cfg, &mut out);

    out
}

#[test]
fn sessions_match_pre_refactor_goldens() {
    if bless_requested() {
        return; // the legacy test rewrites the file this run
    }
    check_against_golden("session", session_outcomes(false));
}

#[test]
fn paused_and_resumed_sessions_match_pre_refactor_goldens() {
    if bless_requested() {
        return; // the legacy test rewrites the file this run
    }
    check_against_golden("paused/resumed session", session_outcomes(true));
}

#[test]
fn legacy_shims_match_pre_refactor_goldens() {
    let got = legacy_outcomes();
    if bless_requested() {
        let mut text = String::from(
            "# Captured from the pre-refactor monolithic run_* drivers (PR 4).\n\
             # name|trace_len|final_loss_bits|theta_j_fnv|theta_m_fnv\n",
        );
        for g in &got {
            text.push_str(&g.render());
            text.push('\n');
        }
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), text).unwrap();
        eprintln!("blessed {} golden entries", got.len());
        return;
    }
    check_against_golden("legacy shim", got);
}
