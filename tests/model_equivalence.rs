//! Cross-model integration tests: the Abbe and Hopkins engines must agree
//! where theory says they agree, and differ exactly where the paper says
//! they differ.
//!
//! Since PR 2 these checks run through the [`ImagingBackend`] trait and the
//! shared `MoProblem<B>` evaluation path, so they exercise exactly the code
//! every optimization driver uses — not engine-specific shortcuts.

use bismo::core::MoProblem;
use bismo::litho::ImagingBackend;
use bismo::prelude::*;

fn fixture() -> (OpticalConfig, Source, RealField) {
    let cfg = OpticalConfig::test_small();
    let source = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    let suite = Suite::generate(SuiteKind::Iccad13, &cfg, 1);
    let mask = suite.clips()[0].target.clone();
    (cfg, source, mask)
}

/// Images `mask` through any backend via the trait surface.
fn intensity_via<B: ImagingBackend>(backend: &B, source: &Source, mask: &RealField) -> RealField {
    backend.intensity(source, mask).unwrap()
}

#[test]
fn untruncated_hopkins_equals_abbe_on_generated_layout() {
    let (cfg, source, mask) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let hopkins = HopkinsImager::new(&cfg, &source, usize::MAX).unwrap();
    // Both images are produced through the same generic entry point.
    let ia = intensity_via(&abbe, &source, &mask);
    let ih = intensity_via(&hopkins, &source, &mask);
    for (a, b) in ia.as_slice().iter().zip(ih.as_slice()) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }
}

#[test]
fn backends_agree_through_shared_mo_problem() {
    // The strongest end-to-end statement of backend equivalence: the same
    // MoProblem<B> objective (resist + dose corners + MSE) evaluated over an
    // Abbe backend and an untruncated Hopkins backend produces the same loss
    // and the same θ_M gradient, through the single shared eval path.
    let (cfg, source, target) = fixture();
    let settings = SmoSettings::default();
    let abbe_p = MoProblem::from_backend(
        AbbeImager::new(&cfg).unwrap(),
        settings.clone(),
        target.clone(),
    )
    .unwrap();
    let hopkins_p = MoProblem::from_backend(
        HopkinsImager::new(&cfg, &source, usize::MAX).unwrap(),
        settings,
        target,
    )
    .unwrap();
    assert!(abbe_p.backend().supports_grad_source());
    assert!(!hopkins_p.backend().supports_grad_source());

    let theta_m = abbe_p.init_theta_m();
    let (la, ga) = abbe_p.eval_mask_at(&source, &theta_m).unwrap();
    let (lh, gh) = hopkins_p.eval_mask_at(&source, &theta_m).unwrap();
    assert!(
        (la.total - lh.total).abs() < 1e-8 * la.total.max(1.0),
        "loss: abbe {} vs hopkins {}",
        la.total,
        lh.total
    );
    let scale = ga.as_slice().iter().fold(0.0f64, |m, g| m.max(g.abs()));
    for (a, b) in ga.as_slice().iter().zip(gh.as_slice()) {
        assert!(
            (a - b).abs() < 1e-8 * scale.max(1.0),
            "grad: abbe {a} vs hopkins {b}"
        );
    }
}

#[test]
fn truncation_error_decreases_monotonically_in_q() {
    let (cfg, source, mask) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let reference = abbe.intensity(&source, &mask).unwrap();
    let mut last_err = f64::INFINITY;
    for q in [2usize, 6, 12, 24] {
        let hopkins = HopkinsImager::new(&cfg, &source, q).unwrap();
        let img = intensity_via(&hopkins, &source, &mask);
        let err: f64 = img
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            err <= last_err + 1e-9,
            "error should shrink with Q: {last_err} → {err} at Q={q}"
        );
        last_err = err;
    }
}

#[test]
fn intensity_is_quadratic_in_mask_amplitude() {
    // I = Σ w |F⁻¹(H F(αM))|² = α² I(M): the bilinear-form structure both
    // engines share.
    let (cfg, source, mask) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let i1 = abbe.intensity(&source, &mask).unwrap();
    let i_half = abbe.intensity(&source, &mask.map(|v| 0.5 * v)).unwrap();
    for (a, b) in i1.as_slice().iter().zip(i_half.as_slice()) {
        assert!((0.25 * a - b).abs() < 1e-12, "quadratic scaling violated");
    }
}

#[test]
fn intensity_is_linear_in_source_weights() {
    // Unnormalized intensities add over disjoint sources; with the dose
    // normalization this becomes a weighted average.
    let (cfg, _, mask) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let nj = cfg.source_dim();
    let mut w1 = vec![0.0; nj * nj];
    let mut w2 = vec![0.0; nj * nj];
    w1[nj + 1] = 1.0;
    w2[2 * nj + 3] = 1.0;
    let s1 = Source::from_weights(&cfg, w1.clone());
    let s2 = Source::from_weights(&cfg, w2.clone());
    let combined: Vec<f64> = w1.iter().zip(&w2).map(|(a, b)| a + b).collect();
    let s12 = Source::from_weights(&cfg, combined);
    let i1 = abbe.intensity(&s1, &mask).unwrap();
    let i2 = abbe.intensity(&s2, &mask).unwrap();
    let i12 = abbe.intensity(&s12, &mask).unwrap();
    for ((a, b), c) in i1.as_slice().iter().zip(i2.as_slice()).zip(i12.as_slice()) {
        // Equal weights ⇒ normalized combination is the plain average.
        assert!((0.5 * (a + b) - c).abs() < 1e-12);
    }
}

#[test]
fn off_axis_source_point_shifts_are_not_ignored() {
    // A dipole and a conventional source must image a vertical-line mask
    // differently (off-axis illumination changes contrast) — guards against
    // a regression where source-point shifts are dropped.
    let cfg = OpticalConfig::test_small();
    let n = cfg.mask_dim();
    // 128 nm period (8 px at 8 nm): its fundamental frequency lies between
    // NA/λ and 2·NA/λ, so it is resolvable only with off-axis illumination —
    // exactly the regime where dipole and conventional sources must differ.
    let lines = RealField::from_fn(n, |_, c| if (c / 8) % 2 == 0 { 1.0 } else { 0.0 });
    let abbe = AbbeImager::new(&cfg).unwrap();
    let conventional = Source::from_shape(&cfg, SourceShape::Conventional { sigma_out: 0.3 });
    let dipole = Source::from_shape(
        &cfg,
        SourceShape::Dipole {
            sigma_in: 0.6,
            sigma_out: 0.95,
            half_angle: 0.5,
        },
    );
    let ic = abbe.intensity(&conventional, &lines).unwrap();
    let id = abbe.intensity(&dipole, &lines).unwrap();
    let diff: f64 = ic
        .as_slice()
        .iter()
        .zip(id.as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        diff > 1e-3,
        "sources should image differently, diff = {diff}"
    );
}

#[test]
fn resist_model_is_consistent_between_develop_and_print() {
    let (cfg, source, mask) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let resist = ResistModel::new(30.0, 0.225);
    let intensity = abbe.intensity(&source, &mask).unwrap();
    let smooth = resist.develop(&intensity);
    let binary = resist.print(&intensity);
    // The smooth image thresholded at 0.5 equals the hard print
    // (sigmoid(x) ≥ 0.5 ⟺ x ≥ 0).
    for (s, b) in smooth.as_slice().iter().zip(binary.as_slice()) {
        assert_eq!((*s >= 0.5) as u8 as f64, *b);
    }
}
