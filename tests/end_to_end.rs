//! End-to-end integration tests spanning every crate: layout generation →
//! SMO problem → each optimization strategy → metrics.

use bismo::prelude::*;

fn fixture() -> (OpticalConfig, SmoProblem, Vec<f64>, RealField) {
    let cfg = OpticalConfig::test_small();
    let suite = Suite::generate(SuiteKind::Iccad13, &cfg, 1);
    let clip = suite.clips()[0].clone();
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target).unwrap();
    let tj = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let tm = problem.init_theta_m();
    (cfg, problem, tj, tm)
}

#[test]
fn every_strategy_improves_the_objective() {
    let (_, problem, tj, tm) = fixture();
    let initial = problem.loss(&tj, &tm).unwrap().total;

    let mo = run_abbe_mo(
        &problem,
        &tj,
        &tm,
        MoConfig {
            steps: 6,
            ..MoConfig::default()
        },
    )
    .unwrap();
    let mo_loss = problem.loss(&tj, &mo.theta_m).unwrap().total;
    assert!(mo_loss < initial, "Abbe-MO: {initial} → {mo_loss}");

    let am = run_am_smo(
        &problem,
        &tj,
        &tm,
        AmSmoConfig {
            rounds: 1,
            so_steps: 3,
            mo_steps: 3,
            ..AmSmoConfig::default()
        },
    )
    .unwrap();
    let am_loss = problem.loss(&am.theta_j, &am.theta_m).unwrap().total;
    assert!(am_loss < initial, "AM-SMO: {initial} → {am_loss}");

    let bi = run_bismo(
        &problem,
        &tj,
        &tm,
        BismoConfig {
            outer_steps: 4,
            method: HypergradMethod::FiniteDiff,
            ..BismoConfig::default()
        },
    )
    .unwrap();
    let bi_loss = problem.loss(&bi.theta_j, &bi.theta_m).unwrap().total;
    assert!(bi_loss < initial, "BiSMO: {initial} → {bi_loss}");
}

#[test]
fn smo_beats_mask_only_on_equal_footing() {
    // The core claim of the paper: joint source-mask optimization reaches a
    // lower objective than mask-only optimization.
    let (_, problem, tj, tm) = fixture();
    let mo = run_abbe_mo(
        &problem,
        &tj,
        &tm,
        MoConfig {
            steps: 12,
            ..MoConfig::default()
        },
    )
    .unwrap();
    let mo_loss = problem.loss(&tj, &mo.theta_m).unwrap().total;

    let bi = run_bismo(
        &problem,
        &tj,
        &tm,
        BismoConfig {
            outer_steps: 12,
            method: HypergradMethod::Neumann { k: 3 },
            ..BismoConfig::default()
        },
    )
    .unwrap();
    let bi_loss = problem.loss(&bi.theta_j, &bi.theta_m).unwrap().total;
    assert!(
        bi_loss < mo_loss,
        "BiSMO {bi_loss} should beat mask-only {mo_loss}"
    );
}

#[test]
fn metrics_improve_after_optimization() {
    let (_, problem, tj, tm) = fixture();
    let before = measure(&problem, &tj, &tm, EpeSpec::default()).unwrap();
    let out = run_bismo(
        &problem,
        &tj,
        &tm,
        BismoConfig {
            outer_steps: 8,
            method: HypergradMethod::FiniteDiff,
            ..BismoConfig::default()
        },
    )
    .unwrap();
    let after = measure(&problem, &out.theta_j, &out.theta_m, EpeSpec::default()).unwrap();
    assert!(
        after.l2_nm2 <= before.l2_nm2,
        "L2 should not regress: {} → {}",
        before.l2_nm2,
        after.l2_nm2
    );
}

#[test]
fn hybrid_am_smo_crosses_models_cleanly() {
    let (_, problem, tj, tm) = fixture();
    let initial = problem.loss(&tj, &tm).unwrap().total;
    let out = run_am_smo(
        &problem,
        &tj,
        &tm,
        AmSmoConfig {
            rounds: 2,
            so_steps: 2,
            mo_steps: 2,
            mo_model: MoModel::Hopkins { q: 12 },
            ..AmSmoConfig::default()
        },
    )
    .unwrap();
    let final_loss = problem.loss(&out.theta_j, &out.theta_m).unwrap().total;
    assert!(final_loss < initial);
}

#[test]
fn early_stopping_shortens_runs() {
    let (_, problem, tj, tm) = fixture();
    let unstopped = run_abbe_mo(
        &problem,
        &tj,
        &tm,
        MoConfig {
            steps: 40,
            stop: None,
            ..MoConfig::default()
        },
    )
    .unwrap();
    let stopped = run_abbe_mo(
        &problem,
        &tj,
        &tm,
        MoConfig {
            steps: 40,
            stop: Some(StopRule {
                window: 3,
                rel_tol: 0.5, // aggressive: stop as soon as gains halve
            }),
            ..MoConfig::default()
        },
    )
    .unwrap();
    assert!(stopped.trace.len() <= unstopped.trace.len());
    assert!(stopped.trace.len() < 40, "aggressive rule should trigger");
}

#[test]
fn proxies_run_on_generated_clips() {
    let (_cfg, problem, tj, _) = fixture();
    let source = problem.source(&tj);
    let settings = SmoSettings::default();
    let nilt = run_nilt_proxy(
        problem.abbe().core(),
        &settings,
        problem.target(),
        &source,
        MoConfig {
            steps: 4,
            ..MoConfig::default()
        },
    )
    .unwrap();
    assert_eq!(nilt.trace.len(), 4);
    let milt = run_milt_proxy(
        problem.abbe().core(),
        &settings,
        problem.target(),
        &source,
        MoConfig {
            steps: 4,
            ..MoConfig::default()
        },
    )
    .unwrap();
    assert_eq!(milt.trace.len(), 4);
}
