//! End-to-end integration tests spanning every crate: layout generation →
//! SMO problem → each optimization strategy (via the solver registry) →
//! metrics.

use bismo::prelude::*;

fn fixture() -> (OpticalConfig, SmoProblem, Vec<f64>, RealField) {
    let cfg = OpticalConfig::test_small();
    let suite = Suite::generate(SuiteKind::Iccad13, &cfg, 1);
    let clip = suite.clips()[0].clone();
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target).unwrap();
    let tj = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let tm = problem.init_theta_m();
    (cfg, problem, tj, tm)
}

fn run(problem: &SmoProblem, method: &str, cfg: &SolverConfig) -> SmoOutcome {
    SolverRegistry::builtin()
        .run(method, problem, cfg)
        .expect(method)
}

#[test]
fn every_strategy_improves_the_objective() {
    let (_, problem, tj, tm) = fixture();
    let initial = problem.loss(&tj, &tm).unwrap().total;

    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 6;
    cfg.am.rounds = 1;
    cfg.am.so_steps = 3;
    cfg.am.mo_steps = 3;
    cfg.bismo.outer_steps = 4;

    let mo = run(&problem, "Abbe-MO", &cfg);
    let mo_loss = problem.loss(&tj, &mo.theta_m).unwrap().total;
    assert!(mo_loss < initial, "Abbe-MO: {initial} → {mo_loss}");

    let am = run(&problem, "AM(A~A)", &cfg);
    let am_loss = problem.loss(&am.theta_j, &am.theta_m).unwrap().total;
    assert!(am_loss < initial, "AM-SMO: {initial} → {am_loss}");

    let bi = run(&problem, "BiSMO-FD", &cfg);
    let bi_loss = problem.loss(&bi.theta_j, &bi.theta_m).unwrap().total;
    assert!(bi_loss < initial, "BiSMO: {initial} → {bi_loss}");
}

#[test]
fn smo_beats_mask_only_on_equal_footing() {
    // The core claim of the paper: joint source-mask optimization reaches a
    // lower objective than mask-only optimization.
    let (_, problem, tj, _) = fixture();
    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 12;
    cfg.bismo.outer_steps = 12;
    cfg.bismo.k = 3;

    let mo = run(&problem, "Abbe-MO", &cfg);
    let mo_loss = problem.loss(&tj, &mo.theta_m).unwrap().total;

    let bi = run(&problem, "BiSMO-NMN", &cfg);
    let bi_loss = problem.loss(&bi.theta_j, &bi.theta_m).unwrap().total;
    assert!(
        bi_loss < mo_loss,
        "BiSMO {bi_loss} should beat mask-only {mo_loss}"
    );
}

#[test]
fn metrics_improve_after_optimization() {
    let (_, problem, tj, tm) = fixture();
    let before = measure(&problem, &tj, &tm, EpeSpec::default()).unwrap();
    let mut cfg = SolverConfig::default();
    cfg.bismo.outer_steps = 8;
    let out = run(&problem, "BiSMO-FD", &cfg);
    let after = measure(&problem, &out.theta_j, &out.theta_m, EpeSpec::default()).unwrap();
    assert!(
        after.l2_nm2 <= before.l2_nm2,
        "L2 should not regress: {} → {}",
        before.l2_nm2,
        after.l2_nm2
    );
}

#[test]
fn hybrid_am_smo_crosses_models_cleanly() {
    let (_, problem, tj, tm) = fixture();
    let initial = problem.loss(&tj, &tm).unwrap().total;
    let mut cfg = SolverConfig::default();
    cfg.am.rounds = 2;
    cfg.am.so_steps = 2;
    cfg.am.mo_steps = 2;
    cfg.am.hybrid_q = 12;
    let out = run(&problem, "AM(A~H)", &cfg);
    let final_loss = problem.loss(&out.theta_j, &out.theta_m).unwrap().total;
    assert!(final_loss < initial);
}

#[test]
fn early_stopping_shortens_runs() {
    let (_, problem, _, _) = fixture();
    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 40;
    cfg.stop = None;
    let unstopped = run(&problem, "Abbe-MO", &cfg);
    cfg.stop = Some(StopRule {
        window: 3,
        rel_tol: 0.5, // aggressive: stop as soon as gains halve
    });
    let stopped = run(&problem, "Abbe-MO", &cfg);
    assert!(stopped.trace.len() <= unstopped.trace.len());
    assert!(stopped.trace.len() < 40, "aggressive rule should trigger");
}

#[test]
fn proxies_run_on_generated_clips() {
    let (_cfg, problem, _, _) = fixture();
    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 4;
    let nilt = run(&problem, "NILT", &cfg);
    assert_eq!(nilt.trace.len(), 4);
    // NILT proxy carries no PVB term.
    assert_eq!(nilt.trace.records()[0].pvb, 0.0);
    let milt = run(&problem, "DAC23-MILT", &cfg);
    assert_eq!(milt.trace.len(), 4);
    assert!(milt.trace.records()[0].pvb > 0.0);
}

#[test]
fn session_exposes_state_while_running() {
    let (_, problem, tj, _) = fixture();
    let mut cfg = SolverConfig::default();
    cfg.bismo.outer_steps = 3;
    let mut session = SolverRegistry::builtin()
        .session("BiSMO-FD", &problem, &cfg)
        .unwrap();
    assert_eq!(session.solver_name(), "BiSMO-FD");
    assert_eq!(session.theta_j(), &tj[..], "default init is the template");
    session.step().unwrap();
    assert_eq!(session.trace().len(), 1);
    assert_eq!(session.status(), SessionStatus::Running);
    session.run().unwrap();
    assert_eq!(session.status(), SessionStatus::Exhausted);
    assert_eq!(session.trace().len(), 3);
}
