//! The batched imaging axis is a scheduling contract, not a numerical one
//! (DESIGN.md §9): every entry of a fused `intensity_batch` /
//! `grad_mask_batch` call must match the corresponding independent
//! single-mask call **bit for bit**, on both backends, single- and
//! multi-threaded — and the fused dose-pass evaluation in
//! `MoProblem::eval_inner` must still pass a finite-difference gradient
//! check end to end.

use bismo::prelude::*;

fn fixture() -> (OpticalConfig, Source, RealField, RealField) {
    let cfg = OpticalConfig::test_small();
    let source = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    let n = cfg.mask_dim();
    // A grayscale mask keeps gradients off the binary corners.
    let mask = RealField::from_fn(n, |r, c| {
        if (20..44).contains(&r) && (16..48).contains(&c) {
            0.8
        } else {
            0.2
        }
    });
    let coeff = RealField::from_fn(n, |r, c| ((r * 7 + c * 3) % 5) as f64 / 5.0 - 0.4);
    (cfg, source, mask, coeff)
}

/// The dose-corner batch the SMO objective fuses: nominal plus both
/// corners, exactly as `MoProblem::eval_inner` builds it.
fn dose_masks(mask: &RealField) -> Vec<RealField> {
    let dose = DoseCorners::PAPER;
    vec![
        mask.clone(),
        mask.map(|v| dose.min() * v),
        mask.map(|v| dose.max() * v),
    ]
}

/// Per-corner upstream gradients (deliberately different per entry, so an
/// entry-mixup in the fused adjoint cannot cancel out).
fn dose_grads(coeff: &RealField) -> Vec<RealField> {
    vec![
        coeff.clone(),
        coeff.map(|v| 0.5 * v + 0.01),
        coeff.map(|v| -0.25 * v),
    ]
}

fn assert_entries_match_singles<B: ImagingBackend>(backend: &B, source: &Source, label: &str) {
    let (_, _, mask, coeff) = fixture();
    let singles = dose_masks(&mask);
    let grads = dose_grads(&coeff);
    let masks = FieldBatch::from_fields(&singles);
    let g_batch = FieldBatch::from_fields(&grads);

    let images = backend.intensity_batch(source, &masks).unwrap();
    let grad_out = backend.grad_mask_batch(source, &masks, &g_batch).unwrap();
    for (b, (m, g)) in singles.iter().zip(&grads).enumerate() {
        let single_image = backend.intensity(source, m).unwrap();
        assert_eq!(
            images.entry(b),
            single_image.as_slice(),
            "{label}: intensity entry {b} diverged from the single call"
        );
        let single_grad = backend.grad_mask(source, m, g).unwrap();
        assert_eq!(
            grad_out.entry(b),
            single_grad.as_slice(),
            "{label}: grad_mask entry {b} diverged from the single call"
        );
    }
}

#[test]
fn abbe_batch_entries_match_single_calls_bitwise() {
    let (cfg, source, _, _) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    assert_entries_match_singles(&abbe, &source, "abbe");
}

#[test]
fn defocused_abbe_batch_entries_match_single_calls_bitwise() {
    // The aberrated table stores complex values, exercising the value-
    // carrying branch of apply_batch/accumulate_batch.
    let (cfg, source, _, _) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap().with_defocus(120.0);
    assert_entries_match_singles(&abbe, &source, "abbe+defocus");
}

#[test]
fn hopkins_batch_entries_match_single_calls_bitwise() {
    let (cfg, source, _, _) = fixture();
    let hopkins = HopkinsImager::new(&cfg, &source, 12).unwrap();
    assert_entries_match_singles(&hopkins, &source, "hopkins");
}

#[test]
fn multithreaded_batch_matches_multithreaded_singles_bitwise() {
    // The fused fan-out chunks the source points exactly like the single-
    // mask fan-out, so even the threaded paths agree bit-for-bit at equal
    // thread counts.
    let (cfg, source, mask, coeff) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap().with_threads(3);
    let singles = dose_masks(&mask);
    let grads = dose_grads(&coeff);
    let masks = FieldBatch::from_fields(&singles);
    let g_batch = FieldBatch::from_fields(&grads);
    let images = abbe.intensity_batch(&source, &masks).unwrap();
    let grad_out = abbe.grad_mask_batch(&source, &masks, &g_batch).unwrap();
    for (b, (m, g)) in singles.iter().zip(&grads).enumerate() {
        assert_eq!(
            images.entry(b),
            abbe.intensity(&source, m).unwrap().as_slice(),
            "entry {b}"
        );
        assert_eq!(
            grad_out.entry(b),
            abbe.grad_mask(&source, m, g).unwrap().as_slice(),
            "entry {b}"
        );
    }
}

#[test]
fn batch_shape_mismatches_are_errors() {
    let (cfg, source, mask, coeff) = fixture();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let masks = FieldBatch::from_fields(&dose_masks(&mask));
    // Output batch of the wrong arity.
    let mut wrong = FieldBatch::zeros(cfg.mask_dim(), 2);
    assert!(matches!(
        abbe.intensity_batch_into(&source, &masks, &mut wrong),
        Err(LithoError::Shape(_))
    ));
    // Gradient batch on the wrong grid.
    let bad_g = FieldBatch::zeros(cfg.mask_dim() / 2, 3);
    assert!(matches!(
        abbe.grad_mask_batch(&source, &masks, &bad_g),
        Err(LithoError::Shape(_))
    ));
    // Zero-entry batches are a no-op, not an error.
    let empty = FieldBatch::zeros(cfg.mask_dim(), 0);
    let out = abbe.intensity_batch(&source, &empty).unwrap();
    assert_eq!(out.batch(), 0);
    let _ = coeff;
}

#[test]
fn fused_dose_pass_gradient_matches_finite_difference() {
    // End-to-end FD check through the rewritten `eval_inner`: with the PVB
    // term on, the loss runs all three dose corners through one
    // `intensity_batch` call and the θ_M gradient through one
    // `grad_mask_batch` call; the analytic gradient must still match
    // central differences of the (equally fused) loss.
    let cfg = OpticalConfig::test_small();
    let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
        if (24..40).contains(&r) && (20..44).contains(&c) {
            1.0
        } else {
            0.0
        }
    });
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), target).unwrap();
    assert!(
        problem.settings().eta > 0.0,
        "this check must exercise the corner passes"
    );
    let tj = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let tm = problem.init_theta_m();
    let source = problem.source(&tj);
    let (_, gm) = problem.eval_mask_at(&source, &tm).unwrap();

    let eps = 1e-4;
    let n = tm.dim();
    for &(r, c) in &[(n / 2, n / 2), (24, 20), (12, 40), (39, 43)] {
        let mut up = tm.clone();
        up[(r, c)] += eps;
        let mut dn = tm.clone();
        dn[(r, c)] -= eps;
        let lu = problem.loss_at(&source, &up).unwrap().total;
        let ld = problem.loss_at(&source, &dn).unwrap().total;
        let numeric = (lu - ld) / (2.0 * eps);
        assert!(
            (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
            "({r},{c}): numeric {numeric} vs analytic {}",
            gm[(r, c)]
        );
    }
}

#[test]
fn measure_batch_matches_per_cell_measure_bitwise() {
    // The cell-level fusion the suite runner uses: many (problem, θ) cells
    // sharing one source, measured through a single 3k-entry batched call.
    let cfg = OpticalConfig::test_small();
    let targets: Vec<RealField> = (0..3)
        .map(|i| {
            RealField::from_fn(cfg.mask_dim(), |r, c| {
                if (20 + 2 * i..40 - i).contains(&r) && (18 + i..44).contains(&c) {
                    1.0
                } else {
                    0.0
                }
            })
        })
        .collect();
    let problems: Vec<SmoProblem> = targets
        .iter()
        .map(|t| SmoProblem::new(cfg.clone(), SmoSettings::default(), t.clone()).unwrap())
        .collect();
    let tj = problems[0].init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let tms: Vec<RealField> = problems.iter().map(SmoProblem::init_theta_m).collect();

    let spec = EpeSpec::default();
    let cells: Vec<(&SmoProblem, &[f64], &RealField)> = problems
        .iter()
        .zip(&tms)
        .map(|(p, tm)| (p, tj.as_slice(), tm))
        .collect();
    let fused = measure_batch(&cells, spec).unwrap();
    assert_eq!(fused.len(), problems.len());
    for ((p, tm), batched) in problems.iter().zip(&tms).zip(&fused) {
        let single = measure(p, &tj, tm, spec).unwrap();
        assert_eq!(single.l2_nm2.to_bits(), batched.l2_nm2.to_bits());
        assert_eq!(single.pvb_nm2.to_bits(), batched.pvb_nm2.to_bits());
        assert_eq!(single.epe, batched.epe);
    }
    // Empty input is a no-op.
    assert!(measure_batch(&[], spec).unwrap().is_empty());
}
