//! Threaded TCC assembly is a scheduling contract, not a numerical one
//! (DESIGN.md §9/§13): the Gram matrix is computed into worker-count-
//! independent slots and each kernel's lift is untouched, so the assembled
//! matrix — observed through the final kernels, which are a deterministic
//! function of it — and the kernels themselves must be **bit-identical** at
//! 1, 2, and 4 assembly threads, on both eigensolver routes and with a
//! complex (defocused) pupil.

use bismo::prelude::*;

/// Builds with the cache bypassed so every call is a genuine assembly.
fn build(
    cfg: &OpticalConfig,
    pupil: Pupil,
    src: &Source,
    q: usize,
    threads: usize,
) -> HopkinsImager {
    HopkinsImager::with_pupil_build(
        cfg,
        pupil,
        src,
        q,
        TccBuild {
            threads,
            bypass_cache: true,
        },
    )
    .unwrap()
}

fn assert_bitwise_equal(reference: &HopkinsImager, other: &HopkinsImager, label: &str) {
    assert_eq!(reference.support(), other.support(), "{label}: support");
    assert_eq!(
        reference.kernels().len(),
        other.kernels().len(),
        "{label}: kernel count"
    );
    for (q, (a, b)) in reference.kernels().iter().zip(other.kernels()).enumerate() {
        assert_eq!(
            a.kappa.to_bits(),
            b.kappa.to_bits(),
            "{label}: kappa of kernel {q}"
        );
        for (i, (x, y)) in a.phi.iter().zip(&b.phi).enumerate() {
            assert_eq!(
                (x.re.to_bits(), x.im.to_bits()),
                (y.re.to_bits(), y.im.to_bits()),
                "{label}: phi[{i}] of kernel {q}"
            );
        }
    }
}

#[test]
fn dense_route_gram_and_kernels_identical_at_1_2_4_threads() {
    let cfg = OpticalConfig::test_small();
    let src = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        },
    );
    let reference = build(&cfg, Pupil::new(&cfg), &src, 12, 1);
    for threads in [2, 4] {
        let threaded = build(&cfg, Pupil::new(&cfg), &src, 12, threads);
        assert_bitwise_equal(&reference, &threaded, &format!("dense @ {threads} threads"));
    }
    // And the images built from them (same kernels ⇒ same pixels, but this
    // closes the loop end to end through the imaging path).
    let mask = RealField::from_fn(cfg.mask_dim(), |r, c| {
        if (20..44).contains(&r) && (16..48).contains(&c) {
            0.8
        } else {
            0.2
        }
    });
    let threaded = build(&cfg, Pupil::new(&cfg), &src, 12, 4);
    assert_eq!(
        reference.intensity(&mask).unwrap(),
        threaded.intensity(&mask).unwrap()
    );
}

#[test]
fn defocused_complex_pupil_identical_at_1_2_4_threads() {
    // The aberrated table stores complex values, exercising the
    // value-carrying branch of the overlap and lift loops.
    let cfg = OpticalConfig::test_small();
    let src = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        },
    );
    let reference = build(&cfg, Pupil::new(&cfg).with_defocus(120.0), &src, 10, 1);
    for threads in [2, 4] {
        let threaded = build(
            &cfg,
            Pupil::new(&cfg).with_defocus(120.0),
            &src,
            10,
            threads,
        );
        assert_bitwise_equal(
            &reference,
            &threaded,
            &format!("defocus @ {threads} threads"),
        );
    }
}

#[test]
fn randomized_route_identical_at_1_2_4_threads() {
    // A full 33×33 circular source has σ = 1089 > DENSE_EIG_LIMIT = 260
    // effective points, forcing the randomized subspace-iteration route.
    // That solver is seeded and deterministic, so the threading contract
    // holds across the whole build there too.
    let cfg = OpticalConfig::builder()
        .mask_dim(64)
        .pixel_nm(16.0)
        .source_dim(33)
        .build()
        .unwrap();
    let src = Source::from_weights(&cfg, vec![1.0; 33 * 33]);
    assert!(
        src.effective_count(1e-12) > 260,
        "fixture must exceed DENSE_EIG_LIMIT"
    );
    let reference = build(&cfg, Pupil::new(&cfg), &src, 8, 1);
    for threads in [2, 4] {
        let threaded = build(&cfg, Pupil::new(&cfg), &src, 8, threads);
        assert_bitwise_equal(
            &reference,
            &threaded,
            &format!("randomized @ {threads} threads"),
        );
    }
}
