//! Finite-difference verification of `SmoProblem`'s analytic gradients for
//! both parameter blocks (θ_J source weights, θ_M mask pixels), with and
//! without the process-variation (PVB) term — the numerics every bilevel
//! driver in `bismo-core` depends on.
//!
//! The mask-gradient check is written once, generically over
//! [`ImagingBackend`], and instantiated for both engines: every backend
//! plugged into the shared `MoProblem<B>` path must pass the same FD test.

use bismo::core::MoProblem;
use bismo::litho::ImagingBackend;
use bismo::prelude::*;
use bismo_testkit::{check_gradient, check_gradient_field, spread_indices, Fixture, GradCheckSpec};

/// Imaging-scale losses accumulate more roundoff than the toy quadratic the
/// testkit documents, so widen the default tolerances slightly.
fn spec() -> GradCheckSpec {
    GradCheckSpec {
        eps: 1e-5,
        rtol: 1e-3,
        atol: 1e-6,
    }
}

#[test]
fn theta_j_gradient_matches_finite_difference() {
    let fx = Fixture::small_no_pvb().unwrap();
    let eval = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::SOURCE)
        .unwrap();
    let analytic = eval.grad_theta_j.expect("source gradient requested");
    let indices = spread_indices(fx.theta_j.len(), 9);
    let report = check_gradient(
        |tj| fx.problem.loss(tj, &fx.theta_m).unwrap().total,
        &fx.theta_j,
        &analytic,
        &indices,
        spec(),
    );
    report.assert_ok(spec(), "theta_J (no PVB)");
}

#[test]
fn theta_m_gradient_matches_finite_difference() {
    let fx = Fixture::small_no_pvb().unwrap();
    let eval = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::MASK)
        .unwrap();
    let analytic = eval.grad_theta_m.expect("mask gradient requested");
    let indices = spread_indices(fx.theta_m.len(), 9);
    let report = check_gradient_field(
        |tm| fx.problem.loss(&fx.theta_j, tm).unwrap().total,
        &fx.theta_m,
        &analytic,
        &indices,
        spec(),
    );
    report.assert_ok(spec(), "theta_M (no PVB)");
}

#[test]
fn theta_j_gradient_with_pvb_matches_finite_difference() {
    // The PVB term routes through the dose corners; its adjoint is a
    // separate code path from the nominal L2 term.
    let fx = Fixture::small().unwrap();
    let eval = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::SOURCE)
        .unwrap();
    let analytic = eval.grad_theta_j.expect("source gradient requested");
    let indices = spread_indices(fx.theta_j.len(), 7);
    let report = check_gradient(
        |tj| fx.problem.loss(tj, &fx.theta_m).unwrap().total,
        &fx.theta_j,
        &analytic,
        &indices,
        spec(),
    );
    report.assert_ok(spec(), "theta_J (with PVB)");
}

#[test]
fn theta_m_gradient_with_pvb_matches_finite_difference() {
    let fx = Fixture::small().unwrap();
    let eval = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::MASK)
        .unwrap();
    let analytic = eval.grad_theta_m.expect("mask gradient requested");
    let indices = spread_indices(fx.theta_m.len(), 7);
    let report = check_gradient_field(
        |tm| fx.problem.loss(&fx.theta_j, tm).unwrap().total,
        &fx.theta_m,
        &analytic,
        &indices,
        spec(),
    );
    report.assert_ok(spec(), "theta_M (with PVB)");
}

/// Backend-generic θ_M finite-difference check through the shared
/// `MoProblem<B>` evaluation path (`loss_at` / `eval_mask_at`).
fn check_mask_gradient_generic<B: ImagingBackend>(
    problem: &MoProblem<B>,
    source: &Source,
    label: &str,
) {
    let theta_m = problem.init_theta_m();
    let (_, analytic) = problem.eval_mask_at(source, &theta_m).unwrap();
    let indices = spread_indices(theta_m.len(), 9);
    let report = check_gradient_field(
        |tm| problem.loss_at(source, tm).unwrap().total,
        &theta_m,
        &analytic,
        &indices,
        spec(),
    );
    report.assert_ok(spec(), label);
}

#[test]
fn theta_m_gradient_matches_finite_difference_at_prolonged_point() {
    // The multigrid schedule (DESIGN.md §11) evaluates the fine-grid
    // gradient at points produced by spectral prolongation of a coarse
    // solve — band-limited, partially saturated logits unlike either the
    // target-derived init or any descent iterate. The analytic gradient
    // must hold there too: restrict the canonical θ_M to half resolution,
    // prolong it back, and FD-check the objective at that point.
    use bismo::fft::GridTransfer;

    let fx = Fixture::small().unwrap();
    let n = fx.theta_m.dim();
    let xfer = GridTransfer::new(n, n / 2).unwrap();
    let coarse = xfer.restrict2(fx.theta_m.as_slice()).unwrap();
    let prolonged = RealField::from_vec(n, xfer.prolong2(&coarse).unwrap());

    let eval = fx
        .problem
        .eval(&fx.theta_j, &prolonged, GradRequest::MASK)
        .unwrap();
    let analytic = eval.grad_theta_m.expect("mask gradient requested");
    let indices = spread_indices(prolonged.len(), 9);
    let report = check_gradient_field(
        |tm| fx.problem.loss(&fx.theta_j, tm).unwrap().total,
        &prolonged,
        &analytic,
        &indices,
        spec(),
    );
    report.assert_ok(spec(), "theta_M at a prolonged point");
}

#[test]
fn generic_mask_gradient_abbe_backend() {
    let fx = Fixture::small().unwrap();
    let source = fx.problem.source(&fx.theta_j);
    check_mask_gradient_generic(&fx.problem, &source, "theta_M via MoProblem<AbbeImager>");
}

#[test]
fn generic_mask_gradient_hopkins_backend() {
    let fx = Fixture::small().unwrap();
    let source = fx.problem.source(&fx.theta_j);
    let hopkins = MoProblem::from_backend(
        HopkinsImager::new(fx.problem.optical(), &source, 12).unwrap(),
        fx.problem.settings().clone(),
        fx.problem.target().clone(),
    )
    .unwrap();
    check_mask_gradient_generic(&hopkins, &source, "theta_M via MoProblem<HopkinsImager>");
}

#[test]
fn both_blocks_agree_with_separate_requests() {
    // GradRequest::BOTH must produce exactly what MASK and SOURCE produce
    // individually (the shared-pass optimization must not change values).
    let fx = Fixture::small_no_pvb().unwrap();
    let both = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::BOTH)
        .unwrap();
    let mask_only = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::MASK)
        .unwrap();
    let source_only = fx
        .problem
        .eval(&fx.theta_j, &fx.theta_m, GradRequest::SOURCE)
        .unwrap();
    bismo_testkit::assert_fields_close(
        both.grad_theta_m.as_ref().unwrap(),
        mask_only.grad_theta_m.as_ref().unwrap(),
        1e-12,
        "mask gradient BOTH vs MASK",
    );
    let gj_both = both.grad_theta_j.unwrap();
    let gj_only = source_only.grad_theta_j.unwrap();
    for (i, (a, b)) in gj_both.iter().zip(&gj_only).enumerate() {
        assert!((a - b).abs() < 1e-12, "theta_J[{i}]: {a} vs {b}");
    }
}
