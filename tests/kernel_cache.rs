//! End-to-end contracts of the SOCS kernel cache (DESIGN.md §13): cached
//! kernels are pinned to a fresh build (bit-identical on the dense-Jacobi
//! route, ≤ 1e-10·peak on the randomized route — in practice the disk tier
//! stores exact bit patterns, so both are bitwise), damaged cache files
//! degrade to a rebuild instead of a panic or wrong kernels, a changed
//! source is a changed key, and LRU eviction never invalidates borrowers.
//!
//! The cache is process-global, so every test serializes on one mutex and
//! restores the default cache state before releasing it.

use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

use bismo::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with exclusive access to the process-global cache, reset to a
/// known state before and after.
fn with_cache<R>(f: impl FnOnce() -> R) -> R {
    let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let reset = || {
        KernelCache::set_disk_dir(None);
        KernelCache::set_capacity(8);
        KernelCache::clear();
        KernelCache::reset_stats();
    };
    reset();
    let out = f();
    reset();
    out
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bismo-kc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn dense_fixture() -> (OpticalConfig, Source) {
    let cfg = OpticalConfig::test_small();
    let src = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        },
    );
    (cfg, src)
}

/// A 17×17 full circular source: σ = 289 > DENSE_EIG_LIMIT = 260, forcing
/// the (seeded, deterministic) randomized eigensolver route.
fn randomized_fixture() -> (OpticalConfig, Source) {
    let cfg = OpticalConfig::builder()
        .mask_dim(64)
        .pixel_nm(16.0)
        .source_dim(17)
        .build()
        .unwrap();
    let src = Source::from_weights(&cfg, vec![1.0; 17 * 17]);
    assert!(src.effective_count(1e-12) > 260);
    (cfg, src)
}

fn fresh(cfg: &OpticalConfig, src: &Source, q: usize) -> HopkinsImager {
    HopkinsImager::with_pupil_build(
        cfg,
        Pupil::new(cfg),
        src,
        q,
        TccBuild {
            threads: 1,
            bypass_cache: true,
        },
    )
    .unwrap()
}

fn assert_bitwise(a: &HopkinsImager, b: &HopkinsImager, label: &str) {
    assert_eq!(a.support(), b.support(), "{label}: support");
    assert_eq!(a.kernels().len(), b.kernels().len(), "{label}: count");
    for (x, y) in a.kernels().iter().zip(b.kernels()) {
        assert_eq!(x.kappa.to_bits(), y.kappa.to_bits(), "{label}: kappa");
        for (p, q) in x.phi.iter().zip(&y.phi) {
            assert_eq!(p.re.to_bits(), q.re.to_bits(), "{label}: phi re");
            assert_eq!(p.im.to_bits(), q.im.to_bits(), "{label}: phi im");
        }
    }
}

#[test]
fn repeated_construction_shares_one_bundle_in_memory() {
    with_cache(|| {
        let (cfg, src) = dense_fixture();
        let first = HopkinsImager::new(&cfg, &src, 12).unwrap();
        let second = HopkinsImager::new(&cfg, &src, 12).unwrap();
        let stats = KernelCache::stats();
        assert_eq!(stats.misses, 1, "first build is the only cold one");
        assert_eq!(stats.hits, 1, "second build must hit");
        // Not merely equal: the same allocation.
        assert!(std::ptr::eq(
            first.kernels().as_ptr(),
            second.kernels().as_ptr()
        ));
        // The shared-core constructor lands on the same key.
        let core = ImagingCore::new(&cfg).unwrap();
        let third = HopkinsImager::with_core(&core, &src, 12).unwrap();
        assert_eq!(KernelCache::stats().hits, 2);
        assert!(std::ptr::eq(
            first.kernels().as_ptr(),
            third.kernels().as_ptr()
        ));
    });
}

#[test]
fn disk_roundtrip_dense_route_is_bit_identical() {
    with_cache(|| {
        let dir = tmpdir("dense");
        KernelCache::set_disk_dir(Some(dir.clone()));
        let (cfg, src) = dense_fixture();
        let built = HopkinsImager::new(&cfg, &src, 12).unwrap();
        assert_eq!(KernelCache::stats().disk_stores, 1, "bundle must persist");
        // Drop the in-memory tier: the next build may only use the file.
        KernelCache::clear();
        let loaded = HopkinsImager::new(&cfg, &src, 12).unwrap();
        let stats = KernelCache::stats();
        assert_eq!(stats.disk_hits, 1, "second process-cold build loads disk");
        assert_eq!(stats.misses, 1, "never rebuilt");
        assert_bitwise(&built, &loaded, "stored vs loaded");
        assert_bitwise(&fresh(&cfg, &src, 12), &loaded, "fresh vs loaded");
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn disk_roundtrip_randomized_route_is_tolerance_pinned() {
    with_cache(|| {
        let dir = tmpdir("randomized");
        KernelCache::set_disk_dir(Some(dir.clone()));
        let (cfg, src) = randomized_fixture();
        let _built = HopkinsImager::new(&cfg, &src, 8).unwrap();
        KernelCache::clear();
        let loaded = HopkinsImager::new(&cfg, &src, 8).unwrap();
        assert_eq!(KernelCache::stats().disk_hits, 1);
        let reference = fresh(&cfg, &src, 8);
        // Contract: ≤ 1e-10 · peak on the randomized route. (The seeded
        // solver plus a bit-exact file format make this 0 in practice.)
        let peak = reference
            .kernels()
            .iter()
            .flat_map(|k| &k.phi)
            .map(|z| z.re.abs().max(z.im.abs()))
            .fold(0.0_f64, f64::max);
        assert!(peak > 0.0);
        assert_eq!(reference.kernels().len(), loaded.kernels().len());
        for (a, b) in reference.kernels().iter().zip(loaded.kernels()) {
            assert!((a.kappa - b.kappa).abs() <= 1e-10 * a.kappa.abs());
            for (x, y) in a.phi.iter().zip(&b.phi) {
                assert!(
                    (x.re - y.re).abs() <= 1e-10 * peak && (x.im - y.im).abs() <= 1e-10 * peak,
                    "loaded randomized-route kernel drifted past 1e-10·peak"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn damaged_cache_files_degrade_to_a_rebuild() {
    with_cache(|| {
        let dir = tmpdir("damage");
        KernelCache::set_disk_dir(Some(dir.clone()));
        let (cfg, src) = dense_fixture();
        let reference = fresh(&cfg, &src, 12);
        let _ = HopkinsImager::new(&cfg, &src, 12).unwrap();
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "bin"))
            .expect("cache file written");
        let pristine = std::fs::read(&file).unwrap();

        let corruptions: &[(&str, Vec<u8>)] = &[
            ("truncated", pristine[..pristine.len() / 3].to_vec()),
            ("payload bit flip", {
                let mut b = pristine.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x01;
                b
            }),
            ("garbage", b"this is not a kernel bundle".to_vec()),
            ("empty", Vec::new()),
        ];
        for (label, bytes) in corruptions {
            std::fs::write(&file, bytes).unwrap();
            KernelCache::clear();
            KernelCache::reset_stats();
            // Must neither panic nor serve wrong kernels: quietly rebuild.
            let rebuilt = HopkinsImager::new(&cfg, &src, 12).unwrap();
            let stats = KernelCache::stats();
            assert_eq!(stats.disk_hits, 0, "{label}: corrupt file must miss");
            assert_eq!(stats.misses, 1, "{label}: must rebuild");
            assert_bitwise(&reference, &rebuilt, label);
            // The rebuild re-persists atomically over the damaged file...
            assert_eq!(stats.disk_stores, 1, "{label}: must re-store");
            // ...leaving it loadable again.
            KernelCache::clear();
            KernelCache::reset_stats();
            let _ = HopkinsImager::new(&cfg, &src, 12).unwrap();
            assert_eq!(KernelCache::stats().disk_hits, 1, "{label}: repaired");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn changed_source_weights_are_a_different_key() {
    with_cache(|| {
        let (cfg, src) = dense_fixture();
        let _ = HopkinsImager::new(&cfg, &src, 12).unwrap();
        // Nudge one lit weight by a single ULP — still a different source.
        let mut weights = src.weights().to_vec();
        let nz = weights.iter().position(|&w| w > 0.0).unwrap();
        weights[nz] = f64::from_bits(weights[nz].to_bits() + 1);
        let tweaked = Source::from_weights(&cfg, weights);
        let _ = HopkinsImager::new(&cfg, &tweaked, 12).unwrap();
        let stats = KernelCache::stats();
        assert_eq!(stats.misses, 2, "changed source must not hit");
        assert_eq!(stats.hits, 0);
        assert_eq!(KernelCache::resident(), 2);
    });
}

#[test]
fn lru_eviction_keeps_borrowers_alive_and_recency_order() {
    with_cache(|| {
        KernelCache::set_capacity(2);
        let (cfg, src) = dense_fixture();
        // Three distinct keys via the truncation rank.
        let oldest = HopkinsImager::new(&cfg, &src, 4).unwrap();
        let _b = HopkinsImager::new(&cfg, &src, 5).unwrap();
        // Touch the oldest key: it becomes most-recent, so the next insert
        // must evict q=5, not q=4.
        let _a2 = HopkinsImager::new(&cfg, &src, 4).unwrap();
        assert_eq!(KernelCache::stats().hits, 1);
        let _c = HopkinsImager::new(&cfg, &src, 6).unwrap();
        assert_eq!(KernelCache::stats().evictions, 1);
        assert_eq!(KernelCache::resident(), 2);

        KernelCache::reset_stats();
        let _a3 = HopkinsImager::new(&cfg, &src, 4).unwrap();
        assert_eq!(KernelCache::stats().hits, 1, "q=4 survived (recency)");
        let _b2 = HopkinsImager::new(&cfg, &src, 5).unwrap();
        assert_eq!(
            KernelCache::stats().misses,
            1,
            "q=5 was the eviction victim"
        );

        // The evicted bundle's borrower is untouched: its Arc keeps the
        // kernels alive and the engine still images.
        let mask = RealField::filled(cfg.mask_dim(), 1.0);
        let i = oldest.intensity(&mask).unwrap();
        assert!(i.max() > 0.0);
    });
}
