//! Property-style tests on the workspace's core invariants: Fourier
//! identities, imaging-model structure, metric axioms and optimizer behavior
//! on random inputs.
//!
//! The seed referenced `proptest` for these; the offline build environment
//! has no registry access, so each property is exercised over a fixed number
//! of seeded random cases instead (same invariants, deterministic inputs).

use bismo::fft::{Complex64, Fft2Plan, FftPlan};
use bismo::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Number of random cases per cheap property (proptest used 24).
const CASES: u64 = 24;
/// Number of random cases per imaging-scale property (proptest used 4).
const IMAGING_CASES: u64 = 4;

fn complex_vec(rng: &mut StdRng, len: usize) -> Vec<Complex64> {
    (0..len)
        .map(|_| Complex64::new(rng.gen_range(-1.0f64..1.0), rng.gen_range(-1.0f64..1.0)))
        .collect()
}

fn unit_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(0.0f64..1.0)).collect()
}

#[test]
fn fft_roundtrip_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0001);
    let plan = FftPlan::new(64).unwrap();
    for _ in 0..CASES {
        let data = complex_vec(&mut rng, 64);
        let mut buf = data.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in data.iter().zip(&buf) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }
}

#[test]
fn fft_preserves_energy_unitary() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0002);
    let plan = FftPlan::new(128).unwrap();
    for _ in 0..CASES {
        let data = complex_vec(&mut rng, 128);
        let e0: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data;
        plan.forward_unitary(&mut buf).unwrap();
        let e1: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        assert!((e0 - e1).abs() < 1e-9 * e0.max(1.0));
    }
}

#[test]
fn fft2_linearity() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0003);
    let plan = Fft2Plan::new(8, 8).unwrap();
    for _ in 0..CASES {
        let a = complex_vec(&mut rng, 64);
        let b = complex_vec(&mut rng, 64);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa).unwrap();
        plan.forward(&mut fb).unwrap();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fab).unwrap();
        for i in 0..64 {
            assert!((fab[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn real_mask_spectrum_is_conjugate_symmetric() {
    // F(real)[k] = conj(F(real)[-k]) — the invariant the adjoint gradients
    // rely on to produce real mask gradients.
    let mut rng = StdRng::seed_from_u64(0xF0F0_0004);
    let plan = Fft2Plan::new(8, 8).unwrap();
    for _ in 0..CASES {
        let vals = unit_vec(&mut rng, 64);
        let mut buf: Vec<Complex64> = vals.iter().map(|&v| Complex64::from_real(v)).collect();
        plan.forward(&mut buf).unwrap();
        for r in 0..8 {
            for c in 0..8 {
                let mirror = ((8 - r) % 8) * 8 + (8 - c) % 8;
                let z = buf[r * 8 + c];
                let m = buf[mirror];
                assert!((z - m.conj()).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn xor_area_is_a_metric() {
    use bismo::core::xor_area_nm2;
    let mut rng = StdRng::seed_from_u64(0xF0F0_0005);
    for _ in 0..CASES {
        let fa = RealField::from_vec(8, unit_vec(&mut rng, 64));
        let fb = RealField::from_vec(8, unit_vec(&mut rng, 64));
        let fc = RealField::from_vec(8, unit_vec(&mut rng, 64));
        // Identity, symmetry, triangle inequality (XOR cardinality is a
        // metric on binary images).
        assert_eq!(xor_area_nm2(&fa, &fa, 1.0), 0.0);
        assert_eq!(xor_area_nm2(&fa, &fb, 1.0), xor_area_nm2(&fb, &fa, 1.0));
        let ab = xor_area_nm2(&fa, &fb, 1.0);
        let bc = xor_area_nm2(&fb, &fc, 1.0);
        let ac = xor_area_nm2(&fa, &fc, 1.0);
        assert!(ac <= ab + bc + 1e-12);
    }
}

#[test]
fn sigmoid_activation_stays_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0006);
    let act = Activation::default();
    for _ in 0..CASES {
        let thetas: Vec<f64> = (0..49).map(|_| rng.gen_range(-50.0f64..50.0)).collect();
        let weights = act.source_weights(&thetas);
        for w in &weights {
            assert!((0.0..=1.0).contains(w));
        }
        let grads = act.source_grad(&weights);
        for g in &grads {
            assert!(*g >= 0.0, "sigmoid derivative must be nonnegative");
        }
    }
}

#[test]
fn adam_step_is_bounded_by_learning_rate() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0007);
    for _ in 0..CASES {
        let grad: Vec<f64> = (0..8).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        let lr = rng.gen_range(0.001f64..0.5);
        let mut opt = Adam::new(lr, 8);
        let mut params = vec![0.0; 8];
        opt.step(&mut params, &grad);
        for p in &params {
            // Adam's first bias-corrected step magnitude ≤ lr (+ eps slack).
            assert!(p.abs() <= lr * 1.001 + 1e-12);
        }
    }
}

#[test]
fn dose_scaled_masks_keep_bounds() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0008);
    let act = Activation::default();
    for _ in 0..CASES {
        let vals: Vec<f64> = (0..64).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
        let dose = rng.gen_range(0.9f64..1.1);
        let theta = RealField::from_vec(8, vals);
        let mask = act.mask(&theta);
        let scaled = mask.map(|v| dose * v);
        assert!(scaled.min() >= 0.0);
        assert!(scaled.max() <= dose * 1.0 + 1e-12);
    }
}

#[test]
fn aerial_intensity_is_nonnegative_for_random_masks() {
    let mut rng = StdRng::seed_from_u64(0xF0F0_0009);
    let cfg = OpticalConfig::test_small();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let src = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    for _ in 0..IMAGING_CASES {
        let mask = RealField::from_vec(64, unit_vec(&mut rng, 64 * 64));
        let i = abbe.intensity(&src, &mask).unwrap();
        assert!(i.min() >= -1e-12);
        assert!(i.max() <= 2.0, "bounded by clear field with ringing");
    }
}

#[test]
fn mask_gradient_is_descent_direction_for_random_targets() {
    for seed in 0..IMAGING_CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = OpticalConfig::test_small();
        let n = cfg.mask_dim();
        let r0 = rng.gen_range(8usize..24);
        let c0 = rng.gen_range(8usize..24);
        let target = RealField::from_fn(n, |r, c| {
            if (r0..r0 + 16).contains(&r) && (c0..c0 + 16).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let problem =
            SmoProblem::new(cfg.clone(), SmoSettings::default().without_pvb(), target).unwrap();
        let tj = problem.init_theta_j(SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        });
        let tm = problem.init_theta_m();
        let eval = problem.eval(&tj, &tm, GradRequest::MASK).unwrap();
        let g = eval.grad_theta_m.unwrap();
        let mut stepped = tm.clone();
        stepped.axpy(-0.05, &g);
        let after = problem.loss(&tj, &stepped).unwrap().total;
        assert!(after < eval.loss.total, "{} → {}", eval.loss.total, after);
    }
}
