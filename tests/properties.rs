//! Property-based tests (proptest) on the workspace's core invariants:
//! Fourier identities, imaging-model structure, metric axioms and optimizer
//! behavior on random inputs.

use bismo::fft::{Complex64, Fft2Plan, FftPlan};
use bismo::prelude::*;
use proptest::prelude::*;

fn small_complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_roundtrip_is_identity(data in small_complex_vec(64)) {
        let plan = FftPlan::new(64).unwrap();
        let mut buf = data.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in data.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_preserves_energy_unitary(data in small_complex_vec(128)) {
        let plan = FftPlan::new(128).unwrap();
        let e0: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data;
        plan.forward_unitary(&mut buf).unwrap();
        let e1: f64 = buf.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((e0 - e1).abs() < 1e-9 * e0.max(1.0));
    }

    #[test]
    fn fft2_linearity(a in small_complex_vec(64), b in small_complex_vec(64)) {
        let plan = Fft2Plan::new(8, 8).unwrap();
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa).unwrap();
        plan.forward(&mut fb).unwrap();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fab).unwrap();
        for i in 0..64 {
            prop_assert!((fab[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn real_mask_spectrum_is_conjugate_symmetric(vals in proptest::collection::vec(0.0f64..1.0, 64)) {
        // F(real)[k] = conj(F(real)[-k]) — the invariant the adjoint
        // gradients rely on to produce real mask gradients.
        let plan = Fft2Plan::new(8, 8).unwrap();
        let mut buf: Vec<Complex64> = vals.iter().map(|&v| Complex64::from_real(v)).collect();
        plan.forward(&mut buf).unwrap();
        for r in 0..8 {
            for c in 0..8 {
                let mirror = ((8 - r) % 8) * 8 + (8 - c) % 8;
                let z = buf[r * 8 + c];
                let m = buf[mirror];
                prop_assert!((z - m.conj()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn xor_area_is_a_metric(
        a in proptest::collection::vec(0.0f64..1.0, 64),
        b in proptest::collection::vec(0.0f64..1.0, 64),
        c in proptest::collection::vec(0.0f64..1.0, 64),
    ) {
        use bismo::core::xor_area_nm2;
        let fa = RealField::from_vec(8, a);
        let fb = RealField::from_vec(8, b);
        let fc = RealField::from_vec(8, c);
        // Identity, symmetry, triangle inequality (XOR cardinality is a
        // metric on binary images).
        prop_assert_eq!(xor_area_nm2(&fa, &fa, 1.0), 0.0);
        prop_assert_eq!(xor_area_nm2(&fa, &fb, 1.0), xor_area_nm2(&fb, &fa, 1.0));
        let ab = xor_area_nm2(&fa, &fb, 1.0);
        let bc = xor_area_nm2(&fb, &fc, 1.0);
        let ac = xor_area_nm2(&fa, &fc, 1.0);
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn sigmoid_activation_stays_in_unit_interval(thetas in proptest::collection::vec(-50.0f64..50.0, 49)) {
        let act = Activation::default();
        let weights = act.source_weights(&thetas);
        for w in &weights {
            prop_assert!((0.0..=1.0).contains(w));
        }
        let grads = act.source_grad(&weights);
        for g in &grads {
            prop_assert!(*g >= 0.0, "sigmoid derivative must be nonnegative");
        }
    }

    #[test]
    fn adam_step_is_bounded_by_learning_rate(
        grad in proptest::collection::vec(-100.0f64..100.0, 8),
        lr in 0.001f64..0.5,
    ) {
        let mut opt = Adam::new(lr, 8);
        let mut params = vec![0.0; 8];
        opt.step(&mut params, &grad);
        for p in &params {
            // Adam's first bias-corrected step magnitude ≤ lr (+ eps slack).
            prop_assert!(p.abs() <= lr * 1.001 + 1e-12);
        }
    }

    #[test]
    fn dose_scaled_masks_keep_bounds(
        vals in proptest::collection::vec(-3.0f64..3.0, 64),
        dose in 0.9f64..1.1,
    ) {
        let act = Activation::default();
        let theta = RealField::from_vec(8, vals);
        let mask = act.mask(&theta);
        let scaled = mask.map(|v| dose * v);
        prop_assert!(scaled.min() >= 0.0);
        prop_assert!(scaled.max() <= dose * 1.0 + 1e-12);
    }
}

proptest! {
    // Imaging properties are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn aerial_intensity_is_nonnegative_for_random_masks(
        vals in proptest::collection::vec(0.0f64..1.0, 64 * 64),
        seed in 0u64..100,
    ) {
        let cfg = OpticalConfig::test_small();
        let abbe = AbbeImager::new(&cfg).unwrap();
        let _ = seed;
        let src = Source::from_shape(
            &cfg,
            SourceShape::Annular { sigma_in: cfg.sigma_in(), sigma_out: cfg.sigma_out() },
        );
        let mask = RealField::from_vec(64, vals);
        let i = abbe.intensity(&src, &mask).unwrap();
        prop_assert!(i.min() >= -1e-12);
        prop_assert!(i.max() <= 2.0, "bounded by clear field with ringing");
    }

    #[test]
    fn mask_gradient_is_descent_direction_for_random_targets(
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = OpticalConfig::test_small();
        let n = cfg.mask_dim();
        let r0 = rng.gen_range(8..24);
        let c0 = rng.gen_range(8..24);
        let target = RealField::from_fn(n, |r, c| {
            if (r0..r0 + 16).contains(&r) && (c0..c0 + 16).contains(&c) { 1.0 } else { 0.0 }
        });
        let problem = SmoProblem::new(cfg.clone(), SmoSettings::default().without_pvb(), target).unwrap();
        let tj = problem.init_theta_j(SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        });
        let tm = problem.init_theta_m();
        let eval = problem.eval(&tj, &tm, GradRequest::MASK).unwrap();
        let g = eval.grad_theta_m.unwrap();
        let mut stepped = tm.clone();
        stepped.axpy(-0.05, &g);
        let after = problem.loss(&tj, &stepped).unwrap().total;
        prop_assert!(after < eval.loss.total, "{} → {}", eval.loss.total, after);
    }
}
