//! Verifies the zero-allocation acceptance criterion of the imaging
//! pipeline: after one warm-up call (which populates the engine's workspace
//! pool), the single-threaded forward and gradient passes through the
//! `*_into` APIs perform **zero** heap allocations.
//!
//! Measured, not asserted from reading the code: a wrapping global allocator
//! counts every allocation on this thread. The counter is thread-local so
//! other test threads in the same binary cannot perturb it.
//!
//! @bismo:allow-unsafe — counting global allocator, the sanctioned `unsafe`
//! site class (DESIGN.md §12); every use carries a `// SAFETY:` rationale.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bismo::prelude::*;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the only addition is bumping a
// `const`-initialized thread-local counter, which itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System::alloc`, delegated unchanged;
    // the `const`-initialized thread-local bump cannot re-enter the allocator.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded as-is.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: `ptr`/`layout` come from the paired alloc path above, which
    // always delegates to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded as-is.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwarded verbatim to `System::realloc` under the same
    // contract; only the thread-local counter bump is added.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded as-is.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = THREAD_ALLOCS.with(Cell::get);
    let out = f();
    let after = THREAD_ALLOCS.with(Cell::get);
    (after - before, out)
}

fn fixture() -> (OpticalConfig, AbbeImager, Source, RealField, RealField) {
    let cfg = OpticalConfig::test_small();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let source = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    let n = cfg.mask_dim();
    let mask = RealField::from_fn(n, |r, c| {
        if (24..40).contains(&r) && (20..44).contains(&c) {
            0.8
        } else {
            0.2
        }
    });
    let coeff = RealField::from_fn(n, |r, c| ((r * 7 + c * 3) % 5) as f64 / 5.0 - 0.4);
    (cfg, abbe, source, mask, coeff)
}

#[test]
fn forward_imaging_is_allocation_free_after_warmup() {
    let (cfg, abbe, source, mask, _) = fixture();
    let mut out = RealField::zeros(cfg.mask_dim());
    // Warm-up: sizes the pooled workspace buffers.
    abbe.intensity_into(&source, &mask, &mut out).unwrap();
    let reference = out.clone();

    let (allocs, result) = allocs_during(|| abbe.intensity_into(&source, &mask, &mut out));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "forward imaging allocated {allocs} times after warm-up"
    );
    assert_eq!(out, reference, "warm call changed the image");
}

#[test]
fn gradient_imaging_is_allocation_free_after_warmup() {
    let (cfg, abbe, source, mask, coeff) = fixture();
    let n = cfg.mask_dim();
    let nj2 = cfg.source_dim() * cfg.source_dim();
    let intensity = abbe.intensity(&source, &mask).unwrap();
    let mut gm = RealField::zeros(n);
    let mut gj = vec![0.0; nj2];
    // Warm-up for the gradient pass (needs two pooled workspaces).
    abbe.gradients_into(&source, &mask, &coeff, &intensity, &mut gm, &mut gj)
        .unwrap();

    let (allocs, result) =
        allocs_during(|| abbe.gradients_into(&source, &mask, &coeff, &intensity, &mut gm, &mut gj));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "shared gradient pass allocated {allocs} times after warm-up"
    );

    let (allocs, result) =
        allocs_during(|| abbe.grad_source_into(&source, &mask, &coeff, &intensity, &mut gj));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "source-gradient pass allocated {allocs} times after warm-up"
    );

    let (allocs, result) = allocs_during(|| abbe.grad_mask_into(&source, &mask, &coeff, &mut gm));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "mask-gradient pass allocated {allocs} times after warm-up"
    );
}

#[test]
fn real_spectrum_path_is_allocation_free_after_warmup() {
    // The opt-in real-input mask-spectrum path must meet the same bar as
    // the default path: zero heap allocations per warm call, for both the
    // forward image and the gradient pass.
    let (cfg, abbe, source, mask, coeff) = fixture();
    let abbe = abbe.with_real_spectrum(true);
    let mut out = RealField::zeros(cfg.mask_dim());
    abbe.intensity_into(&source, &mask, &mut out).unwrap();
    let reference = out.clone();

    let (allocs, result) = allocs_during(|| abbe.intensity_into(&source, &mask, &mut out));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "real-spectrum forward allocated {allocs} times after warm-up"
    );
    assert_eq!(out, reference, "warm real-spectrum call changed the image");

    let mut gm = RealField::zeros(cfg.mask_dim());
    abbe.grad_mask_into(&source, &mask, &coeff, &mut gm)
        .unwrap();
    let (allocs, result) = allocs_during(|| abbe.grad_mask_into(&source, &mask, &coeff, &mut gm));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "real-spectrum mask-gradient allocated {allocs} times after warm-up"
    );
}

#[test]
fn batched_hot_path_is_allocation_free_after_warmup() {
    // The fused batch pipeline at B = 3 (the dose-corner batch of the SMO
    // objective): after one warm-up call sizes the batch workspace pool,
    // `intensity_batch_into` and `grad_mask_batch_into` must perform zero
    // heap allocations per call.
    let (cfg, abbe, source, mask, coeff) = fixture();
    let n = cfg.mask_dim();
    let masks =
        FieldBatch::from_fields(&[mask.clone(), mask.map(|v| 0.98 * v), mask.map(|v| 1.02 * v)]);
    let g_batch = FieldBatch::from_fields(&[coeff.clone(), coeff.clone(), coeff.clone()]);
    let mut images = FieldBatch::zeros(n, 3);
    let mut grads = FieldBatch::zeros(n, 3);

    // Warm-up: populates the pooled batch workspaces at (grid, B=3).
    abbe.intensity_batch_into(&source, &masks, &mut images)
        .unwrap();
    abbe.grad_mask_batch_into(&source, &masks, &g_batch, &mut grads)
        .unwrap();
    let reference = images.clone();

    let (allocs, result) =
        allocs_during(|| abbe.intensity_batch_into(&source, &masks, &mut images));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "batched forward imaging allocated {allocs} times after warm-up"
    );
    assert_eq!(images, reference, "warm batched call changed the images");

    let (allocs, result) =
        allocs_during(|| abbe.grad_mask_batch_into(&source, &masks, &g_batch, &mut grads));
    result.unwrap();
    assert_eq!(
        allocs, 0,
        "batched mask-gradient pass allocated {allocs} times after warm-up"
    );

    // And every batch entry is bitwise the matching single-mask call.
    let mut single = RealField::zeros(n);
    for b in 0..3 {
        abbe.intensity_into(&source, &masks.entry_field(b), &mut single)
            .unwrap();
        assert_eq!(images.entry(b), single.as_slice(), "entry {b}");
    }
}

#[test]
fn grid_transfer_warm_paths_are_allocation_free() {
    // The spectral grid-transfer operators of the multigrid schedule
    // (DESIGN.md §11): with a caller-owned workspace, warm `restrict2_into`
    // and `prolong2_into` calls perform zero heap allocations — they run
    // once per level switch inside solver loops and must not churn.
    use bismo::fft::GridTransfer;

    let (fine_dim, coarse_dim) = (64usize, 32usize);
    let xfer = GridTransfer::new(fine_dim, coarse_dim).unwrap();
    let fine: Vec<f64> = (0..fine_dim * fine_dim)
        .map(|i| ((i * 37) % 11) as f64 / 11.0 - 0.3)
        .collect();
    let mut coarse = vec![0.0; coarse_dim * coarse_dim];
    let mut back = vec![0.0; fine_dim * fine_dim];
    let mut ws = xfer.workspace();

    // Warm-up sizes nothing lazily today, but keeps the test honest if the
    // workspace ever grows lazy buffers.
    xfer.restrict2_into(&fine, &mut coarse, &mut ws).unwrap();
    xfer.prolong2_into(&coarse, &mut back, &mut ws).unwrap();
    let reference = coarse.clone();

    let (allocs, result) = allocs_during(|| xfer.restrict2_into(&fine, &mut coarse, &mut ws));
    result.unwrap();
    assert_eq!(allocs, 0, "warm restrict2 allocated {allocs} times");
    assert_eq!(coarse, reference, "warm restrict2 changed the result");

    let (allocs, result) = allocs_during(|| xfer.prolong2_into(&coarse, &mut back, &mut ws));
    result.unwrap();
    assert_eq!(allocs, 0, "warm prolong2 allocated {allocs} times");
}

#[test]
fn allocating_wrappers_only_allocate_their_outputs() {
    // The plain `intensity`/`gradients` APIs allocate exactly the returned
    // buffers — one for the image, two for the gradient pair — and nothing
    // else once the pool is warm.
    let (_, abbe, source, mask, coeff) = fixture();
    let intensity = abbe.intensity(&source, &mask).unwrap();
    let _ = abbe.gradients(&source, &mask, &coeff, &intensity).unwrap();

    let (allocs, _) = allocs_during(|| abbe.intensity(&source, &mask).unwrap());
    assert_eq!(allocs, 1, "forward wrapper allocated {allocs} times");
    let (allocs, _) = allocs_during(|| abbe.gradients(&source, &mask, &coeff, &intensity).unwrap());
    assert_eq!(allocs, 2, "gradient wrapper allocated {allocs} times");
}
