//! Criterion benchmarks for the computational kernels behind the paper's
//! runtime analysis (§3.1, Table 4): FFTs, Abbe vs Hopkins forward imaging,
//! adjoint gradients, and TCC construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bismo::fft::{Complex64, Fft2Plan};
use bismo::prelude::*;

fn bench_cfg() -> OpticalConfig {
    // 64×64 at 16 nm: big enough to be representative, small enough for a
    // single-core bench run.
    OpticalConfig::builder()
        .mask_dim(64)
        .pixel_nm(16.0)
        .source_dim(7)
        .build()
        .expect("bench config")
}

fn fixtures() -> (OpticalConfig, Source, RealField) {
    let cfg = bench_cfg();
    let source = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    let mask = Clip::simple_rect(&cfg).target;
    (cfg, source, mask)
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2");
    group.sample_size(30);
    for n in [64usize, 128, 256] {
        let plan = Fft2Plan::new(n, n).unwrap();
        let data = vec![Complex64::new(0.3, -0.1); n * n];
        let real: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 * 0.1).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf).unwrap();
                buf
            });
        });
        group.bench_with_input(BenchmarkId::new("forward_real", n), &n, |b, _| {
            b.iter(|| plan.forward_real(&real).unwrap());
        });
    }
    group.finish();
}

/// The threaded batch split against the single-threaded batch kernel on the
/// same stacked buffer (bit-identical results; the delta is worker fan-out
/// minus spawn/join overhead — on a single-core host expect parity or a
/// small regression, which is exactly what this bench is for detecting).
fn bench_fft_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2_batch");
    group.sample_size(15);
    let n = 128usize;
    let batch = 6usize;
    let plan = Fft2Plan::new(n, n).unwrap();
    let stacked = vec![Complex64::new(0.3, -0.1); batch * n * n];
    group.bench_function("forward_b6_single", |b| {
        b.iter(|| {
            let mut buf = stacked.clone();
            plan.batched(batch).forward(&mut buf).unwrap();
            buf
        });
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("forward_b6_threaded", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut buf = stacked.clone();
                    plan.batched(batch).forward_threaded(&mut buf, t).unwrap();
                    buf
                });
            },
        );
    }
    group.finish();
}

fn bench_forward_models(c: &mut Criterion) {
    let (cfg, source, mask) = fixtures();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let hopkins = HopkinsImager::new(&cfg, &source, 24).unwrap();
    let mut group = c.benchmark_group("forward");
    group.sample_size(20);
    group.bench_function("abbe", |b| {
        b.iter(|| abbe.intensity(&source, &mask).unwrap());
    });
    group.bench_function("hopkins_q24", |b| {
        b.iter(|| hopkins.intensity(&mask).unwrap());
    });
    group.finish();
}

fn bench_gradients(c: &mut Criterion) {
    let (cfg, source, mask) = fixtures();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let hopkins = HopkinsImager::new(&cfg, &source, 24).unwrap();
    let g = RealField::filled(cfg.mask_dim(), 0.5);
    let i0 = abbe.intensity(&source, &mask).unwrap();
    let mut group = c.benchmark_group("gradients");
    group.sample_size(15);
    group.bench_function("abbe_mask_grad", |b| {
        b.iter(|| abbe.grad_mask(&source, &mask, &g).unwrap());
    });
    group.bench_function("abbe_source_grad", |b| {
        b.iter(|| abbe.grad_source(&source, &mask, &g, &i0).unwrap());
    });
    group.bench_function("abbe_both_grads", |b| {
        b.iter(|| abbe.gradients(&source, &mask, &g, &i0).unwrap());
    });
    group.bench_function("hopkins_mask_grad", |b| {
        b.iter(|| hopkins.grad_mask(&mask, &g).unwrap());
    });
    group.finish();
}

fn bench_tcc_build(c: &mut Criterion) {
    let (cfg, source, _) = fixtures();
    let mut group = c.benchmark_group("tcc");
    group.sample_size(10);
    group.bench_function("build_q24", |b| {
        b.iter(|| HopkinsImager::new(&cfg, &source, 24).unwrap());
    });
    group.finish();
}

/// The batched imaging axis (DESIGN.md §9): the three dose-corner masks of
/// the SMO objective, evaluated as one fused batch call versus three
/// sequential single-mask calls — per-entry results are bit-identical, so
/// the delta is pure scheduling.
fn bench_batched_imaging(c: &mut Criterion) {
    let (cfg, source, mask) = fixtures();
    let abbe = AbbeImager::new(&cfg).unwrap();
    let hopkins = HopkinsImager::new(&cfg, &source, 24).unwrap();
    let corner_masks: Vec<RealField> = [1.0, 0.98, 1.02].map(|d| mask.map(|v| d * v)).to_vec();
    let masks = FieldBatch::from_fields(&corner_masks);
    let g = RealField::filled(cfg.mask_dim(), 0.5);
    let g_batch = FieldBatch::from_fields(&[g.clone(), g.clone(), g.clone()]);

    let mut group = c.benchmark_group("batched");
    group.sample_size(20);
    group.bench_function("abbe_3corner_sequential", |b| {
        b.iter(|| {
            corner_masks
                .iter()
                .map(|m| abbe.intensity(&source, m).unwrap())
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("abbe_3corner_fused", |b| {
        b.iter(|| abbe.intensity_batch(&source, &masks).unwrap());
    });
    group.bench_function("abbe_3corner_grad_fused", |b| {
        b.iter(|| abbe.grad_mask_batch(&source, &masks, &g_batch).unwrap());
    });
    group.bench_function("hopkins_3corner_fused", |b| {
        b.iter(|| hopkins.intensity_batch(&masks).unwrap());
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_fft,
    bench_fft_threaded,
    bench_forward_models,
    bench_gradients,
    bench_tcc_build,
    bench_batched_imaging
);
criterion_main!(kernels);
