//! Criterion benchmarks for whole optimization steps: one Abbe-MO step,
//! one AM-SMO update of each phase, and one BiSMO outer iteration per
//! hypergradient method — the per-iteration costs behind Table 4's TAT
//! column.

use criterion::{criterion_group, criterion_main, Criterion};

use bismo::prelude::*;

fn fixtures() -> (SmoProblem, Vec<f64>, RealField) {
    let cfg = OpticalConfig::builder()
        .mask_dim(64)
        .pixel_nm(16.0)
        .source_dim(7)
        .build()
        .expect("bench config");
    let clip = Clip::simple_rect(&cfg);
    let problem =
        SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target).expect("problem setup");
    let tj = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let tm = problem.init_theta_m();
    (problem, tj, tm)
}

fn bench_eval(c: &mut Criterion) {
    let (problem, tj, tm) = fixtures();
    let mut group = c.benchmark_group("eval");
    group.sample_size(15);
    group.bench_function("loss_only", |b| {
        b.iter(|| problem.loss(&tj, &tm).unwrap());
    });
    group.bench_function("mask_grad", |b| {
        b.iter(|| problem.eval(&tj, &tm, GradRequest::MASK).unwrap());
    });
    group.bench_function("source_grad", |b| {
        b.iter(|| problem.eval(&tj, &tm, GradRequest::SOURCE).unwrap());
    });
    group.bench_function("both_grads", |b| {
        b.iter(|| problem.eval(&tj, &tm, GradRequest::BOTH).unwrap());
    });
    group.finish();
}

fn bench_outer_steps(c: &mut Criterion) {
    let (problem, tj, tm) = fixtures();
    let mut group = c.benchmark_group("one_step");
    group.sample_size(10);
    // One-step budgets for every family, driven through the registry.
    let mut cfg = SolverConfig::default();
    cfg.mo.steps = 1;
    cfg.bismo.outer_steps = 1;
    cfg.am.rounds = 1;
    cfg.am.so_steps = 1;
    cfg.am.mo_steps = 1;
    let run_once = |name: &str| {
        let mut session = SolverRegistry::builtin()
            .session_with_init(name, &problem, &cfg, tj.clone(), tm.clone())
            .expect("registry session");
        session.run().expect("solver run");
        session.into_outcome()
    };
    for (label, method) in [
        ("abbe_mo", "Abbe-MO"),
        ("bismo_fd", "BiSMO-FD"),
        ("bismo_nmn_k5", "BiSMO-NMN"),
        ("bismo_cg_k5", "BiSMO-CG"),
        ("am_smo_round", "AM(A~A)"),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| run_once(method));
        });
    }
    group.finish();
}

criterion_group!(smo, bench_eval, bench_outer_steps);
criterion_main!(smo);
