//! Focus-axis process window (extension beyond the paper's dose-only PVB):
//! images an optimized mask through defocused pupils and reports how the
//! printed area and the focus-XOR band degrade with defocus.
//!
//! ```sh
//! cargo run --release --example defocus_window
//! ```

use bismo::core::xor_area_nm2;
use bismo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OpticalConfig::test_small();
    let clip = Clip::simple_rect(&cfg);
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target.clone())?;
    let theta_j = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let theta_m0 = problem.init_theta_m();

    // Optimize at nominal focus first.
    let mut config = SolverConfig::default();
    config.bismo.outer_steps = 12;
    let mut session = SolverRegistry::builtin()
        .session_with_init("BiSMO-FD", &problem, &config, theta_j, theta_m0)?;
    session.run()?;
    let out = session.into_outcome();
    let source = problem.source(&out.theta_j);
    let mask = problem.mask(&out.theta_m);
    let resist = problem.resist();

    let focused_print = {
        let abbe = AbbeImager::new(&cfg)?;
        resist.print(&abbe.intensity(&source, &mask)?)
    };

    println!("defocus (nm) | printed area (nm²) | XOR vs focus (nm²) | peak I");
    for z in [0.0, 40.0, 80.0, 120.0, 160.0] {
        let abbe = AbbeImager::new(&cfg)?.with_defocus(z);
        let aerial = abbe.intensity(&source, &mask)?;
        let print = resist.print(&aerial);
        let area = print.sum() * cfg.pixel_nm() * cfg.pixel_nm();
        let xor = xor_area_nm2(&print, &focused_print, cfg.pixel_nm());
        println!(
            "{z:>12.0} | {area:>18.0} | {xor:>18.0} | {:>6.3}",
            aerial.max()
        );
    }
    println!(
        "\nDefocus softens contrast (peak intensity drops) and the printed\n\
         contour drifts from the in-focus result — the focus analogue of the\n\
         paper's dose-axis PVB (Definition 2)."
    );
    Ok(())
}
