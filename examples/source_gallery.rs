//! Source gallery: rasterizes the parametric illumination templates of the
//! paper (§3.1 — annular, quasar, dipole, conventional), prints ASCII
//! previews, and shows how each template images the same mask.
//!
//! ```sh
//! cargo run --release --example source_gallery
//! ```

use bismo::prelude::*;

fn ascii(source: &Source) -> String {
    let n = source.dim();
    let mut out = String::new();
    for r in 0..n {
        for c in 0..n {
            out.push(if source.weights()[r * n + c] > 0.5 {
                '#'
            } else {
                '.'
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OpticalConfig::test_small();
    let abbe = AbbeImager::new(&cfg)?;
    let resist = ResistModel::new(30.0, 0.225);
    let clip = Clip::simple_rect(&cfg);

    let templates: Vec<(&str, SourceShape)> = vec![
        ("conventional", SourceShape::Conventional { sigma_out: 0.6 }),
        (
            "annular",
            SourceShape::Annular {
                sigma_in: cfg.sigma_in(),
                sigma_out: cfg.sigma_out(),
            },
        ),
        (
            "quasar",
            SourceShape::Quasar {
                sigma_in: 0.5,
                sigma_out: 0.95,
                half_angle: 0.5,
            },
        ),
        (
            "dipole-x",
            SourceShape::Dipole {
                sigma_in: 0.5,
                sigma_out: 0.95,
                half_angle: 0.5,
            },
        ),
    ];

    // Every template images the same clip at all three dose corners via one
    // fused batched call — the process-window evaluation the objective runs.
    let dose = DoseCorners::PAPER;
    let masks = FieldBatch::from_fields(&[
        clip.target.clone(),
        clip.target.map(|v| dose.min() * v),
        clip.target.map(|v| dose.max() * v),
    ]);
    for (name, shape) in templates {
        let source = Source::from_shape(&cfg, shape);
        println!(
            "=== {name} ({} points lit) ===",
            source.effective_count(0.5)
        );
        println!("{}", ascii(&source));
        let images = abbe.intensity_batch(&source, &masks)?;
        let aerial = images.entry_field(0);
        let print = resist.print(&aerial);
        let l2 = bismo::core::l2_area_nm2(&print, &clip.target, cfg.pixel_nm());
        let pvb = bismo::core::xor_area_nm2(
            &resist.print(&images.entry_field(1)),
            &resist.print(&images.entry_field(2)),
            cfg.pixel_nm(),
        );
        println!(
            "imaging the rectangle: peak intensity {:.3}, print L2 error {l2:.0} nm², \
             dose-corner PVB {pvb:.0} nm²\n",
            aerial.max()
        );
    }
    println!("Different pupils favor different pattern orientations — the reason SMO optimizes the source at all.");
    Ok(())
}
