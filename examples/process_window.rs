//! Process-window study: shows how the PVB term of the objective (paper
//! Eq. 8) shrinks the process-variation band, and how the printed image
//! degrades at the dose corners without it.
//!
//! ```sh
//! cargo run --release --example process_window
//! ```

use bismo::prelude::*;

fn pvb_of(problem: &SmoProblem, theta_j: &[f64], theta_m: &RealField) -> f64 {
    measure(problem, theta_j, theta_m, EpeSpec::default())
        .expect("imaging")
        .pvb_nm2
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OpticalConfig::test_small();
    // A comfortably printable feature keeps the focus on the dose corners.
    let clip = Clip::simple_rect(&cfg);
    let clip = &clip;
    let shape = SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    };

    // Same clip, two objectives: with and without the PVB term.
    let with_pvb = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target.clone())?;
    let without_pvb = SmoProblem::new(
        cfg.clone(),
        SmoSettings::default().without_pvb(),
        clip.target.clone(),
    )?;

    let mut config = SolverConfig::default();
    config.bismo.outer_steps = 16;
    let run = |problem: &SmoProblem| -> Result<(Vec<f64>, RealField), String> {
        let tj = problem.init_theta_j(shape);
        let tm = problem.init_theta_m();
        let mut session =
            SolverRegistry::builtin().session_with_init("BiSMO-FD", problem, &config, tj, tm)?;
        session.run().map_err(|e| e.to_string())?;
        let out = session.into_outcome();
        Ok((out.theta_j, out.theta_m))
    };

    let (tj_a, tm_a) = run(&with_pvb)?;
    let (tj_b, tm_b) = run(&without_pvb)?;

    // Both results are scored on the same (PVB-aware) problem.
    let pvb_aware = pvb_of(&with_pvb, &tj_a, &tm_a);
    let pvb_blind = pvb_of(&with_pvb, &tj_b, &tm_b);
    println!("PVB with process-window term   : {pvb_aware:.0} nm²");
    println!("PVB without process-window term: {pvb_blind:.0} nm²");
    println!(
        "The η·L_pvb term trades a little nominal fidelity for a {} process window.",
        if pvb_aware <= pvb_blind {
            "tighter"
        } else {
            "(unexpectedly) looser — try more steps"
        }
    );

    // Peek at the dose corners for the PVB-aware result: all three corner
    // masks image through one fused batched call.
    let dose = with_pvb.settings().dose;
    let source = with_pvb.source(&tj_a);
    let mask = with_pvb.mask(&tm_a);
    let corners = [("min", dose.min()), ("nominal", 1.0), ("max", dose.max())];
    let masks = FieldBatch::from_fields(
        &corners
            .iter()
            .map(|&(_, d)| mask.map(|v| d * v))
            .collect::<Vec<_>>(),
    );
    let images = with_pvb.abbe().intensity_batch(&source, &masks)?;
    for (b, (label, d)) in corners.iter().enumerate() {
        let print = with_pvb.resist().print(&images.entry_field(b));
        println!(
            "dose {label:>7} ({d:.2}): printed area {:.0} nm²",
            print.sum() * cfg.pixel_nm() * cfg.pixel_nm()
        );
    }
    Ok(())
}
