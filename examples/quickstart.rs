//! Quickstart: run BiSMO-NMN on a single rectangle target and print the
//! before/after loss and metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bismo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small optical configuration (64×64 mask, 7×7 source) keeps this
    // example fast; `OpticalConfig::scaled_default()` is the benchmark size.
    let cfg = OpticalConfig::test_small();
    let clip = Clip::simple_rect(&cfg);
    println!(
        "target: {} ({:.0} nm² of pattern)",
        clip.name, clip.area_nm2
    );

    // The SMO problem bundles the Abbe engine, the sigmoid resist model and
    // the γ·L2 + η·PVB objective of the paper.
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target)?;

    // Table 1 initialization: mask parameters from the target, source
    // parameters from an annular template.
    let theta_j = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let theta_m = problem.init_theta_m();

    let before = problem.loss(&theta_j, &theta_m)?;
    println!(
        "initial loss: {:.3} (L2 {:.5}, PVB {:.5})",
        before.total, before.l2, before.pvb
    );

    // Bilevel SMO with the Neumann-series hypergradient (Algorithm 2).
    let out = run_bismo(
        &problem,
        &theta_j,
        &theta_m,
        BismoConfig {
            outer_steps: 10,
            method: HypergradMethod::Neumann { k: 3 },
            ..BismoConfig::default()
        },
    )?;
    let after = problem.loss(&out.theta_j, &out.theta_m)?;
    println!(
        "final loss:   {:.3} (L2 {:.5}, PVB {:.5}) after {} outer steps, {:.1}s",
        after.total,
        after.l2,
        after.pvb,
        out.trace.len(),
        out.wall_s
    );

    // Contest-style metrics (Definitions 1–3 of the paper).
    let metrics = measure(&problem, &out.theta_j, &out.theta_m, EpeSpec::default())?;
    println!(
        "metrics: L2 {:.0} nm², PVB {:.0} nm², EPE violations {}",
        metrics.l2_nm2, metrics.pvb_nm2, metrics.epe
    );
    Ok(())
}
