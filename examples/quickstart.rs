//! Quickstart: run BiSMO-NMN on a single rectangle target through the
//! session API and print the before/after loss and metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bismo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small optical configuration (64×64 mask, 7×7 source) keeps this
    // example fast; `OpticalConfig::scaled_default()` is the benchmark size.
    let cfg = OpticalConfig::test_small();
    let clip = Clip::simple_rect(&cfg);
    println!(
        "target: {} ({:.0} nm² of pattern)",
        clip.name, clip.area_nm2
    );

    // The SMO problem bundles the Abbe engine, the sigmoid resist model and
    // the γ·L2 + η·PVB objective of the paper.
    let problem = SmoProblem::new(cfg, SmoSettings::default(), clip.target)?;

    // Every method of the paper lives in the solver registry under its
    // column label; the layered config carries the per-family knobs.
    let mut config = SolverConfig::default();
    config.bismo.outer_steps = 10;
    config.bismo.k = 3;

    let before = {
        let session = SolverRegistry::builtin().session("BiSMO-NMN", &problem, &config)?;
        problem.loss(session.theta_j(), session.theta_m())?
    };
    println!(
        "initial loss: {:.3} (L2 {:.5}, PVB {:.5})",
        before.total, before.l2, before.pvb
    );

    // Bilevel SMO with the Neumann-series hypergradient (Algorithm 2),
    // with a streaming observer printing every other outer step.
    let mut session = SolverRegistry::builtin()
        .session("BiSMO-NMN", &problem, &config)?
        .observe(|event| {
            if let Some(r) = event.new_records.last() {
                if r.step % 2 == 0 {
                    println!("  step {:>2}: loss {:.3}", r.step, r.loss);
                }
            }
            Control::Continue
        });
    session.run()?;
    let out = session.into_outcome();
    let after = problem.loss(&out.theta_j, &out.theta_m)?;
    println!(
        "final loss:   {:.3} (L2 {:.5}, PVB {:.5}) after {} outer steps, {:.1}s",
        after.total,
        after.l2,
        after.pvb,
        out.trace.len(),
        out.wall_s
    );

    // Contest-style metrics (Definitions 1–3 of the paper).
    let metrics = measure(&problem, &out.theta_j, &out.theta_m, EpeSpec::default())?;
    println!(
        "metrics: L2 {:.0} nm², PVB {:.0} nm², EPE violations {}",
        metrics.l2_nm2, metrics.pvb_nm2, metrics.epe
    );
    Ok(())
}
