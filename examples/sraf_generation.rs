//! SRAF emergence: the paper notes (§3.1) that initializing the mask
//! parameters from the target "also facilitates SRAF generation during MO" —
//! inverse lithography grows sub-resolution assist features around the main
//! pattern. This example runs Abbe-MO on an isolated contact and counts the
//! mask area that appears *away* from the target feature.
//!
//! ```sh
//! cargo run --release --example sraf_generation
//! ```

use bismo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OpticalConfig::test_small();
    let n = cfg.mask_dim();
    // An isolated small contact: the classic SRAF scenario.
    let target = RealField::from_fn(n, |r, c| {
        let dr = r as isize - n as isize / 2;
        let dc = c as isize - n as isize / 2;
        if dr.abs() < 3 && dc.abs() < 3 {
            1.0
        } else {
            0.0
        }
    });
    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), target.clone())?;

    let mut config = SolverConfig::default();
    config.mo.steps = 40;
    let out = SolverRegistry::builtin().run("Abbe-MO", &problem, &config)?;

    // Count bright mask pixels more than 4 px away from any target pixel —
    // those are assist features, not main-feature edge corrections.
    let mask = problem.mask(&out.theta_m);
    let margin = 4usize;
    let mut assist_px = 0usize;
    let mut main_px = 0usize;
    for r in 0..n {
        for c in 0..n {
            if mask[(r, c)] < 0.5 {
                continue;
            }
            let mut near_target = false;
            let r0 = r.saturating_sub(margin);
            let c0 = c.saturating_sub(margin);
            'scan: for rr in r0..(r + margin + 1).min(n) {
                for cc in c0..(c + margin + 1).min(n) {
                    if target[(rr, cc)] >= 0.5 {
                        near_target = true;
                        break 'scan;
                    }
                }
            }
            if near_target {
                main_px += 1;
            } else {
                assist_px += 1;
            }
        }
    }
    let px2 = cfg.pixel_nm() * cfg.pixel_nm();
    println!(
        "main-feature mask area : {:.0} nm² ({main_px} px)",
        main_px as f64 * px2
    );
    println!(
        "assist-feature area    : {:.0} nm² ({assist_px} px)",
        assist_px as f64 * px2
    );
    println!(
        "loss: {:.3} → {:.3} over {} steps",
        out.trace.records()[0].loss,
        out.trace.final_loss().unwrap(),
        out.trace.len()
    );
    if assist_px > 0 {
        println!("SRAFs emerged away from the main feature — ILT at work.");
    } else {
        println!("No SRAFs at this scale; try a larger grid or more steps.");
    }
    Ok(())
}
