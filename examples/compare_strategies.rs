//! Compares the co-optimization strategies of the paper on one metal clip:
//! mask-only (Abbe-MO), alternating minimization (AM-SMO, Algorithm 1) and
//! bilevel SMO (BiSMO, Algorithm 2) — the Figure 3 story in miniature.
//!
//! ```sh
//! cargo run --release --example compare_strategies
//! ```

use bismo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OpticalConfig::test_small();
    let suite = Suite::generate(SuiteKind::Iccad13, &cfg, 1);
    let clip = &suite.clips()[0];
    println!("clip: {} ({:.0} nm²)", clip.name, clip.area_nm2);

    let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), clip.target.clone())?;
    let theta_j = problem.init_theta_j(SourceShape::Annular {
        sigma_in: cfg.sigma_in(),
        sigma_out: cfg.sigma_out(),
    });
    let theta_m = problem.init_theta_m();

    // 1) Mask-only: the source never moves.
    let mo = run_abbe_mo(
        &problem,
        &theta_j,
        &theta_m,
        MoConfig {
            steps: 24,
            ..MoConfig::default()
        },
    )?;
    let mo_loss = problem.loss(&theta_j, &mo.theta_m)?.total;

    // 2) Alternating minimization (Algorithm 1): SO and MO take turns.
    let am = run_am_smo(
        &problem,
        &theta_j,
        &theta_m,
        AmSmoConfig {
            rounds: 3,
            so_steps: 3,
            mo_steps: 8,
            ..AmSmoConfig::default()
        },
    )?;
    let am_loss = problem.loss(&am.theta_j, &am.theta_m)?.total;

    // 3) Bilevel SMO (Algorithm 2): the mask update sees the source's
    //    best response through the hypergradient.
    let bi = run_bismo(
        &problem,
        &theta_j,
        &theta_m,
        BismoConfig {
            outer_steps: 24,
            method: HypergradMethod::Neumann { k: 3 },
            ..BismoConfig::default()
        },
    )?;
    let bi_loss = problem.loss(&bi.theta_j, &bi.theta_m)?.total;

    println!("\nfinal L_smo (lower is better):");
    println!("  Abbe-MO (mask only) : {mo_loss:.3}  in {:.1}s", mo.wall_s);
    println!("  AM-SMO  (Alg. 1)    : {am_loss:.3}  in {:.1}s", am.wall_s);
    println!("  BiSMO-NMN (Alg. 2)  : {bi_loss:.3}  in {:.1}s", bi.wall_s);
    println!("\nExpected ordering (paper Fig. 3): MO > AM-SMO > BiSMO.");
    Ok(())
}
