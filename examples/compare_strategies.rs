//! Compares the co-optimization strategies of the paper on one metal clip:
//! mask-only (Abbe-MO), alternating minimization (AM-SMO, Algorithm 1) and
//! bilevel SMO (BiSMO, Algorithm 2) — the Figure 3 story in miniature,
//! and a demonstration of the registry API: each strategy is the same three
//! lines with a different method name and config section.
//!
//! ```sh
//! cargo run --release --example compare_strategies
//! ```

use bismo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OpticalConfig::test_small();
    let suite = Suite::generate(SuiteKind::Iccad13, &cfg, 1);
    let clip = &suite.clips()[0];
    println!("clip: {} ({:.0} nm²)", clip.name, clip.area_nm2);

    let problem = SmoProblem::new(cfg, SmoSettings::default(), clip.target.clone())?;
    let registry = SolverRegistry::builtin();

    let mut config = SolverConfig::default();
    config.mo.steps = 24; // 1) mask-only: the source never moves
    config.am.rounds = 3; // 2) AM-SMO: SO and MO take turns
    config.am.so_steps = 3;
    config.am.mo_steps = 8;
    config.bismo.outer_steps = 24; // 3) BiSMO: hypergradient mask updates
    config.bismo.k = 3;

    println!("\nfinal L_smo (lower is better):");
    for (label, method) in [
        ("Abbe-MO (mask only)", "Abbe-MO"),
        ("AM-SMO  (Alg. 1)   ", "AM(A~A)"),
        ("BiSMO-NMN (Alg. 2) ", "BiSMO-NMN"),
    ] {
        let out = registry.run(method, &problem, &config)?;
        let loss = problem.loss(&out.theta_j, &out.theta_m)?.total;
        println!("  {label}: {loss:.3}  in {:.1}s", out.wall_s);
    }
    println!("\nExpected ordering (paper Fig. 3): MO > AM-SMO > BiSMO.");
    Ok(())
}
