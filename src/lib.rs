//! # bismo
//!
//! A from-scratch Rust reproduction of **"Efficient Bilevel Source Mask
//! Optimization"** (Chen, He, Xu, Geng, Yu — DAC 2024).
//!
//! Source mask optimization (SMO) jointly tunes the lithography illumination
//! source and the mask pattern so the printed resist image matches a target
//! layout across the process window. This workspace implements the paper's
//! full stack:
//!
//! * [`fft`] — complex arithmetic and radix-2 FFTs;
//! * [`linalg`] — Hermitian eigensolvers and matrix-free conjugate gradients;
//! * [`optics`] — optical configuration, pupil, illumination sources;
//! * [`litho`] — Abbe and Hopkins/SOCS simulators with hand-derived adjoints;
//! * [`opt`] — SGD / momentum / Adam;
//! * [`core`] — the SMO objective, AM-SMO baseline (Algorithm 1) and the
//!   three BiSMO hypergradient methods (Algorithm 2);
//! * [`layout`] — synthetic ICCAD13 / ICCAD-L / ISPD19-style benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use bismo::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = OpticalConfig::test_small();
//! let clip = Clip::simple_rect(&cfg);
//! let problem = SmoProblem::new(cfg.clone(), SmoSettings::default().without_pvb(), clip.target)?;
//! let theta_j = problem.init_theta_j(SourceShape::Annular {
//!     sigma_in: cfg.sigma_in(),
//!     sigma_out: cfg.sigma_out(),
//! });
//! let theta_m = problem.init_theta_m();
//! let out = run_bismo(&problem, &theta_j, &theta_m, BismoConfig {
//!     outer_steps: 3,
//!     method: HypergradMethod::FiniteDiff,
//!     ..BismoConfig::default()
//! })?;
//! assert!(out.trace.final_loss().unwrap().is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bismo_core as core;
pub use bismo_fft as fft;
pub use bismo_layout as layout;
pub use bismo_linalg as linalg;
pub use bismo_litho as litho;
pub use bismo_opt as opt;
pub use bismo_optics as optics;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use bismo_core::{
        measure, run_abbe_mo, run_am_smo, run_bismo, run_hopkins_mo, run_milt_proxy,
        run_nilt_proxy, Activation, AmSmoConfig, BismoConfig, ConvergenceTrace, EpeSpec,
        GradRequest, HopkinsMoProblem, HypergradMethod, LossValue, MetricSet, MoConfig, MoModel,
        MoOutcome, MoProblem, SmoEval, SmoOutcome, SmoProblem, SmoSettings, SourceActivationKind,
        StepRecord, StopRule,
    };
    pub use bismo_layout::{upsample, write_pgm, Clip, Suite, SuiteKind};
    pub use bismo_litho::{
        AbbeImager, DoseCorners, HopkinsImager, ImagingBackend, LithoError, ResistModel,
    };
    pub use bismo_opt::{Adam, Momentum, Optimizer, OptimizerKind, Sgd};
    pub use bismo_optics::{
        ImagingCore, OpticalConfig, Pupil, RealField, Source, SourcePoint, SourceShape,
    };
}
