//! # bismo
//!
//! A from-scratch Rust reproduction of **"Efficient Bilevel Source Mask
//! Optimization"** (Chen, He, Xu, Geng, Yu — DAC 2024).
//!
//! Source mask optimization (SMO) jointly tunes the lithography illumination
//! source and the mask pattern so the printed resist image matches a target
//! layout across the process window. This workspace implements the paper's
//! full stack:
//!
//! * [`fft`] — complex arithmetic and radix-2 FFTs;
//! * [`linalg`] — Hermitian eigensolvers and matrix-free conjugate gradients;
//! * [`optics`] — optical configuration, pupil, illumination sources;
//! * [`litho`] — Abbe and Hopkins/SOCS simulators with hand-derived adjoints;
//! * [`opt`] — SGD / momentum / Adam;
//! * [`core`] — the SMO objective and the step-based solver API: every
//!   method of the paper (mask-only baselines, AM-SMO Algorithm 1, the
//!   three BiSMO hypergradients of Algorithm 2) is a `Solver` behind a
//!   stable name in the `SolverRegistry`, driven by a `Session`;
//! * [`layout`] — synthetic ICCAD13 / ICCAD-L / ISPD19-style benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use bismo::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = OpticalConfig::test_small();
//! let clip = Clip::simple_rect(&cfg);
//! let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), clip.target)?;
//!
//! // Pick any method by its paper column label; the layered SolverConfig
//! // carries shared knobs plus one section per method family.
//! let mut config = SolverConfig::default();
//! config.bismo.outer_steps = 3;
//! let mut session = SolverRegistry::builtin().session("BiSMO-FD", &problem, &config)?;
//! session.run()?;
//! assert_eq!(session.status(), SessionStatus::Exhausted);
//! assert!(session.trace().final_loss().unwrap().is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bismo_core as core;
pub use bismo_fft as fft;
pub use bismo_layout as layout;
pub use bismo_linalg as linalg;
pub use bismo_litho as litho;
pub use bismo_opt as opt;
pub use bismo_optics as optics;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use bismo_core::{
        measure, measure_batch, run_hopkins_mo, AbbeMoSolver, Activation, AmSection, AmSmoConfig,
        AmSolver, BismoConfig, BismoSection, BismoSolver, Control, ConvergenceTrace, EpeSpec,
        GradRequest, HopkinsMoProblem, HopkinsProxySolver, HypergradMethod, LossValue, MetricSet,
        MoConfig, MoModel, MoOutcome, MoProblem, MoSection, Session, SessionStatus, SmoEval,
        SmoOutcome, SmoProblem, SmoSettings, Solver, SolverConfig, SolverRegistry, SolverSpec,
        SolverState, SourceActivationKind, StepEvent, StepOutcome, StepRecord, StopReason,
        StopRule,
    };
    // Deprecated driver shims, re-exported so downstream code migrates on
    // its own schedule (use sites still see the deprecation note).
    #[allow(deprecated)]
    pub use bismo_core::{run_abbe_mo, run_am_smo, run_bismo, run_milt_proxy, run_nilt_proxy};
    pub use bismo_layout::{upsample, write_pgm, Clip, Suite, SuiteKind};
    pub use bismo_litho::{
        AbbeImager, DoseCorners, FieldBatch, HopkinsImager, ImagingBackend, IntensityBatch,
        KernelCache, KernelCacheStats, LithoError, MaskBatch, ResistModel, TccBuild,
    };
    pub use bismo_opt::{Adam, Momentum, Optimizer, OptimizerKind, Sgd};
    pub use bismo_optics::{
        ImagingCore, OpticalConfig, Pupil, RealField, Source, SourcePoint, SourceShape,
    };
}
