//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides the exact API surface the workspace consumes — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`, `gen_bool`
//! and `gen_range` — backed by a SplitMix64 generator. Streams are
//! deterministic for a given seed (which is all the workspace needs: seeded
//! layout synthesis and randomized-subspace starts), but they do **not**
//! match the streams of the real `rand` crate. Swap the workspace `rand`
//! entry for the crates.io release when building online.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A seedable deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna, 2015) — public-domain reference construction.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over `T`'s natural range;
    /// `[0, 1)` for floats).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Sample {
    /// Samples one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high-quality bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling (mirrors `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Bounded sampling on u64 with one-zone rejection to remove modulo bias.
fn bounded_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // lo + s·(hi−lo) can round up to exactly `hi` even though
                // s < 1; clamp to the largest representable value below `hi`
                // to honor the half-open contract.
                let v = lo + <$t as Sample>::sample(rng) * (hi - lo);
                if v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + <$t as Sample>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(4usize..=16);
            assert!((4..=16).contains(&w));
            let z = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn float_half_open_never_returns_upper_bound() {
        // A maximal sample makes lo + s·(hi−lo) round up to exactly `hi`
        // for this range; the clamp must keep the result below it.
        struct MaxRng;
        impl crate::Rng for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v = MaxRng.gen_range(0.9f64..1.1);
        assert!(v < 1.1, "got {v}");
        let w = MaxRng.gen_range(0.5f32..1.5);
        assert!(w < 1.5, "got {w}");
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!(
            (2_800..4_200).contains(&hits),
            "gen_bool(0.35) hit rate {hits}"
        );
    }
}
