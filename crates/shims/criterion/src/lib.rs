//! Offline stand-in for the subset of the `criterion` bench API this
//! workspace uses.
//!
//! The build environment has no registry access, so this in-tree crate keeps
//! `benches/` compiling and runnable: each benchmark executes a short
//! warmup + timed loop and prints mean wall-clock time per iteration. It
//! performs no statistical analysis, outlier rejection or HTML reporting —
//! swap the workspace `criterion` entry for the crates.io release when
//! building online to get real measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured repetition.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters_per_sample.max(1) {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmarked
/// computation (best-effort without `std::hint::black_box`-defeating tricks).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Warmup pass (also lets closures that allocate lazily settle).
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: sample_size as u64,
    };
    f(&mut b);
    let total: Duration = b.samples.iter().sum();
    let n = b.samples.len().max(1) as u32;
    println!("{label:<40} {:>12.3?}/iter ({n} samples)", total / n);
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warmup + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("forward", 64).to_string(), "forward/64");
    }
}
