//! Two-dimensional FFT on row-major square or rectangular grids, plus the
//! `fftshift` helpers the optics code uses to move between corner-origin and
//! center-origin frequency layouts.

use crate::complex::Complex64;
use crate::fft1d::{Direction, FftError, FftPlan};

/// Planned 2-D FFT for `rows × cols` row-major buffers.
///
/// Rows are transformed first, then columns (the order is mathematically
/// irrelevant). Column passes run through a scratch buffer to stay
/// cache-friendly without requiring a transpose of the caller's data.
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, Fft2Plan};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = Fft2Plan::new(4, 8)?;
/// let mut img = vec![Complex64::ONE; 32];
/// plan.forward(&mut img)?;
/// assert!((img[0].re - 32.0).abs() < 1e-12); // DC bin = sum
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft2Plan {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

/// Caller-owned scratch for [`Fft2Plan`] transforms.
///
/// A plan is immutable and shared freely across threads, so it cannot own
/// mutable scratch itself; the column pass instead borrows a workspace. The
/// buffer grows to the plan's row count on first use and is then reused, so
/// a long-lived workspace makes every subsequent transform allocation-free.
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, Fft2Plan, Fft2Workspace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = Fft2Plan::new(8, 8)?;
/// let mut ws = Fft2Workspace::new();
/// let mut img = vec![Complex64::ONE; 64];
/// plan.forward_with(&mut img, &mut ws)?; // allocates scratch once
/// plan.inverse_with(&mut img, &mut ws)?; // reuses it
/// assert!((img[0].re - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fft2Workspace {
    col: Vec<Complex64>,
}

impl Fft2Workspace {
    /// Creates an empty workspace; scratch is sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Fft2Workspace::default()
    }

    /// Creates a workspace pre-sized for `plan`, so even the first transform
    /// performs no allocation.
    #[must_use]
    pub fn for_plan(plan: &Fft2Plan) -> Self {
        Fft2Workspace {
            col: vec![Complex64::ZERO; plan.rows()],
        }
    }
}

impl Fft2Plan {
    /// Creates a plan for `rows × cols` transforms.
    ///
    /// # Errors
    ///
    /// Returns an error unless both dimensions are nonzero powers of two.
    pub fn new(rows: usize, cols: usize) -> Result<Self, FftError> {
        Ok(Fft2Plan {
            rows,
            cols,
            row_plan: FftPlan::new(cols)?,
            col_plan: FftPlan::new(rows)?,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements `rows × cols`.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if the plan covers zero elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn check(&self, data: &[Complex64]) -> Result<(), FftError> {
        if data.len() != self.len() {
            return Err(FftError::length_mismatch(self.len(), data.len()));
        }
        Ok(())
    }

    fn transform(&self, data: &mut [Complex64], dir: Direction) -> Result<(), FftError> {
        self.transform_with(data, dir, &mut Fft2Workspace::new())
    }

    fn transform_with(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.check(data)?;
        // Row pass.
        for r in 0..self.rows {
            let row = &mut data[r * self.cols..(r + 1) * self.cols];
            self.row_plan.transform(row, dir)?;
        }
        // Column pass through the workspace scratch, sized once and reused.
        if ws.col.len() != self.rows {
            ws.col.resize(self.rows, Complex64::ZERO);
        }
        let scratch = &mut ws.col[..];
        for c in 0..self.cols {
            for r in 0..self.rows {
                scratch[r] = data[r * self.cols + c];
            }
            self.col_plan.transform(scratch, dir)?;
            for r in 0..self.rows {
                data[r * self.cols + c] = scratch[r];
            }
        }
        Ok(())
    }

    /// Unnormalized forward 2-D DFT.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)
    }

    /// Like [`Fft2Plan::forward`] but reusing caller-owned scratch — the
    /// allocation-free variant the imaging hot loops use.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn forward_with(
        &self,
        data: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.transform_with(data, Direction::Forward, ws)
    }

    /// Inverse 2-D DFT with `1/(rows·cols)` normalization.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / self.len() as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Like [`Fft2Plan::inverse`] but reusing caller-owned scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn inverse_with(
        &self,
        data: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.transform_with(data, Direction::Inverse, ws)?;
        let scale = 1.0 / self.len() as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary forward 2-D DFT (`1/√(rows·cols)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn forward_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)?;
        let scale = 1.0 / (self.len() as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary inverse 2-D DFT (`1/√(rows·cols)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn inverse_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / (self.len() as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }
}

/// Cyclic shift of a row-major grid: every element moves from `(r, c)` to
/// `((r + down) % rows, (c + right) % cols)`, in place and allocation-free.
///
/// Shifting whole rows is a single rotation of the flat buffer; the column
/// shift is then a per-row rotation. `slice::rotate_right` performs both
/// without heap allocation.
fn cyclic_shift2(data: &mut [Complex64], rows: usize, cols: usize, down: usize, right: usize) {
    data.rotate_right(down * cols);
    if right == 0 {
        return;
    }
    for r in 0..rows {
        data[r * cols..(r + 1) * cols].rotate_right(right);
    }
}

/// Swaps quadrants so the zero-frequency bin moves from index `(0,0)` to the
/// grid center `(rows/2, cols/2)`. Self-inverse for even dimensions.
/// Operates fully in place — no scratch buffer is allocated.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn fftshift2(data: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "fftshift2 buffer size mismatch");
    cyclic_shift2(data, rows, cols, rows / 2, cols / 2);
}

/// Inverse of [`fftshift2`] (distinct only for odd dimensions; provided for
/// symmetry and future-proofing). Operates fully in place — no scratch
/// buffer is allocated.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn ifftshift2(data: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "ifftshift2 buffer size mismatch");
    cyclic_shift2(data, rows, cols, rows.div_ceil(2), cols.div_ceil(2));
}

/// Maps a corner-origin frequency index to a signed frequency in
/// `[-n/2, n/2)` (standard DFT bin interpretation).
///
/// # Examples
///
/// ```
/// use bismo_fft::signed_freq;
/// assert_eq!(signed_freq(0, 8), 0);
/// assert_eq!(signed_freq(3, 8), 3);
/// assert_eq!(signed_freq(4, 8), -4);
/// assert_eq!(signed_freq(7, 8), -1);
/// ```
#[inline]
pub fn signed_freq(idx: usize, n: usize) -> isize {
    let idx = idx as isize;
    let n = n as isize;
    if idx < n - n / 2 {
        idx
    } else {
        idx - n
    }
}

/// Inverse of [`signed_freq`]: wraps a signed frequency onto the
/// corner-origin index range `0..n`.
///
/// # Panics
///
/// Panics if `f` lies outside `[-n/2, n/2)`.
#[inline]
pub fn wrap_freq(f: isize, n: usize) -> usize {
    let n = n as isize;
    assert!(
        f >= -n / 2 && f < n - n / 2,
        "frequency {f} out of range for n={n}"
    );
    ((f + n) % n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::dft_naive;

    fn rand_grid(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..rows * cols)
            .map(|_| Complex64::new(next(), next()))
            .collect()
    }

    #[test]
    fn roundtrip_identity() {
        let (r, c) = (16, 32);
        let plan = Fft2Plan::new(r, c).unwrap();
        let x = rand_grid(r, c, 3);
        let mut y = x.clone();
        plan.forward(&mut y).unwrap();
        plan.inverse(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn separable_against_naive_rows_then_cols() {
        let (r, c) = (4, 8);
        let plan = Fft2Plan::new(r, c).unwrap();
        let x = rand_grid(r, c, 11);
        let mut got = x.clone();
        plan.forward(&mut got).unwrap();

        // Naive: DFT rows, then DFT cols.
        let mut rows_done = vec![Complex64::ZERO; r * c];
        for i in 0..r {
            let row: Vec<_> = x[i * c..(i + 1) * c].to_vec();
            let f = dft_naive(&row, Direction::Forward);
            rows_done[i * c..(i + 1) * c].copy_from_slice(&f);
        }
        let mut expected = vec![Complex64::ZERO; r * c];
        for j in 0..c {
            let col: Vec<_> = (0..r).map(|i| rows_done[i * c + j]).collect();
            let f = dft_naive(&col, Direction::Forward);
            for i in 0..r {
                expected[i * c + j] = f[i];
            }
        }
        for (g, e) in got.iter().zip(&expected) {
            assert!((*g - *e).abs() < 1e-9);
        }
    }

    #[test]
    fn unitary_preserves_energy() {
        let (r, c) = (8, 8);
        let plan = Fft2Plan::new(r, c).unwrap();
        let mut x = rand_grid(r, c, 21);
        let e0: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        plan.forward_unitary(&mut x).unwrap();
        let e1: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        assert!((e0 - e1).abs() < 1e-9);
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let (r, c) = (8, 8);
        let mut x = vec![Complex64::ZERO; r * c];
        x[0] = Complex64::ONE;
        fftshift2(&mut x, r, c);
        assert_eq!(x[(r / 2) * c + c / 2], Complex64::ONE);
        // Self-inverse for even sizes.
        fftshift2(&mut x, r, c);
        assert_eq!(x[0], Complex64::ONE);
    }

    #[test]
    fn shift_then_unshift_is_identity() {
        let (r, c) = (16, 8);
        let x = rand_grid(r, c, 8);
        let mut y = x.clone();
        fftshift2(&mut y, r, c);
        ifftshift2(&mut y, r, c);
        assert_eq!(x, y);
    }

    #[test]
    fn shifts_match_naive_copy_on_odd_dims() {
        // The in-place rotation implementation must reproduce the reference
        // out[(r+h_r)%rows][(c+h_c)%cols] = in[r][c] semantics, including on
        // odd dimensions where fftshift and ifftshift differ.
        for (rows, cols) in [(5usize, 7usize), (4, 5), (3, 8), (1, 6), (5, 1)] {
            let x = rand_grid(rows, cols, 17);
            for (half_r, half_c, shift) in [
                (
                    rows / 2,
                    cols / 2,
                    fftshift2 as fn(&mut [Complex64], usize, usize),
                ),
                (rows.div_ceil(2), cols.div_ceil(2), ifftshift2),
            ] {
                let mut expected = vec![Complex64::ZERO; rows * cols];
                for r in 0..rows {
                    for c in 0..cols {
                        expected[((r + half_r) % rows) * cols + (c + half_c) % cols] =
                            x[r * cols + c];
                    }
                }
                let mut got = x.clone();
                shift(&mut got, rows, cols);
                assert_eq!(got, expected, "{rows}x{cols}");
            }
        }
        // Odd dims: the two shifts are inverses of each other.
        let (rows, cols) = (5, 7);
        let x = rand_grid(rows, cols, 23);
        let mut y = x.clone();
        fftshift2(&mut y, rows, cols);
        ifftshift2(&mut y, rows, cols);
        assert_eq!(x, y);
    }

    #[test]
    fn workspace_transforms_match_plain_transforms() {
        let (r, c) = (8, 16);
        let plan = Fft2Plan::new(r, c).unwrap();
        let x = rand_grid(r, c, 31);
        let mut ws = Fft2Workspace::for_plan(&plan);
        let mut with_ws = x.clone();
        plan.forward_with(&mut with_ws, &mut ws).unwrap();
        let mut plain = x.clone();
        plan.forward(&mut plain).unwrap();
        assert_eq!(with_ws, plain);
        plan.inverse_with(&mut with_ws, &mut ws).unwrap();
        plan.inverse(&mut plain).unwrap();
        assert_eq!(with_ws, plain);
        // A stale workspace from a different plan is resized, not rejected.
        let other = Fft2Plan::new(4, 4).unwrap();
        let mut small = vec![Complex64::ONE; 16];
        other.forward_with(&mut small, &mut ws).unwrap();
        assert!((small[0].re - 16.0).abs() < 1e-12);
    }

    #[test]
    fn signed_freq_wrap_roundtrip() {
        for n in [2usize, 4, 8, 16, 64] {
            for idx in 0..n {
                let f = signed_freq(idx, n);
                assert_eq!(wrap_freq(f, n), idx);
            }
        }
    }

    #[test]
    fn wrong_size_rejected() {
        let plan = Fft2Plan::new(4, 4).unwrap();
        let mut buf = vec![Complex64::ZERO; 15];
        assert!(plan.forward(&mut buf).is_err());
    }
}
