//! Two-dimensional FFT on row-major square or rectangular grids, plus the
//! `fftshift` helpers the optics code uses to move between corner-origin and
//! center-origin frequency layouts.
//!
//! @bismo:bit-exact — the blocked 2-D passes ride the 1-D stage kernels
//! whose exact f64 DAG the golden hashes pin (DESIGN.md §10). Enforced by
//! bismo-analyze's bit-exact-purity rule.

use crate::complex::Complex64;
use crate::fft1d::{Direction, FftError, FftPlan};

/// Planned 2-D FFT for `rows × cols` row-major buffers.
///
/// Rows are transformed first, then columns (the order is mathematically
/// irrelevant). Column passes run through a scratch buffer to stay
/// cache-friendly without requiring a transpose of the caller's data.
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, Fft2Plan};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = Fft2Plan::new(4, 8)?;
/// let mut img = vec![Complex64::ONE; 32];
/// plan.forward(&mut img)?;
/// assert!((img[0].re - 32.0).abs() < 1e-12); // DC bin = sum
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft2Plan {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

/// Caller-owned scratch for [`Fft2Plan`] transforms.
///
/// A plan is immutable and shared freely across threads, so it cannot own
/// mutable scratch itself; the column pass instead borrows a workspace. The
/// buffers grow to what the plan's blocked passes need on first use and are
/// then reused, so a long-lived workspace makes every subsequent transform
/// allocation-free. `col` holds the gathered column block
/// ([`COL_BLOCK`]` × rows`); `row` holds one packed complex row for the
/// real-input path.
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, Fft2Plan, Fft2Workspace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = Fft2Plan::new(8, 8)?;
/// let mut ws = Fft2Workspace::new();
/// let mut img = vec![Complex64::ONE; 64];
/// plan.forward_with(&mut img, &mut ws)?; // allocates scratch once
/// plan.inverse_with(&mut img, &mut ws)?; // reuses it
/// assert!((img[0].re - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fft2Workspace {
    col: Vec<Complex64>,
    row: Vec<Complex64>,
}

impl Fft2Workspace {
    /// Creates an empty workspace; scratch is sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Fft2Workspace::default()
    }

    /// Creates a workspace pre-sized for `plan`, so even the first transform
    /// (including the real-input path) performs no allocation.
    #[must_use]
    pub fn for_plan(plan: &Fft2Plan) -> Self {
        Fft2Workspace {
            col: vec![Complex64::ZERO; COL_BLOCK * plan.rows()],
            row: vec![Complex64::ZERO; plan.cols()],
        }
    }

    /// Grows `col` to at least `len`, returning the sized slice.
    fn col_scratch(&mut self, len: usize) -> &mut [Complex64] {
        if self.col.len() < len {
            self.col.resize(len, Complex64::ZERO);
        }
        &mut self.col[..len]
    }
}

impl Fft2Plan {
    /// Creates a plan for `rows × cols` transforms.
    ///
    /// # Errors
    ///
    /// Returns an error unless both dimensions are nonzero powers of two
    /// whose product fits in `usize` (so [`Fft2Plan::len`] can never wrap).
    pub fn new(rows: usize, cols: usize) -> Result<Self, FftError> {
        let plan = Fft2Plan {
            rows,
            cols,
            row_plan: FftPlan::new(cols)?,
            col_plan: FftPlan::new(rows)?,
        };
        rows.checked_mul(cols)
            .ok_or_else(|| FftError::size_overflow(rows, cols))?;
        Ok(plan)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements `rows × cols`.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` when the plan covers zero elements.
    ///
    /// [`Fft2Plan::new`] rejects zero dimensions, so every constructible
    /// plan reports `false` — but the answer is computed from the
    /// dimensions, not hard-coded, matching [`BatchFft2::is_empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check(&self, data: &[Complex64]) -> Result<(), FftError> {
        if data.len() != self.len() {
            return Err(FftError::length_mismatch(self.len(), data.len()));
        }
        Ok(())
    }

    fn transform(&self, data: &mut [Complex64], dir: Direction) -> Result<(), FftError> {
        self.transform_with(data, dir, &mut Fft2Workspace::new())
    }

    /// One field's transform with blocked row and column passes. This is the
    /// single scheduling kernel behind both `Fft2Plan::forward_with` and the
    /// batched path: rows go through [`FftPlan::transform_interleaved`] in
    /// [`COL_BLOCK`]-row groups, and the column pass gathers [`COL_BLOCK`]
    /// columns at a time into contiguous `scratch` (laid out one column
    /// after another) so the strided traversal touches each cache line once
    /// per block instead of once per column. Every 1-D transform runs the
    /// plan's own butterfly sequence, so per-element results are
    /// bit-identical to the historical row-at-a-time / column-at-a-time
    /// loop.
    ///
    /// `scratch` must hold at least `COL_BLOCK.min(cols) × rows` elements.
    fn transform_blocked(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        scratch: &mut [Complex64],
    ) -> Result<(), FftError> {
        let rows = self.rows;
        let cols = self.cols;
        // Row pass: consecutive rows are contiguous buffers, transformed
        // in place in blocks.
        let mut r0 = 0;
        while r0 < rows {
            let nb = COL_BLOCK.min(rows - r0);
            self.row_plan
                .transform_interleaved(&mut data[r0 * cols..(r0 + nb) * cols], nb, dir)?;
            r0 += nb;
        }
        // Column pass: gather a block of columns into contiguous scratch,
        // transform, scatter back.
        let mut c0 = 0;
        while c0 < cols {
            let nb = COL_BLOCK.min(cols - c0);
            for r in 0..rows {
                let src = &data[r * cols + c0..r * cols + c0 + nb];
                for (j, &v) in src.iter().enumerate() {
                    scratch[j * rows + r] = v;
                }
            }
            self.col_plan
                .transform_interleaved(&mut scratch[..nb * rows], nb, dir)?;
            for r in 0..rows {
                let dst = &mut data[r * cols + c0..r * cols + c0 + nb];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = scratch[j * rows + r];
                }
            }
            c0 += nb;
        }
        Ok(())
    }

    /// Scratch length `transform_blocked` needs for this plan.
    #[inline]
    fn blocked_scratch_len(&self) -> usize {
        COL_BLOCK.min(self.cols) * self.rows
    }

    fn transform_with(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.check(data)?;
        let scratch = ws.col_scratch(self.blocked_scratch_len());
        self.transform_blocked(data, dir, scratch)
    }

    /// Unnormalized forward 2-D DFT.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)
    }

    /// Like [`Fft2Plan::forward`] but reusing caller-owned scratch — the
    /// allocation-free variant the imaging hot loops use.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn forward_with(
        &self,
        data: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.transform_with(data, Direction::Forward, ws)
    }

    /// Inverse 2-D DFT with `1/(rows·cols)` normalization.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / self.len() as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Like [`Fft2Plan::inverse`] but reusing caller-owned scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn inverse_with(
        &self,
        data: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.transform_with(data, Direction::Inverse, ws)?;
        let scale = 1.0 / self.len() as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary forward 2-D DFT (`1/√(rows·cols)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn forward_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)?;
        let scale = 1.0 / (self.len() as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary inverse 2-D DFT (`1/√(rows·cols)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows*cols`.
    pub fn inverse_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / (self.len() as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unnormalized forward 2-D DFT of a **real** field, exploiting
    /// Hermitian symmetry: two real rows are packed into one complex row
    /// (`z = row_a + i·row_b`), transformed together, and unpacked from the
    /// symmetry `F(a)[k] = conj(F(a)[N−k])`, so the row pass runs half as
    /// many 1-D transforms; the column pass then only transforms columns
    /// `0..=cols/2` and fills the rest by Hermitian reflection
    /// `F[r][c] = conj(F[(rows−r)%rows][cols−c])`. In total roughly half
    /// the transform work of the complex path.
    ///
    /// The result equals `forward_with` applied to `input` promoted to
    /// complex — **mathematically exactly, but not bitwise**: the packing
    /// factorization legitimately reorders floating-point operations, so
    /// individual bins differ at the ULP level (see DESIGN.md §10 for the
    /// equivalence contract; `tests/properties.rs` pins the tolerance).
    /// Callers that require bit-stability against the complex path (e.g.
    /// the golden solver suite) must stay on `forward_with`.
    ///
    /// # Errors
    ///
    /// Returns an error if `input.len()` or `out.len()` differ from
    /// `rows × cols`.
    pub fn forward_real_with(
        &self,
        input: &[f64],
        out: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        if input.len() != self.len() {
            return Err(FftError::length_mismatch(self.len(), input.len()));
        }
        self.check(out)?;
        let rows = self.rows;
        let cols = self.cols;
        if ws.row.len() < cols {
            ws.row.resize(cols, Complex64::ZERO);
        }
        // Row pass: two real rows ride one complex transform.
        let mut r = 0;
        while r + 1 < rows {
            let (ra, rb) = (
                &input[r * cols..(r + 1) * cols],
                &input[(r + 1) * cols..(r + 2) * cols],
            );
            let packed = &mut ws.row[..cols];
            for ((z, &a), &b) in packed.iter_mut().zip(ra).zip(rb) {
                *z = Complex64::new(a, b);
            }
            self.row_plan.transform(packed, Direction::Forward)?;
            // Unpack via Hermitian symmetry: with Z = F(a) + i·F(b),
            //   F(a)[k] = (Z[k] + conj(Z[N−k])) / 2
            //   F(b)[k] = (Z[k] − conj(Z[N−k])) / (2i).
            let (out_a, rest) = out[r * cols..(r + 2) * cols].split_at_mut(cols);
            let out_b = rest;
            for k in 0..cols {
                let zk = packed[k];
                let zn = packed[(cols - k) % cols];
                out_a[k] = Complex64::new((zk.re + zn.re) * 0.5, (zk.im - zn.im) * 0.5);
                // d = (Z[k] − conj(Z[N−k])) / 2; multiply by −i.
                let d = Complex64::new((zk.re - zn.re) * 0.5, (zk.im + zn.im) * 0.5);
                out_b[k] = Complex64::new(d.im, -d.re);
            }
            r += 2;
        }
        if r < rows {
            // Odd leftover row (only possible when rows == 1): promote and
            // transform directly.
            let row = &mut out[r * cols..(r + 1) * cols];
            for (z, &v) in row.iter_mut().zip(&input[r * cols..(r + 1) * cols]) {
                *z = Complex64::from_real(v);
            }
            self.row_plan.transform(row, Direction::Forward)?;
        }
        // Column pass over the non-redundant half-spectrum only: the row
        // spectra of a real field satisfy F[r][c] = conj(F[(rows−r)%rows]
        // [(cols−c)%cols]), so columns cols/2+1.. follow by reflection.
        let last = cols / 2; // cols == 1 ⇒ last == 0 ⇒ just the DC column
        let scratch = ws.col_scratch(self.blocked_scratch_len());
        let mut c0 = 0;
        while c0 <= last {
            let nb = COL_BLOCK.min(last + 1 - c0);
            for r in 0..rows {
                let src = &out[r * cols + c0..r * cols + c0 + nb];
                for (j, &v) in src.iter().enumerate() {
                    scratch[j * rows + r] = v;
                }
            }
            self.col_plan.transform_interleaved(
                &mut scratch[..nb * rows],
                nb,
                Direction::Forward,
            )?;
            for r in 0..rows {
                let dst = &mut out[r * cols + c0..r * cols + c0 + nb];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = scratch[j * rows + r];
                }
            }
            c0 += nb;
        }
        // Hermitian reflection of the remaining columns.
        for c in (last + 1)..cols {
            let cs = cols - c;
            out[c] = out[cs].conj();
            for r in 1..rows {
                out[r * cols + c] = out[(rows - r) * cols + cs].conj();
            }
        }
        Ok(())
    }

    /// Allocating convenience for [`Fft2Plan::forward_real_with`].
    ///
    /// # Errors
    ///
    /// Returns an error if `input.len() != rows × cols`.
    pub fn forward_real(&self, input: &[f64]) -> Result<Vec<Complex64>, FftError> {
        let mut out = vec![Complex64::ZERO; self.len()];
        self.forward_real_with(input, &mut out, &mut Fft2Workspace::new())?;
        Ok(out)
    }

    /// A batched view of this plan transforming `batch` contiguously
    /// stacked `rows × cols` fields in one call (see [`BatchFft2`]).
    /// Borrowing keeps construction free — twiddles and the bit-reversal
    /// permutation stay shared with the plan.
    #[must_use]
    pub fn batched(&self, batch: usize) -> BatchFft2<'_> {
        BatchFft2 { plan: self, batch }
    }
}

/// Rows / columns transformed per interleaved block in the batched passes.
/// Two effects stack: each 64-byte cache line holds four `Complex64`s, so
/// an 8-column gather reuses every fetched line across the columns it
/// covers instead of re-fetching the whole field once per column; and the
/// interleaved 1-D kernel ([`FftPlan::transform_interleaved`]) runs the 8
/// independent transforms' butterflies side by side, hiding their
/// multiply–add latency chains behind each other. The block working set
/// (8 × length complex values) stays cache-resident for the grids the
/// imaging stack uses.
const COL_BLOCK: usize = 8;

/// Batched 2-D FFT over `batch` contiguously stacked `rows × cols` fields
/// (entry `b` occupies `data[b·rows·cols .. (b+1)·rows·cols]`).
///
/// Per-entry results are **bit-identical** to transforming each entry with
/// the underlying [`Fft2Plan`]: the same 1-D transforms run on the same
/// values in the same order. What the batch path changes is the memory
/// schedule — the column pass gathers [`COL_BLOCK`] columns at a time into
/// contiguous scratch, so the strided field traversal that dominates large
/// grids touches each cache line once per block instead of once per column.
/// That cache-blocked pass is what makes fused multi-dose / multi-clip
/// imaging measurably faster than an entry-at-a-time loop while remaining
/// exactly equal per entry (DESIGN.md §9).
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, Fft2Plan, Fft2Workspace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = Fft2Plan::new(8, 8)?;
/// let mut stacked = vec![Complex64::ONE; 3 * 64]; // three 8×8 fields
/// let mut ws = Fft2Workspace::new();
/// plan.batched(3).forward_with(&mut stacked, &mut ws)?;
/// for b in 0..3 {
///     assert!((stacked[b * 64].re - 64.0).abs() < 1e-12); // each DC bin = sum
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchFft2<'a> {
    plan: &'a Fft2Plan,
    batch: usize,
}

impl BatchFft2<'_> {
    /// Number of stacked fields per call.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The underlying single-field plan.
    #[inline]
    pub fn plan(&self) -> &Fft2Plan {
        self.plan
    }

    /// Total stacked length `batch × rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the product overflows `usize` (the transform entry points
    /// report the same condition as an [`FftError`] instead).
    #[inline]
    pub fn len(&self) -> usize {
        self.batch
            .checked_mul(self.plan.len())
            // PANIC-OK: documented accessor/constructor contract — an absurd shape must fail loudly, not wrap into a mis-sized buffer.
            .expect("batch × rows × cols overflows usize")
    }

    /// Returns `true` for a zero-entry batch (a no-op transform).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.batch == 0
    }

    /// Stacked length as a checked computation, so an absurd `batch` that
    /// wraps `B·N²` is reported as an error instead of mis-validating a
    /// buffer whose length happens to match the wrapped product.
    fn checked_len(&self) -> Result<usize, FftError> {
        self.batch
            .checked_mul(self.plan.len())
            .ok_or_else(|| FftError::size_overflow(self.batch, self.plan.len()))
    }

    fn check(&self, data: &[Complex64]) -> Result<usize, FftError> {
        let expected = self.checked_len()?;
        if data.len() != expected {
            return Err(FftError::length_mismatch(expected, data.len()));
        }
        Ok(expected)
    }

    fn transform_with(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.check(data)?;
        let scratch = ws.col_scratch(self.plan.blocked_scratch_len());
        for entry in data.chunks_mut(self.plan.len()) {
            self.plan.transform_blocked(entry, dir, scratch)?;
        }
        Ok(())
    }

    /// Unnormalized forward DFT of every stacked entry.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != batch × rows × cols`.
    pub fn forward_with(
        &self,
        data: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.transform_with(data, Direction::Forward, ws)
    }

    /// Inverse DFT (with `1/(rows·cols)` normalization) of every stacked
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != batch × rows × cols`.
    pub fn inverse_with(
        &self,
        data: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        self.transform_with(data, Direction::Inverse, ws)?;
        let scale = 1.0 / self.plan.len() as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Allocating convenience for [`BatchFft2::forward_with`].
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != batch × rows × cols`.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.forward_with(data, &mut Fft2Workspace::new())
    }

    /// Allocating convenience for [`BatchFft2::inverse_with`].
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != batch × rows × cols`.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.inverse_with(data, &mut Fft2Workspace::new())
    }

    /// Unnormalized forward DFT of every stacked **real** entry through
    /// [`Fft2Plan::forward_real_with`]: `input` holds `batch` real fields,
    /// `out` receives their full complex spectra. Same ULP-level (not
    /// bitwise) equivalence contract as the single-field real path.
    ///
    /// # Errors
    ///
    /// Returns an error if `input.len()` or `out.len()` differ from
    /// `batch × rows × cols` (checked without overflow).
    pub fn forward_real_with(
        &self,
        input: &[f64],
        out: &mut [Complex64],
        ws: &mut Fft2Workspace,
    ) -> Result<(), FftError> {
        let expected = self.check(out)?;
        if input.len() != expected {
            return Err(FftError::length_mismatch(expected, input.len()));
        }
        for (src, dst) in input
            .chunks_exact(self.plan.len())
            .zip(out.chunks_exact_mut(self.plan.len()))
        {
            self.plan.forward_real_with(src, dst, ws)?;
        }
        Ok(())
    }

    /// Like [`BatchFft2::forward_with`] but splitting the batch entries
    /// across `threads` OS threads (scoped, joined before returning).
    ///
    /// The chunking contract is the deterministic one the imaging fan-out
    /// uses: entries are divided into `min(threads, batch)` contiguous
    /// chunks of `⌈batch / chunks⌉` entries, and each worker runs the exact
    /// single-thread blocked kernel over its chunk with private scratch.
    /// Results are therefore **bit-identical** to the single-threaded path
    /// for any thread count. `threads <= 1` (or a batch of one) runs inline
    /// without spawning.
    ///
    /// Spawned workers allocate their own scratch, so this entry point is
    /// for throughput on multi-core hosts, not for the zero-alloc warm
    /// paths.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != batch × rows × cols`.
    pub fn forward_threaded(&self, data: &mut [Complex64], threads: usize) -> Result<(), FftError> {
        self.transform_threaded(data, Direction::Forward, threads)
    }

    /// Threaded variant of [`BatchFft2::inverse_with`] (with the same
    /// `1/(rows·cols)` normalization); see [`BatchFft2::forward_threaded`]
    /// for the chunking and determinism contract.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != batch × rows × cols`.
    pub fn inverse_threaded(&self, data: &mut [Complex64], threads: usize) -> Result<(), FftError> {
        self.transform_threaded(data, Direction::Inverse, threads)?;
        let scale = 1.0 / self.plan.len() as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    fn transform_threaded(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        threads: usize,
    ) -> Result<(), FftError> {
        self.check(data)?;
        if threads <= 1 || self.batch <= 1 {
            return self.transform_with(data, dir, &mut Fft2Workspace::new());
        }
        let entry_len = self.plan.len();
        let chunk_entries = self.batch.div_ceil(threads.min(self.batch));
        std::thread::scope(|scope| {
            let workers: Vec<_> = data
                .chunks_mut(chunk_entries * entry_len)
                .map(|chunk| {
                    scope.spawn(move || -> Result<(), FftError> {
                        let mut scratch = vec![Complex64::ZERO; self.plan.blocked_scratch_len()];
                        for entry in chunk.chunks_mut(entry_len) {
                            self.plan.transform_blocked(entry, dir, &mut scratch)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            for worker in workers {
                // PANIC-OK: propagates a worker panic out of the scoped batch transform; the panic is the root failure, not a new one.
                worker.join().expect("batched fft worker panicked")?;
            }
            Ok(())
        })
    }
}

/// Cyclic shift of a row-major grid: every element moves from `(r, c)` to
/// `((r + down) % rows, (c + right) % cols)`, in place and allocation-free.
///
/// Shifting whole rows is a single rotation of the flat buffer; the column
/// shift is then a per-row rotation. `slice::rotate_right` performs both
/// without heap allocation.
fn cyclic_shift2(data: &mut [Complex64], rows: usize, cols: usize, down: usize, right: usize) {
    data.rotate_right(down * cols);
    if right == 0 {
        return;
    }
    for r in 0..rows {
        data[r * cols..(r + 1) * cols].rotate_right(right);
    }
}

/// Swaps quadrants so the zero-frequency bin moves from index `(0,0)` to the
/// grid center `(rows/2, cols/2)`. Self-inverse for even dimensions.
/// Operates fully in place — no scratch buffer is allocated.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn fftshift2(data: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "fftshift2 buffer size mismatch");
    cyclic_shift2(data, rows, cols, rows / 2, cols / 2);
}

/// Inverse of [`fftshift2`] (distinct only for odd dimensions; provided for
/// symmetry and future-proofing). Operates fully in place — no scratch
/// buffer is allocated.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn ifftshift2(data: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "ifftshift2 buffer size mismatch");
    cyclic_shift2(data, rows, cols, rows.div_ceil(2), cols.div_ceil(2));
}

/// [`fftshift2`] applied to every entry of a contiguously stacked batch of
/// `rows × cols` fields, in place and allocation-free.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `rows * cols`.
pub fn fftshift2_batch(data: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(
        data.len() % (rows * cols),
        0,
        "fftshift2_batch buffer is not a whole number of fields"
    );
    for entry in data.chunks_mut(rows * cols) {
        fftshift2(entry, rows, cols);
    }
}

/// [`ifftshift2`] applied to every entry of a contiguously stacked batch of
/// `rows × cols` fields, in place and allocation-free.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `rows * cols`.
pub fn ifftshift2_batch(data: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(
        data.len() % (rows * cols),
        0,
        "ifftshift2_batch buffer is not a whole number of fields"
    );
    for entry in data.chunks_mut(rows * cols) {
        ifftshift2(entry, rows, cols);
    }
}

/// Maps a corner-origin frequency index to a signed frequency in
/// `[-n/2, n/2)` (standard DFT bin interpretation).
///
/// # Examples
///
/// ```
/// use bismo_fft::signed_freq;
/// assert_eq!(signed_freq(0, 8), 0);
/// assert_eq!(signed_freq(3, 8), 3);
/// assert_eq!(signed_freq(4, 8), -4);
/// assert_eq!(signed_freq(7, 8), -1);
/// ```
#[inline]
pub fn signed_freq(idx: usize, n: usize) -> isize {
    let idx = idx as isize;
    let n = n as isize;
    if idx < n - n / 2 {
        idx
    } else {
        idx - n
    }
}

/// Inverse of [`signed_freq`]: wraps a signed frequency onto the
/// corner-origin index range `0..n`.
///
/// # Panics
///
/// Panics if `f` lies outside `[-n/2, n/2)`.
#[inline]
pub fn wrap_freq(f: isize, n: usize) -> usize {
    let n = n as isize;
    assert!(
        f >= -n / 2 && f < n - n / 2,
        "frequency {f} out of range for n={n}"
    );
    ((f + n) % n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft1d::dft_naive;

    fn rand_grid(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..rows * cols)
            .map(|_| Complex64::new(next(), next()))
            .collect()
    }

    #[test]
    fn roundtrip_identity() {
        let (r, c) = (16, 32);
        let plan = Fft2Plan::new(r, c).unwrap();
        let x = rand_grid(r, c, 3);
        let mut y = x.clone();
        plan.forward(&mut y).unwrap();
        plan.inverse(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn separable_against_naive_rows_then_cols() {
        let (r, c) = (4, 8);
        let plan = Fft2Plan::new(r, c).unwrap();
        let x = rand_grid(r, c, 11);
        let mut got = x.clone();
        plan.forward(&mut got).unwrap();

        // Naive: DFT rows, then DFT cols.
        let mut rows_done = vec![Complex64::ZERO; r * c];
        for i in 0..r {
            let row: Vec<_> = x[i * c..(i + 1) * c].to_vec();
            let f = dft_naive(&row, Direction::Forward);
            rows_done[i * c..(i + 1) * c].copy_from_slice(&f);
        }
        let mut expected = vec![Complex64::ZERO; r * c];
        for j in 0..c {
            let col: Vec<_> = (0..r).map(|i| rows_done[i * c + j]).collect();
            let f = dft_naive(&col, Direction::Forward);
            for i in 0..r {
                expected[i * c + j] = f[i];
            }
        }
        for (g, e) in got.iter().zip(&expected) {
            assert!((*g - *e).abs() < 1e-9);
        }
    }

    #[test]
    fn unitary_preserves_energy() {
        let (r, c) = (8, 8);
        let plan = Fft2Plan::new(r, c).unwrap();
        let mut x = rand_grid(r, c, 21);
        let e0: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        plan.forward_unitary(&mut x).unwrap();
        let e1: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        assert!((e0 - e1).abs() < 1e-9);
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let (r, c) = (8, 8);
        let mut x = vec![Complex64::ZERO; r * c];
        x[0] = Complex64::ONE;
        fftshift2(&mut x, r, c);
        assert_eq!(x[(r / 2) * c + c / 2], Complex64::ONE);
        // Self-inverse for even sizes.
        fftshift2(&mut x, r, c);
        assert_eq!(x[0], Complex64::ONE);
    }

    #[test]
    fn shift_then_unshift_is_identity() {
        let (r, c) = (16, 8);
        let x = rand_grid(r, c, 8);
        let mut y = x.clone();
        fftshift2(&mut y, r, c);
        ifftshift2(&mut y, r, c);
        assert_eq!(x, y);
    }

    #[test]
    fn shifts_match_naive_copy_on_odd_dims() {
        // The in-place rotation implementation must reproduce the reference
        // out[(r+h_r)%rows][(c+h_c)%cols] = in[r][c] semantics, including on
        // odd dimensions where fftshift and ifftshift differ.
        for (rows, cols) in [(5usize, 7usize), (4, 5), (3, 8), (1, 6), (5, 1)] {
            let x = rand_grid(rows, cols, 17);
            for (half_r, half_c, shift) in [
                (
                    rows / 2,
                    cols / 2,
                    fftshift2 as fn(&mut [Complex64], usize, usize),
                ),
                (rows.div_ceil(2), cols.div_ceil(2), ifftshift2),
            ] {
                let mut expected = vec![Complex64::ZERO; rows * cols];
                for r in 0..rows {
                    for c in 0..cols {
                        expected[((r + half_r) % rows) * cols + (c + half_c) % cols] =
                            x[r * cols + c];
                    }
                }
                let mut got = x.clone();
                shift(&mut got, rows, cols);
                assert_eq!(got, expected, "{rows}x{cols}");
            }
        }
        // Odd dims: the two shifts are inverses of each other.
        let (rows, cols) = (5, 7);
        let x = rand_grid(rows, cols, 23);
        let mut y = x.clone();
        fftshift2(&mut y, rows, cols);
        ifftshift2(&mut y, rows, cols);
        assert_eq!(x, y);
    }

    #[test]
    fn workspace_transforms_match_plain_transforms() {
        let (r, c) = (8, 16);
        let plan = Fft2Plan::new(r, c).unwrap();
        let x = rand_grid(r, c, 31);
        let mut ws = Fft2Workspace::for_plan(&plan);
        let mut with_ws = x.clone();
        plan.forward_with(&mut with_ws, &mut ws).unwrap();
        let mut plain = x.clone();
        plan.forward(&mut plain).unwrap();
        assert_eq!(with_ws, plain);
        plan.inverse_with(&mut with_ws, &mut ws).unwrap();
        plan.inverse(&mut plain).unwrap();
        assert_eq!(with_ws, plain);
        // A stale workspace from a different plan is resized, not rejected.
        let other = Fft2Plan::new(4, 4).unwrap();
        let mut small = vec![Complex64::ONE; 16];
        other.forward_with(&mut small, &mut ws).unwrap();
        assert!((small[0].re - 16.0).abs() < 1e-12);
    }

    #[test]
    fn batched_transforms_match_per_entry_transforms_bitwise() {
        // The batched path reorders only memory movement, never arithmetic:
        // every entry must equal the plan's own transform bit-for-bit. Cover
        // grids smaller and larger than COL_BLOCK, non-square shapes, and
        // batch sizes around the block boundary.
        for &(r, c, batch) in &[
            (4usize, 4usize, 1usize),
            (8, 16, 3),
            (16, 8, 2),
            (32, 32, 5),
        ] {
            let plan = Fft2Plan::new(r, c).unwrap();
            let stacked: Vec<Complex64> = (0..batch)
                .flat_map(|b| rand_grid(r, c, 100 + b as u64))
                .collect();
            let mut ws = Fft2Workspace::new();

            let mut got = stacked.clone();
            plan.batched(batch).forward_with(&mut got, &mut ws).unwrap();
            let mut expected = stacked.clone();
            for entry in expected.chunks_mut(r * c) {
                plan.forward(entry).unwrap();
            }
            assert_eq!(got, expected, "forward {r}x{c} B={batch}");

            plan.batched(batch).inverse_with(&mut got, &mut ws).unwrap();
            for entry in expected.chunks_mut(r * c) {
                plan.inverse(entry).unwrap();
            }
            assert_eq!(got, expected, "inverse {r}x{c} B={batch}");
        }
    }

    #[test]
    fn batched_transform_rejects_partial_batches() {
        let plan = Fft2Plan::new(4, 4).unwrap();
        let mut buf = vec![Complex64::ZERO; 3 * 16 - 1];
        assert!(plan.batched(3).forward(&mut buf).is_err());
        // Zero-entry batches are a no-op, not an error.
        let mut empty: Vec<Complex64> = Vec::new();
        assert!(plan.batched(0).forward(&mut empty).is_ok());
        assert!(plan.batched(0).is_empty());
        assert_eq!(plan.batched(2).len(), 32);
    }

    #[test]
    fn batched_shifts_match_per_entry_shifts() {
        for &(r, c, batch) in &[(8usize, 8usize, 3usize), (5, 7, 2)] {
            let stacked: Vec<Complex64> = (0..batch)
                .flat_map(|b| rand_grid(r, c, 40 + b as u64))
                .collect();
            let mut got = stacked.clone();
            fftshift2_batch(&mut got, r, c);
            let mut expected = stacked.clone();
            for entry in expected.chunks_mut(r * c) {
                fftshift2(entry, r, c);
            }
            assert_eq!(got, expected);
            ifftshift2_batch(&mut got, r, c);
            for entry in expected.chunks_mut(r * c) {
                ifftshift2(entry, r, c);
            }
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn signed_freq_wrap_roundtrip() {
        for n in [2usize, 4, 8, 16, 64] {
            for idx in 0..n {
                let f = signed_freq(idx, n);
                assert_eq!(wrap_freq(f, n), idx);
            }
        }
    }

    #[test]
    fn wrong_size_rejected() {
        let plan = Fft2Plan::new(4, 4).unwrap();
        let mut buf = vec![Complex64::ZERO; 15];
        assert!(plan.forward(&mut buf).is_err());
    }
}
