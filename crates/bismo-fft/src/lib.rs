//! # bismo-fft
//!
//! Complex arithmetic and radix-2 FFTs for the BiSMO lithography workspace.
//!
//! This crate is the lowest substrate of the reproduction of *"Efficient
//! Bilevel Source Mask Optimization"* (DAC 2024): every imaging model in the
//! stack — Abbe source-point integration and Hopkins/SOCS — is a chain of
//! 2-D Fourier transforms, and the hand-derived adjoint gradients rely on the
//! transform being exactly unitary so its adjoint equals its inverse.
//!
//! ## Examples
//!
//! ```
//! use bismo_fft::{Complex64, Fft2Plan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plan = Fft2Plan::new(8, 8)?;
//! let mut field = vec![Complex64::ZERO; 64];
//! field[0] = Complex64::ONE;
//! plan.forward_unitary(&mut field)?;
//! // An impulse spreads evenly across the unitary spectrum.
//! assert!((field[37].re - 1.0 / 8.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod fft1d;
mod fft2d;
mod transfer;

pub use complex::Complex64;
pub use fft1d::{dft_naive, Direction, FftError, FftPlan};
pub use fft2d::{
    fftshift2, fftshift2_batch, ifftshift2, ifftshift2_batch, signed_freq, wrap_freq, BatchFft2,
    Fft2Plan, Fft2Workspace,
};
pub use transfer::{prolong2, restrict2, GridTransfer, GridTransferWorkspace};
