//! Planned radix-2 decimation-in-time FFT.
//!
//! A [`FftPlan`] precomputes the bit-reversal permutation and twiddle factors
//! for a fixed power-of-two length and can then transform any number of
//! buffers without further allocation. Both unnormalized (`forward` /
//! `inverse` with `1/N` on the inverse) and unitary (`1/√N` each way)
//! conventions are offered; the imaging code uses the unitary convention so
//! that the FFT is its own adjoint-inverse, which keeps the hand-derived
//! gradients free of stray normalization factors.
//!
//! @bismo:bit-exact — the stage kernels below are pinned by the golden
//! FNV-bit hashes (DESIGN.md §10): loop restructuring is bit-safe, per-
//! element operation-DAG changes (FMA, fold reordering, CPU dispatch) are
//! not. Enforced by bismo-analyze's bit-exact-purity rule.

use crate::complex::Complex64;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X[k] = Σ_n x[n]·e^{-2πi kn/N}` (negative exponent).
    Forward,
    /// Positive exponent.
    Inverse,
}

/// Error returned when a plan is asked to transform a buffer of the wrong
/// length, or when constructing a plan with an invalid length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FftError {
    kind: FftErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum FftErrorKind {
    NotPowerOfTwo(usize),
    LengthMismatch { expected: usize, got: usize },
    SizeOverflow { count: usize, len: usize },
    TransferOrder { fine: usize, coarse: usize },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FftErrorKind::NotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a power of two (and nonzero)")
            }
            FftErrorKind::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "buffer length {got} does not match plan length {expected}"
                )
            }
            FftErrorKind::SizeOverflow { count, len } => {
                write!(
                    f,
                    "batched buffer of {count} × {len} elements overflows usize"
                )
            }
            FftErrorKind::TransferOrder { fine, coarse } => {
                write!(
                    f,
                    "grid transfer requires coarse dim ≤ fine dim, got coarse {coarse} > fine {fine}"
                )
            }
        }
    }
}

impl std::error::Error for FftError {}

impl FftError {
    pub(crate) fn length_mismatch(expected: usize, got: usize) -> Self {
        FftError {
            kind: FftErrorKind::LengthMismatch { expected, got },
        }
    }

    pub(crate) fn size_overflow(count: usize, len: usize) -> Self {
        FftError {
            kind: FftErrorKind::SizeOverflow { count, len },
        }
    }

    pub(crate) fn transfer_order(fine: usize, coarse: usize) -> Self {
        FftError {
            kind: FftErrorKind::TransferOrder { fine, coarse },
        }
    }
}

/// Complex elements processed per chunked butterfly iteration (4 complex
/// values = 8 `f64` lanes — one or two SIMD registers on every target we
/// build for). The kernels below are written as fixed-trip-count inner
/// loops over `chunks_exact` windows of this width so the autovectorizer
/// sees straight-line multiply–add code with no data-dependent bounds.
const LANES: usize = 4;

/// One radix-2 butterfly with the twiddle passed as `(wr, wi)` components:
/// `b ← b·w`, then `(a, b) ← (a + b, a − b)`.
///
/// The multiply uses exactly the arithmetic of `Complex64::mul`, and the
/// inverse direction negates `wi` before the call (bit-equal to `w.conj()`),
/// so every element's floating-point DAG is identical to the historical
/// scalar kernel — restructuring the loops around this function is pure
/// scheduling and never changes results.
#[inline(always)]
fn butterfly(a: &mut Complex64, b: &mut Complex64, wr: f64, wi: f64) {
    let br = b.re * wr - b.im * wi;
    let bi = b.re * wi + b.im * wr;
    let (ar, ai) = (a.re, a.im);
    *a = Complex64::new(ar + br, ai + bi);
    *b = Complex64::new(ar - br, ai - bi);
}

/// All butterflies of one stage within one block, split as `lo`/`hi` halves
/// of the block and driven in [`LANES`]-wide chunks. `s` is the direction
/// sign applied to the twiddle imaginary parts (`+1` forward, `−1` inverse;
/// `s · im` is bit-equal to the historical `w` / `w.conj()` selection).
#[inline(always)]
fn stage_block(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64], s: f64) {
    let mut lo_it = lo.chunks_exact_mut(LANES);
    let mut hi_it = hi.chunks_exact_mut(LANES);
    let mut tw_it = tw.chunks_exact(LANES);
    for ((a, b), w) in (&mut lo_it).zip(&mut hi_it).zip(&mut tw_it) {
        for k in 0..LANES {
            butterfly(&mut a[k], &mut b[k], w[k].re, s * w[k].im);
        }
    }
    for ((a, b), w) in lo_it
        .into_remainder()
        .iter_mut()
        .zip(hi_it.into_remainder())
        .zip(tw_it.remainder())
    {
        butterfly(a, b, w.re, s * w.im);
    }
}

/// The half-size-1 stage: every block is an adjacent pair sharing the single
/// stage twiddle, so the whole pass is one uniform-twiddle sweep the
/// vectorizer can unroll across pairs.
#[inline(always)]
fn stage_m1(data: &mut [Complex64], w: Complex64, s: f64) {
    let (wr, wi) = (w.re, s * w.im);
    for pair in data.chunks_exact_mut(2) {
        let (a, b) = pair.split_at_mut(1);
        butterfly(&mut a[0], &mut b[0], wr, wi);
    }
}

/// The half-size-2 stage: blocks of four with two fixed twiddles.
#[inline(always)]
fn stage_m2(data: &mut [Complex64], tw: &[Complex64], s: f64) {
    let (w0r, w0i) = (tw[0].re, s * tw[0].im);
    let (w1r, w1i) = (tw[1].re, s * tw[1].im);
    for block in data.chunks_exact_mut(4) {
        let (lo, hi) = block.split_at_mut(2);
        butterfly(&mut lo[0], &mut hi[0], w0r, w0i);
        butterfly(&mut lo[1], &mut hi[1], w1r, w1i);
    }
}

/// Precomputed plan for radix-2 FFTs of a fixed power-of-two length.
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, FftPlan};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Complex64::ONE; 8];
/// plan.forward(&mut data)?;
/// // The DC bin collects the sum; everything else cancels.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Twiddles for the forward transform, laid out stage by stage:
    /// stage with half-size `m` contributes `m` entries `e^{-iπ j/m}`.
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns an error if `len` is zero or not a power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 || !len.is_power_of_two() {
            return Err(FftError {
                kind: FftErrorKind::NotPowerOfTwo(len),
            });
        }
        let bits = len.trailing_zeros();
        let mut rev = vec![0u32; len];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if len == 1 {
            rev[0] = 0;
        }
        // Total twiddles = 1 + 2 + 4 + ... + len/2 = len - 1.
        let mut twiddles = Vec::with_capacity(len.saturating_sub(1));
        let mut m = 1usize;
        while m < len {
            for j in 0..m {
                let theta = -std::f64::consts::PI * j as f64 / m as f64;
                twiddles.push(Complex64::cis(theta));
            }
            m <<= 1;
        }
        Ok(FftPlan { len, rev, twiddles })
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the plan transforms zero elements.
    ///
    /// [`FftPlan::new`] rejects `len == 0`, so every constructible plan
    /// reports `false` — but the answer is now *computed* from `len()`, not
    /// hard-coded, keeping the `len`/`is_empty` pair honest (and consistent
    /// with [`crate::BatchFft2::is_empty`], which can genuinely be `true`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, data: &[Complex64]) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError {
                kind: FftErrorKind::LengthMismatch {
                    expected: self.len,
                    got: data.len(),
                },
            });
        }
        Ok(())
    }

    /// Applies the bit-reversal permutation to one length-`len` buffer.
    #[inline]
    fn bit_reverse(&self, data: &mut [Complex64]) {
        for i in 0..self.len {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    /// Runs every butterfly stage over one bit-reversed buffer. `s` is the
    /// direction sign for the twiddle imaginary parts (`+1` forward, `−1`
    /// inverse). Stages with half-size 1 and 2 get dedicated uniform-twiddle
    /// kernels; larger stages go through the [`LANES`]-chunked
    /// [`stage_block`]. All three execute the exact per-element arithmetic
    /// of the classic triple loop, so results are bit-identical to it.
    fn butterfly_stages(&self, data: &mut [Complex64], s: f64) {
        let n = self.len;
        let mut m = 1usize;
        let mut tw_base = 0usize;
        while m < n {
            let tw = &self.twiddles[tw_base..tw_base + m];
            match m {
                1 => stage_m1(data, tw[0], s),
                2 => stage_m2(data, tw, s),
                _ => {
                    for block in data.chunks_exact_mut(m << 1) {
                        let (lo, hi) = block.split_at_mut(m);
                        stage_block(lo, hi, tw, s);
                    }
                }
            }
            tw_base += m;
            m <<= 1;
        }
    }

    /// In-place transform without any normalization.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn transform(&self, data: &mut [Complex64], dir: Direction) -> Result<(), FftError> {
        self.check(data)?;
        if self.len == 1 {
            return Ok(());
        }
        self.bit_reverse(data);
        let s = match dir {
            Direction::Forward => 1.0,
            Direction::Inverse => -1.0,
        };
        self.butterfly_stages(data, s);
        Ok(())
    }

    /// Transforms `count` independent, contiguously stacked length-`len`
    /// buffers in one pass.
    ///
    /// Per-buffer results are **bit-identical** to `count` separate
    /// [`FftPlan::transform`] calls: each buffer executes exactly the same
    /// butterflies in exactly the same order. The batched entry point
    /// amortizes the length check and plan walk and keeps each buffer's
    /// butterflies in the [`LANES`]-chunked kernels, which is the throughput
    /// path behind the blocked 2-D row/column passes (`Fft2Plan::batched`
    /// and the single-field scheduler both feed it blocks of rows and
    /// gathered columns).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != count · len`, or if `count · len`
    /// itself overflows `usize` (which previously wrapped and could
    /// mis-validate the buffer length in release builds).
    pub fn transform_interleaved(
        &self,
        data: &mut [Complex64],
        count: usize,
        dir: Direction,
    ) -> Result<(), FftError> {
        let n = self.len;
        let total = n
            .checked_mul(count)
            .ok_or_else(|| FftError::size_overflow(count, n))?;
        if data.len() != total {
            return Err(FftError::length_mismatch(total, data.len()));
        }
        if n == 1 || count == 0 {
            return Ok(());
        }
        let s = match dir {
            Direction::Forward => 1.0,
            Direction::Inverse => -1.0,
        };
        for buf in data.chunks_exact_mut(n) {
            self.bit_reverse(buf);
            self.butterfly_stages(buf, s);
        }
        Ok(())
    }

    /// Forward DFT, unnormalized: `X[k] = Σ x[n] e^{-2πi kn/N}`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)
    }

    /// Inverse DFT with `1/N` normalization, so `inverse(forward(x)) == x`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / self.len as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary forward DFT (`1/√N` scaling).
    ///
    /// The unitary convention makes the transform norm-preserving, so the
    /// adjoint of `forward_unitary` is exactly `inverse_unitary`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn forward_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)?;
        let scale = 1.0 / (self.len as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary inverse DFT (`1/√N` scaling).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn inverse_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / (self.len as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }
}

/// Reference `O(N²)` DFT used by the test-suite to validate the FFT.
///
/// Exposed publicly so downstream crates' tests can cross-check their own
/// frequency-domain code against a trivially-correct transform.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex64::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Tiny xorshift so the test has no external deps.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(FftPlan::new(0).is_err());
        assert!(FftPlan::new(3).is_err());
        assert!(FftPlan::new(12).is_err());
        assert!(FftPlan::new(1).is_ok());
        assert!(FftPlan::new(1024).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex64::ZERO; 4];
        assert!(plan.forward(&mut buf).is_err());
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 128] {
            let plan = FftPlan::new(n).unwrap();
            let x = rand_signal(n, 42 + n as u64);
            let expected = dft_naive(&x, Direction::Forward);
            let mut got = x.clone();
            plan.forward(&mut got).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert!((*g - *e).abs() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_roundtrip_is_identity() {
        let n = 256;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 7);
        let mut y = x.clone();
        plan.forward(&mut y).unwrap();
        plan.inverse(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn unitary_roundtrip_and_norm_preservation() {
        let n = 128;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 99);
        let norm_in: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        plan.forward_unitary(&mut y).unwrap();
        let norm_mid: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm_in - norm_mid).abs() < 1e-9, "Parseval violated");
        plan.inverse_unitary(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        plan.forward(&mut x).unwrap();
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_theorem() {
        // Shifting input by one sample multiplies bin k by e^{-2πik/N}.
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 5);
        let mut shifted = vec![Complex64::ZERO; n];
        for i in 0..n {
            shifted[(i + 1) % n] = x[i];
        }
        let mut fx = x.clone();
        let mut fs = shifted;
        plan.forward(&mut fx).unwrap();
        plan.forward(&mut fs).unwrap();
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).abs() < 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 1);
        let y = rand_signal(n, 2);
        let a = Complex64::new(0.3, -1.2);
        let mut lhs: Vec<Complex64> = x.iter().zip(&y).map(|(&u, &v)| a * u + v).collect();
        plan.forward(&mut lhs).unwrap();
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.forward(&mut fx).unwrap();
        plan.forward(&mut fy).unwrap();
        for k in 0..n {
            assert!((lhs[k] - (a * fx[k] + fy[k])).abs() < 1e-9);
        }
    }
}
