//! Planned radix-2 decimation-in-time FFT.
//!
//! A [`FftPlan`] precomputes the bit-reversal permutation and twiddle factors
//! for a fixed power-of-two length and can then transform any number of
//! buffers without further allocation. Both unnormalized (`forward` /
//! `inverse` with `1/N` on the inverse) and unitary (`1/√N` each way)
//! conventions are offered; the imaging code uses the unitary convention so
//! that the FFT is its own adjoint-inverse, which keeps the hand-derived
//! gradients free of stray normalization factors.

use crate::complex::Complex64;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X[k] = Σ_n x[n]·e^{-2πi kn/N}` (negative exponent).
    Forward,
    /// Positive exponent.
    Inverse,
}

/// Error returned when a plan is asked to transform a buffer of the wrong
/// length, or when constructing a plan with an invalid length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FftError {
    kind: FftErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum FftErrorKind {
    NotPowerOfTwo(usize),
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FftErrorKind::NotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a power of two (and nonzero)")
            }
            FftErrorKind::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "buffer length {got} does not match plan length {expected}"
                )
            }
        }
    }
}

impl std::error::Error for FftError {}

impl FftError {
    pub(crate) fn length_mismatch(expected: usize, got: usize) -> Self {
        FftError {
            kind: FftErrorKind::LengthMismatch { expected, got },
        }
    }
}

/// Precomputed plan for radix-2 FFTs of a fixed power-of-two length.
///
/// # Examples
///
/// ```
/// use bismo_fft::{Complex64, FftPlan};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Complex64::ONE; 8];
/// plan.forward(&mut data)?;
/// // The DC bin collects the sum; everything else cancels.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Twiddles for the forward transform, laid out stage by stage:
    /// stage with half-size `m` contributes `m` entries `e^{-iπ j/m}`.
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns an error if `len` is zero or not a power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 || !len.is_power_of_two() {
            return Err(FftError {
                kind: FftErrorKind::NotPowerOfTwo(len),
            });
        }
        let bits = len.trailing_zeros();
        let mut rev = vec![0u32; len];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if len == 1 {
            rev[0] = 0;
        }
        // Total twiddles = 1 + 2 + 4 + ... + len/2 = len - 1.
        let mut twiddles = Vec::with_capacity(len.saturating_sub(1));
        let mut m = 1usize;
        while m < len {
            for j in 0..m {
                let theta = -std::f64::consts::PI * j as f64 / m as f64;
                twiddles.push(Complex64::cis(theta));
            }
            m <<= 1;
        }
        Ok(FftPlan { len, rev, twiddles })
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn check(&self, data: &[Complex64]) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError {
                kind: FftErrorKind::LengthMismatch {
                    expected: self.len,
                    got: data.len(),
                },
            });
        }
        Ok(())
    }

    /// In-place transform without any normalization.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn transform(&self, data: &mut [Complex64], dir: Direction) -> Result<(), FftError> {
        self.check(data)?;
        let n = self.len;
        if n == 1 {
            return Ok(());
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut m = 1usize;
        let mut tw_base = 0usize;
        while m < n {
            let step = m << 1;
            for start in (0..n).step_by(step) {
                for j in 0..m {
                    let w = match dir {
                        Direction::Forward => self.twiddles[tw_base + j],
                        Direction::Inverse => self.twiddles[tw_base + j].conj(),
                    };
                    let a = data[start + j];
                    let b = data[start + j + m] * w;
                    data[start + j] = a + b;
                    data[start + j + m] = a - b;
                }
            }
            tw_base += m;
            m = step;
        }
        Ok(())
    }

    /// Transforms `count` independent, contiguously stacked length-`len`
    /// buffers in one pass, interleaving every butterfly across the buffers.
    ///
    /// Per-buffer results are **bit-identical** to `count` separate
    /// [`FftPlan::transform`] calls: each buffer executes exactly the same
    /// butterflies in exactly the same order. What changes is the schedule —
    /// the twiddle factor (and its inverse-direction conjugation) is loaded
    /// once per butterfly position and reused across all buffers, and the
    /// `count` butterflies sharing it are independent, so the CPU can
    /// overlap their multiply–add latency chains instead of serializing one
    /// buffer's transform at a time. This is the throughput kernel behind
    /// the batched 2-D path (`Fft2Plan::batched`), which feeds it blocks of
    /// rows and gathered columns.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != count · len`.
    pub fn transform_interleaved(
        &self,
        data: &mut [Complex64],
        count: usize,
        dir: Direction,
    ) -> Result<(), FftError> {
        let n = self.len;
        if data.len() != n * count {
            return Err(FftError {
                kind: FftErrorKind::LengthMismatch {
                    expected: n * count,
                    got: data.len(),
                },
            });
        }
        if n == 1 || count == 0 {
            return Ok(());
        }
        // Per-buffer bit-reversal permutation.
        for buf in data.chunks_mut(n) {
            for i in 0..n {
                let j = self.rev[i] as usize;
                if i < j {
                    buf.swap(i, j);
                }
            }
        }
        // Butterflies, innermost over the independent buffers.
        let mut m = 1usize;
        let mut tw_base = 0usize;
        while m < n {
            let step = m << 1;
            for start in (0..n).step_by(step) {
                for j in 0..m {
                    let w = match dir {
                        Direction::Forward => self.twiddles[tw_base + j],
                        Direction::Inverse => self.twiddles[tw_base + j].conj(),
                    };
                    let mut off = start + j;
                    for _ in 0..count {
                        let a = data[off];
                        let b = data[off + m] * w;
                        data[off] = a + b;
                        data[off + m] = a - b;
                        off += n;
                    }
                }
            }
            tw_base += m;
            m = step;
        }
        Ok(())
    }

    /// Forward DFT, unnormalized: `X[k] = Σ x[n] e^{-2πi kn/N}`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)
    }

    /// Inverse DFT with `1/N` normalization, so `inverse(forward(x)) == x`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / self.len as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary forward DFT (`1/√N` scaling).
    ///
    /// The unitary convention makes the transform norm-preserving, so the
    /// adjoint of `forward_unitary` is exactly `inverse_unitary`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn forward_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Forward)?;
        let scale = 1.0 / (self.len as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }

    /// Unitary inverse DFT (`1/√N` scaling).
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` differs from the plan length.
    pub fn inverse_unitary(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.transform(data, Direction::Inverse)?;
        let scale = 1.0 / (self.len as f64).sqrt();
        for z in data.iter_mut() {
            *z *= scale;
        }
        Ok(())
    }
}

/// Reference `O(N²)` DFT used by the test-suite to validate the FFT.
///
/// Exposed publicly so downstream crates' tests can cross-check their own
/// frequency-domain code against a trivially-correct transform.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex64::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Tiny xorshift so the test has no external deps.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(FftPlan::new(0).is_err());
        assert!(FftPlan::new(3).is_err());
        assert!(FftPlan::new(12).is_err());
        assert!(FftPlan::new(1).is_ok());
        assert!(FftPlan::new(1024).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex64::ZERO; 4];
        assert!(plan.forward(&mut buf).is_err());
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 128] {
            let plan = FftPlan::new(n).unwrap();
            let x = rand_signal(n, 42 + n as u64);
            let expected = dft_naive(&x, Direction::Forward);
            let mut got = x.clone();
            plan.forward(&mut got).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert!((*g - *e).abs() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_roundtrip_is_identity() {
        let n = 256;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 7);
        let mut y = x.clone();
        plan.forward(&mut y).unwrap();
        plan.inverse(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn unitary_roundtrip_and_norm_preservation() {
        let n = 128;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 99);
        let norm_in: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        plan.forward_unitary(&mut y).unwrap();
        let norm_mid: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm_in - norm_mid).abs() < 1e-9, "Parseval violated");
        plan.inverse_unitary(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        plan.forward(&mut x).unwrap();
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_theorem() {
        // Shifting input by one sample multiplies bin k by e^{-2πik/N}.
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 5);
        let mut shifted = vec![Complex64::ZERO; n];
        for i in 0..n {
            shifted[(i + 1) % n] = x[i];
        }
        let mut fx = x.clone();
        let mut fs = shifted;
        plan.forward(&mut fx).unwrap();
        plan.forward(&mut fs).unwrap();
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).abs() < 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let x = rand_signal(n, 1);
        let y = rand_signal(n, 2);
        let a = Complex64::new(0.3, -1.2);
        let mut lhs: Vec<Complex64> = x.iter().zip(&y).map(|(&u, &v)| a * u + v).collect();
        plan.forward(&mut lhs).unwrap();
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.forward(&mut fx).unwrap();
        plan.forward(&mut fy).unwrap();
        for k in 0..n {
            assert!((lhs[k] - (a * fx[k] + fy[k])).abs() < 1e-9);
        }
    }
}
