//! Spectral grid-transfer operators between power-of-two grids
//! (DESIGN.md §11): the restriction `R` (fine → coarse) and prolongation
//! `P` (coarse → fine) underpinning the coarse-to-fine multigrid
//! optimization axis.
//!
//! Both operators are exact band-limited resampling: forward transform,
//! truncate (R) or zero-pad (P) the centered spectrum, inverse transform.
//! The implementation works directly on the corner-origin layout through
//! [`signed_freq`]/[`wrap_freq`], so no `fftshift` copies are made.
//!
//! ## Nyquist convention
//!
//! On an even coarse grid of side `n` the signed frequency `−n/2` is its
//! own conjugate partner. A fine grid of side `N > n` carries *both*
//! `−n/2` and `+n/2`; plain sampling of one of them would break Hermitian
//! symmetry (the restricted field of a real input would come out complex),
//! and plain duplication on prolongation would double the folded energy.
//! Both operators therefore weight the coarse Nyquist row/column by
//! `1/√2`: restriction *folds* `fine[−n/2] + fine[+n/2]` with weight
//! `1/√2`, prolongation *splits* the coarse Nyquist coefficient with
//! weight `1/√2` into both fine bins (the shared corner bin composes the
//! row and column weights into `1/2`). This is the unique choice that
//! keeps real fields real, makes `R ∘ P` the exact identity on the coarse
//! grid, and makes the pair adjoint.
//!
//! ## Scaling and adjointness
//!
//! `R = (n²/N²) · F_n⁻¹ ∘ T ∘ F_N` and `P = (N²/n²) · F_N⁻¹ ∘ Tᴴ ∘ F_n`
//! (with the crate's unnormalized forward / `1/N²`-normalized inverse this
//! is one net `1/N²` on restriction and `1/n²` on prolongation). Both
//! preserve constants — a flat field restricts and prolongs to the same
//! flat field — and the pair is adjoint under the *grid-averaged* inner
//! products `⟨u, v⟩ = (1/dim²) Σ uᵢvᵢ`:
//!
//! ```text
//! ⟨R x, y⟩ / n²  =  ⟨x, P y⟩ / N²
//! ```
//!
//! pinned (together with the `R∘P` identity and the `P∘R` band-limit
//! identity) by the property tests below.

use std::f64::consts::FRAC_1_SQRT_2;

use crate::complex::Complex64;
use crate::fft1d::FftError;
use crate::fft2d::{signed_freq, wrap_freq, Fft2Plan, Fft2Workspace};

/// A planned restriction/prolongation pair between a `fine × fine` and a
/// `coarse × coarse` grid (both power-of-two sides, `coarse ≤ fine`).
///
/// The plan is immutable and shareable; per-call scratch lives in a
/// caller-owned [`GridTransferWorkspace`] so the warm `*_into` paths are
/// allocation-free (pinned in `tests/zero_alloc.rs`).
///
/// # Examples
///
/// ```
/// use bismo_fft::GridTransfer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = GridTransfer::new(8, 4)?;
/// let fine = vec![1.0; 64];
/// let coarse = t.restrict2(&fine)?;
/// // Constants survive restriction exactly.
/// assert!((coarse[0] - 1.0).abs() < 1e-12);
/// assert_eq!(t.prolong2(&coarse)?.len(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GridTransfer {
    fine: Fft2Plan,
    coarse: Fft2Plan,
}

/// Caller-owned scratch for [`GridTransfer`] operations: one complex buffer
/// per grid plus the shared FFT column scratch. Sized on construction so
/// even the first transfer performs no allocation.
#[derive(Debug, Clone)]
pub struct GridTransferWorkspace {
    fine: Vec<Complex64>,
    coarse: Vec<Complex64>,
    fft: Fft2Workspace,
}

/// Maps a coarse-grid frequency index onto its fine-grid source (or
/// destination) bins along one axis: the unique aliased bin at weight 1,
/// or — for the coarse Nyquist index on an even grid — the `±n/2` pair at
/// weight `1/√2` each.
#[inline]
fn axis_map(idx: usize, n: usize, big: usize) -> (usize, Option<usize>, f64) {
    debug_assert!(n < big, "equal dims take the copy fast path");
    let f = signed_freq(idx, n);
    if n.is_multiple_of(2) && idx == n / 2 {
        (wrap_freq(f, big), Some(wrap_freq(-f, big)), FRAC_1_SQRT_2)
    } else {
        (wrap_freq(f, big), None, 1.0)
    }
}

/// Grows `buf` to at least `len` and returns the sized slice.
fn scratch(buf: &mut Vec<Complex64>, len: usize) -> &mut [Complex64] {
    if buf.len() < len {
        buf.resize(len, Complex64::ZERO);
    }
    &mut buf[..len]
}

impl GridTransfer {
    /// Plans transfers between a `fine × fine` and a `coarse × coarse`
    /// grid.
    ///
    /// # Errors
    ///
    /// Returns an error when either side is not a nonzero power of two, or
    /// when `coarse > fine` (transfers only go down or stay put; swap the
    /// arguments to go the other way).
    pub fn new(fine: usize, coarse: usize) -> Result<GridTransfer, FftError> {
        if coarse > fine {
            return Err(FftError::transfer_order(fine, coarse));
        }
        Ok(GridTransfer {
            fine: Fft2Plan::new(fine, fine)?,
            coarse: Fft2Plan::new(coarse, coarse)?,
        })
    }

    /// Fine grid side length `N`.
    #[inline]
    pub fn fine_dim(&self) -> usize {
        self.fine.rows()
    }

    /// Coarse grid side length `n`.
    #[inline]
    pub fn coarse_dim(&self) -> usize {
        self.coarse.rows()
    }

    /// A workspace pre-sized for this transfer, so even the first
    /// `*_into` call allocates nothing.
    #[must_use]
    pub fn workspace(&self) -> GridTransferWorkspace {
        GridTransferWorkspace {
            fine: vec![Complex64::ZERO; self.fine.len()],
            coarse: vec![Complex64::ZERO; self.coarse.len()],
            fft: Fft2Workspace::for_plan(&self.fine),
        }
    }

    fn check(&self, fine_len: usize, coarse_len: usize) -> Result<(), FftError> {
        if fine_len != self.fine.len() {
            return Err(FftError::length_mismatch(self.fine.len(), fine_len));
        }
        if coarse_len != self.coarse.len() {
            return Err(FftError::length_mismatch(self.coarse.len(), coarse_len));
        }
        Ok(())
    }

    /// Spectral restriction `R`: band-limits `fine` to the coarse grid's
    /// spectrum and writes the result into `coarse`. Allocation-free once
    /// `ws` is sized (use [`GridTransfer::workspace`]).
    ///
    /// # Errors
    ///
    /// Returns an error when either slice length mismatches the plan.
    pub fn restrict2_into(
        &self,
        fine: &[f64],
        coarse: &mut [f64],
        ws: &mut GridTransferWorkspace,
    ) -> Result<(), FftError> {
        self.check(fine.len(), coarse.len())?;
        let (big, n) = (self.fine_dim(), self.coarse_dim());
        if big == n {
            coarse.copy_from_slice(fine);
            return Ok(());
        }
        let spec = scratch(&mut ws.fine, big * big);
        for (dst, &v) in spec.iter_mut().zip(fine) {
            *dst = Complex64::from_real(v);
        }
        self.fine.forward_with(spec, &mut ws.fft)?;
        let out = scratch(&mut ws.coarse, n * n);
        for r in 0..n {
            let (r0, r1, wr) = axis_map(r, n, big);
            for c in 0..n {
                let (c0, c1, wc) = axis_map(c, n, big);
                let mut acc = spec[r0 * big + c0];
                if let Some(c1) = c1 {
                    acc += spec[r0 * big + c1];
                }
                if let Some(r1) = r1 {
                    acc += spec[r1 * big + c0];
                    if let Some(c1) = c1 {
                        acc += spec[r1 * big + c1];
                    }
                }
                out[r * n + c] = acc * (wr * wc);
            }
        }
        self.coarse.inverse_with(out, &mut ws.fft)?;
        // Net 1/N²: the coarse inverse normalized by 1/n², times n²/N².
        let scale = (n * n) as f64 / (big * big) as f64;
        for (dst, s) in coarse.iter_mut().zip(out.iter()) {
            *dst = s.re * scale;
        }
        Ok(())
    }

    /// Spectral prolongation `P`: zero-pads the spectrum of `coarse` onto
    /// the fine grid and writes the band-limited interpolant into `fine`.
    /// Allocation-free once `ws` is sized.
    ///
    /// # Errors
    ///
    /// Returns an error when either slice length mismatches the plan.
    pub fn prolong2_into(
        &self,
        coarse: &[f64],
        fine: &mut [f64],
        ws: &mut GridTransferWorkspace,
    ) -> Result<(), FftError> {
        self.check(fine.len(), coarse.len())?;
        let (big, n) = (self.fine_dim(), self.coarse_dim());
        if big == n {
            fine.copy_from_slice(coarse);
            return Ok(());
        }
        let spec_c = scratch(&mut ws.coarse, n * n);
        for (dst, &v) in spec_c.iter_mut().zip(coarse) {
            *dst = Complex64::from_real(v);
        }
        self.coarse.forward_with(spec_c, &mut ws.fft)?;
        let spec_f = scratch(&mut ws.fine, big * big);
        spec_f.fill(Complex64::ZERO);
        for r in 0..n {
            let (r0, r1, wr) = axis_map(r, n, big);
            for c in 0..n {
                let (c0, c1, wc) = axis_map(c, n, big);
                let v = spec_c[r * n + c] * (wr * wc);
                spec_f[r0 * big + c0] = v;
                if let Some(c1) = c1 {
                    spec_f[r0 * big + c1] = v;
                }
                if let Some(r1) = r1 {
                    spec_f[r1 * big + c0] = v;
                    if let Some(c1) = c1 {
                        spec_f[r1 * big + c1] = v;
                    }
                }
            }
        }
        self.fine.inverse_with(spec_f, &mut ws.fft)?;
        // Net 1/n²: the fine inverse normalized by 1/N², times N²/n².
        let scale = (big * big) as f64 / (n * n) as f64;
        for (dst, s) in fine.iter_mut().zip(spec_f.iter()) {
            *dst = s.re * scale;
        }
        Ok(())
    }

    /// Allocating convenience wrapper over [`GridTransfer::restrict2_into`].
    ///
    /// # Errors
    ///
    /// Returns an error when `fine` mismatches the plan.
    pub fn restrict2(&self, fine: &[f64]) -> Result<Vec<f64>, FftError> {
        let mut out = vec![0.0; self.coarse.len()];
        self.restrict2_into(fine, &mut out, &mut self.workspace())?;
        Ok(out)
    }

    /// Allocating convenience wrapper over [`GridTransfer::prolong2_into`].
    ///
    /// # Errors
    ///
    /// Returns an error when `coarse` mismatches the plan.
    pub fn prolong2(&self, coarse: &[f64]) -> Result<Vec<f64>, FftError> {
        let mut out = vec![0.0; self.fine.len()];
        self.prolong2_into(coarse, &mut out, &mut self.workspace())?;
        Ok(out)
    }
}

/// One-shot spectral restriction of a `fine_dim × fine_dim` field to
/// `coarse_dim × coarse_dim` (see [`GridTransfer::restrict2_into`] for the
/// planned, allocation-free form).
///
/// # Errors
///
/// See [`GridTransfer::new`] / [`GridTransfer::restrict2_into`].
pub fn restrict2(fine: &[f64], fine_dim: usize, coarse_dim: usize) -> Result<Vec<f64>, FftError> {
    GridTransfer::new(fine_dim, coarse_dim)?.restrict2(fine)
}

/// One-shot spectral prolongation of a `coarse_dim × coarse_dim` field to
/// `fine_dim × fine_dim` (see [`GridTransfer::prolong2_into`] for the
/// planned, allocation-free form).
///
/// # Errors
///
/// See [`GridTransfer::new`] / [`GridTransfer::prolong2_into`].
pub fn prolong2(coarse: &[f64], coarse_dim: usize, fine_dim: usize) -> Result<Vec<f64>, FftError> {
    GridTransfer::new(fine_dim, coarse_dim)?.prolong2(coarse)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random field (no external RNG in this crate).
    fn noise(dim: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..dim * dim)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// (fine, coarse) pairs covering ×2/×4/×8 ratios, the degenerate 1- and
    /// 2-point coarse grids (DC-only and Nyquist-only), and equal sizes.
    const SIZES: &[(usize, usize)] = &[
        (2, 1),
        (4, 1),
        (4, 2),
        (8, 2),
        (8, 4),
        (16, 4),
        (16, 8),
        (32, 4),
        (32, 16),
        (64, 32),
        (8, 8),
        (1, 1),
    ];

    #[test]
    fn constants_survive_both_directions() {
        for &(nf, nc) in SIZES {
            let t = GridTransfer::new(nf, nc).unwrap();
            let coarse = t.restrict2(&vec![2.5; nf * nf]).unwrap();
            for &v in &coarse {
                assert!((v - 2.5).abs() < 1e-12, "({nf},{nc}) restrict: {v}");
            }
            let fine = t.prolong2(&vec![-1.25; nc * nc]).unwrap();
            for &v in &fine {
                assert!((v + 1.25).abs() < 1e-12, "({nf},{nc}) prolong: {v}");
            }
        }
    }

    #[test]
    fn restriction_of_prolongation_is_identity() {
        // R ∘ P = I on the coarse grid, exactly (up to fp roundoff) — the
        // 1/√2 Nyquist fold/split is what makes this hold for coarse
        // fields with Nyquist content too.
        for &(nf, nc) in SIZES {
            let t = GridTransfer::new(nf, nc).unwrap();
            let y = noise(nc, 7 + nf as u64 * 131 + nc as u64);
            let back = t.restrict2(&t.prolong2(&y).unwrap()).unwrap();
            for (i, (&a, &b)) in y.iter().zip(&back).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10 * (1.0 + a.abs()),
                    "({nf},{nc}) idx {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn prolongation_of_restriction_fixes_band_limited_fields() {
        // P ∘ R = I on fields already band-limited to the coarse spectrum
        // — which is exactly the image of P, so prolong-anything first.
        for &(nf, nc) in SIZES {
            let t = GridTransfer::new(nf, nc).unwrap();
            let x = t.prolong2(&noise(nc, 3 * nf as u64 + nc as u64)).unwrap();
            let again = t.prolong2(&t.restrict2(&x).unwrap()).unwrap();
            for (i, (&a, &b)) in x.iter().zip(&again).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10 * (1.0 + a.abs()),
                    "({nf},{nc}) idx {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn adjoint_under_grid_averaged_inner_products() {
        // ⟨R x, y⟩ / n² = ⟨x, P y⟩ / N² for arbitrary x (fine), y (coarse).
        for &(nf, nc) in SIZES {
            let t = GridTransfer::new(nf, nc).unwrap();
            let x = noise(nf, 11 * nf as u64 + nc as u64);
            let y = noise(nc, 17 * nc as u64 + nf as u64);
            let lhs = dot(&t.restrict2(&x).unwrap(), &y) / (nc * nc) as f64;
            let rhs = dot(&x, &t.prolong2(&y).unwrap()) / (nf * nf) as f64;
            assert!(
                (lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()),
                "({nf},{nc}): ⟨Rx,y⟩/n² = {lhs} vs ⟨x,Py⟩/N² = {rhs}"
            );
        }
    }

    #[test]
    fn restriction_to_one_point_is_the_mean() {
        let x = noise(8, 42);
        let mean = x.iter().sum::<f64>() / 64.0;
        let r = restrict2(&x, 8, 1).unwrap();
        assert!((r[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn warm_into_paths_match_the_allocating_wrappers() {
        let t = GridTransfer::new(16, 4).unwrap();
        let mut ws = t.workspace();
        let x = noise(16, 5);
        let mut coarse = vec![0.0; 16];
        // Run twice through the same workspace: results must be identical
        // (no state leaks between calls).
        t.restrict2_into(&x, &mut coarse, &mut ws).unwrap();
        let first = coarse.clone();
        t.restrict2_into(&x, &mut coarse, &mut ws).unwrap();
        assert_eq!(first, coarse);
        assert_eq!(coarse, t.restrict2(&x).unwrap());

        let mut fine = vec![0.0; 256];
        t.prolong2_into(&coarse, &mut fine, &mut ws).unwrap();
        assert_eq!(fine, t.prolong2(&coarse).unwrap());
    }

    #[test]
    fn rejects_bad_shapes_fail_fast() {
        // Upward "restriction" is an ordering error, not a silent swap.
        let err = GridTransfer::new(4, 8).unwrap_err();
        assert!(err.to_string().contains("coarse 8 > fine 4"), "{err}");
        // Non-power-of-two sides are rejected by the planner.
        assert!(GridTransfer::new(12, 4).is_err());
        assert!(GridTransfer::new(16, 3).is_err());
        // Slice length mismatches fail before any transform work.
        let t = GridTransfer::new(8, 4).unwrap();
        assert!(t.restrict2(&[0.0; 63]).is_err());
        assert!(t.prolong2(&[0.0; 17]).is_err());
        let mut ws = t.workspace();
        let fine = vec![0.0; 64];
        let mut wrong = vec![0.0; 15];
        assert!(t.restrict2_into(&fine, &mut wrong, &mut ws).is_err());
    }

    #[test]
    fn equal_size_transfer_is_the_exact_identity() {
        let t = GridTransfer::new(8, 8).unwrap();
        let x = noise(8, 23);
        assert_eq!(t.restrict2(&x).unwrap(), x);
        assert_eq!(t.prolong2(&x).unwrap(), x);
    }

    #[test]
    fn nyquist_checkerboard_round_trips_through_the_fold() {
        // The pure Nyquist mode (+1/−1 checkerboard) lives entirely in the
        // folded row/column/corner; R∘P must hand it back unscaled.
        let n = 4;
        let y: Vec<f64> = (0..n * n)
            .map(|i| if (i / n + i % n) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let t = GridTransfer::new(16, n).unwrap();
        let back = t.restrict2(&t.prolong2(&y).unwrap()).unwrap();
        for (a, b) in y.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
