//! Minimal complex-number type used throughout the workspace.
//!
//! The offline dependency allowlist has no `num-complex`, so the workspace
//! carries its own [`Complex64`]. Only the operations the imaging and linear
//! algebra code actually needs are provided.
//!
//! @bismo:bit-exact — every arithmetic op here sits inside the golden-
//! hashed butterfly DAG (DESIGN.md §10); no FMA contraction or per-CPU
//! branching may be introduced. Enforced by bismo-analyze.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use bismo_fft::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bismo_fft::Complex64;
    /// let z = Complex64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15 && z.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (cheaper than [`Complex64::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Reciprocal `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Multiply-add `self * b + c` — composed of **separate** IEEE mul and
    /// add ops, never hardware FMA, so it is safe inside the golden-hashed
    /// DAG. (The name mirrors `f64::mul_add`; the contraction does not.)
    #[inline]
    // BIT-EXACT-OK: separate mul and add by construction — see the doc above; this is the sanctioned non-contracting spelling.
    pub fn mul_add(self, b: Complex64, c: Complex64) -> Self {
        Complex64 {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w := z·w⁻¹ is the definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert!(close(z * z.recip(), Complex64::ONE));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex64::from_real(25.0)));
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.7;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-14);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < 1e-12);
        }
    }

    #[test]
    fn division_matches_multiplication_by_reciprocal() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!(close(a / b, a * b.recip()));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let c = Complex64::new(0.25, -0.75);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex64::new(1.0, 1.0); 8];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(8.0, 8.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
