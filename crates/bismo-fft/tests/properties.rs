//! Property tests for `bismo-fft` on random fields: forward→inverse
//! roundtrips for every normalization pairing, Parseval energy conservation,
//! and agreement of the radix-2 plans with the naive DFT.

use bismo_fft::{dft_naive, Complex64, Direction, Fft2Plan, FftPlan};
use bismo_testkit::{assert_close, assert_complex_close, random_complex_vec};

const CASES: u64 = 16;

#[test]
fn roundtrip_identity_1d() {
    for size in [2usize, 8, 64, 256] {
        let plan = FftPlan::new(size).unwrap();
        for case in 0..CASES {
            let data = random_complex_vec(size as u64 * 1000 + case, size);
            let mut buf = data.clone();
            plan.forward(&mut buf).unwrap();
            plan.inverse(&mut buf).unwrap();
            assert_complex_close(&data, &buf, 1e-10, "1-D forward→inverse");

            let mut ubuf = data.clone();
            plan.forward_unitary(&mut ubuf).unwrap();
            plan.inverse_unitary(&mut ubuf).unwrap();
            assert_complex_close(&data, &ubuf, 1e-10, "1-D unitary roundtrip");
        }
    }
}

#[test]
fn roundtrip_identity_2d() {
    for (rows, cols) in [(4usize, 4usize), (8, 8), (16, 32), (64, 64)] {
        let plan = Fft2Plan::new(rows, cols).unwrap();
        for case in 0..CASES / 4 {
            let data = random_complex_vec((rows * cols) as u64 * 7 + case, rows * cols);
            let mut buf = data.clone();
            plan.forward(&mut buf).unwrap();
            plan.inverse(&mut buf).unwrap();
            assert_complex_close(&data, &buf, 1e-10, "2-D forward→inverse");

            let mut ubuf = data.clone();
            plan.inverse_unitary(&mut ubuf).unwrap();
            plan.forward_unitary(&mut ubuf).unwrap();
            assert_complex_close(&data, &ubuf, 1e-10, "2-D unitary inverse→forward");
        }
    }
}

fn energy(zs: &[Complex64]) -> f64 {
    zs.iter().map(|z| z.norm_sqr()).sum()
}

#[test]
fn parseval_energy_conservation_1d() {
    // Unitary transforms preserve energy exactly; the unnormalized forward
    // scales it by N (Parseval: Σ|X[k]|² = N·Σ|x[n]|²).
    for size in [8usize, 128] {
        let plan = FftPlan::new(size).unwrap();
        for case in 0..CASES {
            let data = random_complex_vec(size as u64 * 31 + case, size);
            let e0 = energy(&data);

            let mut unitary = data.clone();
            plan.forward_unitary(&mut unitary).unwrap();
            assert_close(energy(&unitary), e0, 1e-10, 1e-12, "unitary Parseval");

            let mut raw = data.clone();
            plan.forward(&mut raw).unwrap();
            assert_close(
                energy(&raw),
                size as f64 * e0,
                1e-10,
                1e-12,
                "unnormalized Parseval",
            );
        }
    }
}

#[test]
fn parseval_energy_conservation_2d() {
    for (rows, cols) in [(8usize, 8usize), (32, 16)] {
        let plan = Fft2Plan::new(rows, cols).unwrap();
        let n = rows * cols;
        for case in 0..CASES / 2 {
            let data = random_complex_vec(n as u64 * 13 + case, n);
            let e0 = energy(&data);

            let mut unitary = data.clone();
            plan.forward_unitary(&mut unitary).unwrap();
            assert_close(energy(&unitary), e0, 1e-10, 1e-12, "2-D unitary Parseval");

            let mut raw = data.clone();
            plan.forward(&mut raw).unwrap();
            assert_close(
                energy(&raw),
                n as f64 * e0,
                1e-10,
                1e-12,
                "2-D unnormalized Parseval",
            );
        }
    }
}

#[test]
fn radix2_matches_naive_dft() {
    for size in [4usize, 16, 32] {
        let plan = FftPlan::new(size).unwrap();
        for case in 0..4 {
            let data = random_complex_vec(size as u64 * 97 + case, size);
            let naive = dft_naive(&data, Direction::Forward);
            let mut fast = data.clone();
            plan.forward(&mut fast).unwrap();
            assert_complex_close(&naive, &fast, 1e-9, "radix-2 vs naive DFT");
        }
    }
}
