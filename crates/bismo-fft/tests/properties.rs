//! Property tests for `bismo-fft` on random fields: forward→inverse
//! roundtrips for every normalization pairing, Parseval energy conservation,
//! agreement of the radix-2 plans with the naive DFT, transform-layer edge
//! cases (degenerate lengths, empty batches, overflowing shapes), and the
//! real-input path's equivalence contract against the complex path.

use bismo_fft::{dft_naive, Complex64, Direction, Fft2Plan, Fft2Workspace, FftPlan};
use bismo_testkit::{assert_close, assert_complex_close, random_complex_vec};

const CASES: u64 = 16;

#[test]
fn roundtrip_identity_1d() {
    for size in [2usize, 8, 64, 256] {
        let plan = FftPlan::new(size).unwrap();
        for case in 0..CASES {
            let data = random_complex_vec(size as u64 * 1000 + case, size);
            let mut buf = data.clone();
            plan.forward(&mut buf).unwrap();
            plan.inverse(&mut buf).unwrap();
            assert_complex_close(&data, &buf, 1e-10, "1-D forward→inverse");

            let mut ubuf = data.clone();
            plan.forward_unitary(&mut ubuf).unwrap();
            plan.inverse_unitary(&mut ubuf).unwrap();
            assert_complex_close(&data, &ubuf, 1e-10, "1-D unitary roundtrip");
        }
    }
}

#[test]
fn roundtrip_identity_2d() {
    for (rows, cols) in [(4usize, 4usize), (8, 8), (16, 32), (64, 64)] {
        let plan = Fft2Plan::new(rows, cols).unwrap();
        for case in 0..CASES / 4 {
            let data = random_complex_vec((rows * cols) as u64 * 7 + case, rows * cols);
            let mut buf = data.clone();
            plan.forward(&mut buf).unwrap();
            plan.inverse(&mut buf).unwrap();
            assert_complex_close(&data, &buf, 1e-10, "2-D forward→inverse");

            let mut ubuf = data.clone();
            plan.inverse_unitary(&mut ubuf).unwrap();
            plan.forward_unitary(&mut ubuf).unwrap();
            assert_complex_close(&data, &ubuf, 1e-10, "2-D unitary inverse→forward");
        }
    }
}

fn energy(zs: &[Complex64]) -> f64 {
    zs.iter().map(|z| z.norm_sqr()).sum()
}

#[test]
fn parseval_energy_conservation_1d() {
    // Unitary transforms preserve energy exactly; the unnormalized forward
    // scales it by N (Parseval: Σ|X[k]|² = N·Σ|x[n]|²).
    for size in [8usize, 128] {
        let plan = FftPlan::new(size).unwrap();
        for case in 0..CASES {
            let data = random_complex_vec(size as u64 * 31 + case, size);
            let e0 = energy(&data);

            let mut unitary = data.clone();
            plan.forward_unitary(&mut unitary).unwrap();
            assert_close(energy(&unitary), e0, 1e-10, 1e-12, "unitary Parseval");

            let mut raw = data.clone();
            plan.forward(&mut raw).unwrap();
            assert_close(
                energy(&raw),
                size as f64 * e0,
                1e-10,
                1e-12,
                "unnormalized Parseval",
            );
        }
    }
}

#[test]
fn parseval_energy_conservation_2d() {
    for (rows, cols) in [(8usize, 8usize), (32, 16)] {
        let plan = Fft2Plan::new(rows, cols).unwrap();
        let n = rows * cols;
        for case in 0..CASES / 2 {
            let data = random_complex_vec(n as u64 * 13 + case, n);
            let e0 = energy(&data);

            let mut unitary = data.clone();
            plan.forward_unitary(&mut unitary).unwrap();
            assert_close(energy(&unitary), e0, 1e-10, 1e-12, "2-D unitary Parseval");

            let mut raw = data.clone();
            plan.forward(&mut raw).unwrap();
            assert_close(
                energy(&raw),
                n as f64 * e0,
                1e-10,
                1e-12,
                "2-D unnormalized Parseval",
            );
        }
    }
}

#[test]
fn radix2_matches_naive_dft() {
    for size in [4usize, 16, 32] {
        let plan = FftPlan::new(size).unwrap();
        for case in 0..4 {
            let data = random_complex_vec(size as u64 * 97 + case, size);
            let naive = dft_naive(&data, Direction::Forward);
            let mut fast = data.clone();
            plan.forward(&mut fast).unwrap();
            assert_complex_close(&naive, &fast, 1e-9, "radix-2 vs naive DFT");
        }
    }
}

#[test]
fn degenerate_lengths_are_identity_or_single_butterfly() {
    // Length 1: every variant is the identity (DFT of one sample is itself,
    // and every normalization of it divides by 1).
    let plan = FftPlan::new(1).unwrap();
    assert_eq!(plan.len(), 1);
    assert!(!plan.is_empty());
    let x = Complex64::new(0.3, -1.7);
    for f in [
        FftPlan::forward,
        FftPlan::inverse,
        FftPlan::forward_unitary,
        FftPlan::inverse_unitary,
    ] {
        let mut buf = [x];
        f(&plan, &mut buf).unwrap();
        assert_eq!(buf[0], x, "length-1 transform must be the identity");
    }
    let mut stacked = [x, x.conj(), x.scale(2.0)];
    plan.transform_interleaved(&mut stacked, 3, Direction::Forward)
        .unwrap();
    assert_eq!(stacked, [x, x.conj(), x.scale(2.0)]);

    // Length 2: one butterfly; cross-check against the naive DFT through
    // every entry point.
    let plan = FftPlan::new(2).unwrap();
    let data = random_complex_vec(2024, 2);
    let naive = dft_naive(&data, Direction::Forward);
    let mut fwd = data.clone();
    plan.forward(&mut fwd).unwrap();
    assert_complex_close(&naive, &fwd, 1e-12, "length-2 forward vs naive");
    plan.inverse(&mut fwd).unwrap();
    assert_complex_close(&data, &fwd, 1e-12, "length-2 roundtrip");
    let mut uni = data.clone();
    plan.forward_unitary(&mut uni).unwrap();
    plan.inverse_unitary(&mut uni).unwrap();
    assert_complex_close(&data, &uni, 1e-12, "length-2 unitary roundtrip");
    let mut pair = [data[0], data[1], data[1], data[0]];
    plan.transform_interleaved(&mut pair, 2, Direction::Forward)
        .unwrap();
    assert_complex_close(&naive, &pair[..2], 1e-12, "length-2 interleaved[0]");
}

#[test]
fn interleaved_edge_counts_and_bad_lengths() {
    let plan = FftPlan::new(8).unwrap();

    // count == 0 over an empty buffer is a no-op, not an error.
    let mut empty: Vec<Complex64> = Vec::new();
    plan.transform_interleaved(&mut empty, 0, Direction::Forward)
        .unwrap();

    // count == 1 equals the plain transform bitwise.
    let data = random_complex_vec(7, 8);
    let mut single = data.clone();
    plan.transform_interleaved(&mut single, 1, Direction::Inverse)
        .unwrap();
    let mut plain = data.clone();
    plan.transform(&mut plain, Direction::Inverse).unwrap();
    assert_eq!(single, plain, "count == 1 must match the plain transform");

    // Wrong-length stacked buffers are rejected, including the off-by-one-
    // entry case and a nonempty buffer claiming zero entries.
    let mut short = vec![Complex64::ZERO; 2 * 8 - 1];
    assert!(plan
        .transform_interleaved(&mut short, 2, Direction::Forward)
        .is_err());
    let mut one = vec![Complex64::ZERO; 8];
    assert!(plan
        .transform_interleaved(&mut one, 0, Direction::Forward)
        .is_err());

    // An overflowing count must be reported as an error, not wrapped: with
    // count = usize::MAX/8 + 1 the old unchecked `n * count` wrapped to 0
    // and "validated" an empty buffer.
    let wrap_count = usize::MAX / 8 + 1;
    let err = plan
        .transform_interleaved(&mut empty, wrap_count, Direction::Forward)
        .unwrap_err();
    assert!(
        err.to_string().contains("overflow"),
        "expected an overflow error, got: {err}"
    );
}

#[test]
fn batched_2d_rejects_overflowing_batches() {
    let plan = Fft2Plan::new(8, 8).unwrap();
    let batch = usize::MAX / plan.len() + 1; // wraps B·N² to a small value
    let mut tiny = vec![Complex64::ZERO; batch.wrapping_mul(plan.len())];
    let err = plan.batched(batch).forward(&mut tiny).unwrap_err();
    assert!(
        err.to_string().contains("overflow"),
        "expected an overflow error, got: {err}"
    );
}

#[test]
fn plans_report_honest_emptiness() {
    // No constructible plan is empty, but the answer must be derived from
    // the actual lengths (the old stubs hard-coded `false`).
    let p1 = FftPlan::new(1).unwrap();
    assert!(!p1.is_empty());
    assert_eq!(p1.len(), 1);
    let p2 = Fft2Plan::new(4, 8).unwrap();
    assert!(!p2.is_empty());
    assert_eq!(p2.len(), 32);
    assert!(p2.batched(0).is_empty());
    assert!(!p2.batched(2).is_empty());
}

/// Promotes a real field and runs it through the complex forward path.
fn forward_promoted(plan: &Fft2Plan, input: &[f64]) -> Vec<Complex64> {
    let mut buf: Vec<Complex64> = input.iter().map(|&v| Complex64::from_real(v)).collect();
    plan.forward(&mut buf).unwrap();
    buf
}

fn random_real_vec(seed: u64, len: usize) -> Vec<f64> {
    random_complex_vec(seed, len).iter().map(|z| z.re).collect()
}

#[test]
fn real_forward_matches_complex_path_to_ulp() {
    // The documented equivalence contract (DESIGN.md §10): the real-input
    // factorization reorders flops, so bins agree to a small relative
    // tolerance — not bitwise. 1e-12 relative against the spectrum's peak
    // magnitude is orders of magnitude tighter than anything the imaging
    // stack resolves, and orders looser than the reordering error.
    for (rows, cols) in [
        (1usize, 8usize),
        (2, 2),
        (4, 1),
        (8, 8),
        (16, 4),
        (4, 16),
        (64, 64),
    ] {
        let plan = Fft2Plan::new(rows, cols).unwrap();
        let mut ws = Fft2Workspace::for_plan(&plan);
        for case in 0..CASES / 4 {
            let input = random_real_vec((rows * cols) as u64 * 131 + case, rows * cols);
            let expected = forward_promoted(&plan, &input);
            let scale = expected.iter().map(|z| z.abs()).fold(0.0f64, f64::max);

            let got = plan.forward_real(&input).unwrap();
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert!(
                    (*g - *e).abs() <= 1e-12 * scale,
                    "{rows}x{cols} bin {i}: real {g:?} vs complex {e:?}"
                );
            }

            // The workspace variant is identical to the allocating one.
            let mut with_ws = vec![Complex64::ZERO; rows * cols];
            plan.forward_real_with(&input, &mut with_ws, &mut ws)
                .unwrap();
            assert_eq!(with_ws, got, "workspace real path diverged");
        }
    }
}

#[test]
fn real_forward_parseval_and_naive_cross_check() {
    // Parseval for the unnormalized transform: Σ|X|² = N·Σ|x|².
    let (rows, cols) = (16usize, 8usize);
    let plan = Fft2Plan::new(rows, cols).unwrap();
    let n = rows * cols;
    for case in 0..CASES / 2 {
        let input = random_real_vec(n as u64 * 37 + case, n);
        let e0: f64 = input.iter().map(|v| v * v).sum();
        let spec = plan.forward_real(&input).unwrap();
        assert_close(
            energy(&spec),
            n as f64 * e0,
            1e-10,
            1e-12,
            "real-input Parseval",
        );
    }

    // Naive separable DFT cross-check on a small grid.
    let (rows, cols) = (4usize, 8usize);
    let plan = Fft2Plan::new(rows, cols).unwrap();
    let input = random_real_vec(99, rows * cols);
    let got = plan.forward_real(&input).unwrap();
    let promoted: Vec<Complex64> = input.iter().map(|&v| Complex64::from_real(v)).collect();
    let mut rows_done = vec![Complex64::ZERO; rows * cols];
    for r in 0..rows {
        let f = dft_naive(&promoted[r * cols..(r + 1) * cols], Direction::Forward);
        rows_done[r * cols..(r + 1) * cols].copy_from_slice(&f);
    }
    let mut expected = vec![Complex64::ZERO; rows * cols];
    for c in 0..cols {
        let col: Vec<_> = (0..rows).map(|r| rows_done[r * cols + c]).collect();
        let f = dft_naive(&col, Direction::Forward);
        for r in 0..rows {
            expected[r * cols + c] = f[r];
        }
    }
    assert_complex_close(&expected, &got, 1e-9, "real-input vs naive 2-D DFT");
}

#[test]
fn real_forward_batch_matches_per_entry() {
    let plan = Fft2Plan::new(8, 16).unwrap();
    let n = plan.len();
    for batch in [0usize, 1, 3] {
        let input: Vec<f64> = (0..batch)
            .flat_map(|b| random_real_vec(500 + b as u64, n))
            .collect();
        let mut out = vec![Complex64::ZERO; batch * n];
        let mut ws = Fft2Workspace::new();
        plan.batched(batch)
            .forward_real_with(&input, &mut out, &mut ws)
            .unwrap();
        for b in 0..batch {
            let single = plan.forward_real(&input[b * n..(b + 1) * n]).unwrap();
            assert_eq!(out[b * n..(b + 1) * n], single[..], "entry {b}");
        }
    }
    // Mismatched real/complex buffer lengths are rejected.
    let mut out = vec![Complex64::ZERO; 2 * n];
    let mut ws = Fft2Workspace::new();
    assert!(plan
        .batched(2)
        .forward_real_with(&vec![0.0; 2 * n - 1], &mut out, &mut ws)
        .is_err());
}

#[test]
fn threaded_batch_is_bitwise_identical_for_any_thread_count() {
    // The threaded batch path's contract: contiguous deterministic entry
    // chunks, each running the exact single-thread kernel — so the result
    // must be bit-identical to `forward_with`/`inverse_with` no matter how
    // many workers the batch is split across (including more workers than
    // entries).
    let plan = Fft2Plan::new(16, 8).unwrap();
    let n = plan.len();
    let batch = 5;
    let stacked: Vec<Complex64> = (0..batch)
        .flat_map(|b| random_complex_vec(900 + b as u64, n))
        .collect();
    let mut reference = stacked.clone();
    let mut ws = Fft2Workspace::new();
    plan.batched(batch)
        .forward_with(&mut reference, &mut ws)
        .unwrap();
    for threads in [1usize, 2, 3, 8] {
        let mut buf = stacked.clone();
        plan.batched(batch)
            .forward_threaded(&mut buf, threads)
            .unwrap();
        assert_eq!(buf, reference, "forward, {threads} threads");
    }
    plan.batched(batch)
        .inverse_with(&mut reference, &mut ws)
        .unwrap();
    for threads in [2usize, 5] {
        let mut buf = stacked.clone();
        plan.batched(batch)
            .forward_threaded(&mut buf, threads)
            .unwrap();
        plan.batched(batch)
            .inverse_threaded(&mut buf, threads)
            .unwrap();
        // forward→inverse roundtrip at full precision of the single path.
        let mut roundtrip = stacked.clone();
        let mut ws2 = Fft2Workspace::new();
        plan.batched(batch)
            .forward_with(&mut roundtrip, &mut ws2)
            .unwrap();
        plan.batched(batch)
            .inverse_with(&mut roundtrip, &mut ws2)
            .unwrap();
        assert_eq!(buf, roundtrip, "roundtrip, {threads} threads");
    }
}
