//! Dense Hermitian matrices and a cyclic Jacobi eigensolver.
//!
//! The transmission cross-coefficient (TCC) matrix of the Hopkins imaging
//! model (paper Eq. 3) is Hermitian positive semi-definite; SOCS (Eq. 4)
//! truncates its eigendecomposition to the top `Q` pairs. This module gives
//! the workspace an exact dense solver; the randomized solver in
//! [`crate::subspace`] handles large TCCs.

use bismo_fft::Complex64;

/// Error type for linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinalgError {
    msg: String,
}

impl LinalgError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        LinalgError { msg: msg.into() }
    }
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for LinalgError {}

/// A dense Hermitian matrix stored row-major.
///
/// Only the values actually written are trusted; [`HermitianMatrix::set`]
/// maintains the Hermitian symmetry by writing both `(i,j)` and `(j,i)`.
///
/// # Examples
///
/// ```
/// use bismo_fft::Complex64;
/// use bismo_linalg::HermitianMatrix;
///
/// let mut a = HermitianMatrix::zeros(2);
/// a.set(0, 0, Complex64::from_real(2.0));
/// a.set(0, 1, Complex64::new(0.0, 1.0));
/// a.set(1, 1, Complex64::from_real(3.0));
/// assert_eq!(a.get(1, 0), Complex64::new(0.0, -1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HermitianMatrix {
    n: usize,
    data: Vec<Complex64>,
}

impl HermitianMatrix {
    /// Creates the `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        HermitianMatrix {
            n,
            data: vec![Complex64::ZERO; n * n],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)` and its Hermitian mirror `(j, i)`.
    ///
    /// Diagonal writes keep only the real part (a Hermitian diagonal is real).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        if i == j {
            self.data[i * self.n + j] = Complex64::from_real(v.re);
        } else {
            self.data[i * self.n + j] = v;
            self.data[j * self.n + i] = v.conj();
        }
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differs from the dimension.
    pub fn matvec(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate().take(self.n) {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            let mut acc = Complex64::ZERO;
            for (a, &xj) in row.iter().zip(x) {
                acc += *a * xj;
            }
            *yi = acc;
        }
    }

    /// Frobenius norm of the strictly off-diagonal part; the Jacobi
    /// convergence measure.
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j).norm_sqr();
                }
            }
        }
        s.sqrt()
    }

    /// Largest absolute entry; used for convergence thresholds.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }
}

/// Result of a Hermitian eigendecomposition: `A = V diag(λ) V^H`.
///
/// Eigenvalues are sorted in descending order; `vectors[k]` is the
/// eigenvector paired with `values[k]`.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one `Vec` per eigenvalue.
    pub vectors: Vec<Vec<Complex64>>,
}

/// Full eigendecomposition by cyclic complex Jacobi rotations.
///
/// Runs sweeps of `(p, q)` rotations until the off-diagonal norm falls below
/// `tol · max|A|` or `max_sweeps` is reached. Cubic per sweep; intended for
/// dimensions up to a few hundred (the Ritz blocks of the randomized solver
/// and the band-limited TCCs of small test grids).
///
/// # Errors
///
/// Returns an error if the iteration fails to converge within `max_sweeps`.
///
/// # Examples
///
/// ```
/// use bismo_fft::Complex64;
/// use bismo_linalg::{eigh_jacobi, HermitianMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = HermitianMatrix::zeros(2);
/// a.set(0, 0, Complex64::from_real(1.0));
/// a.set(1, 1, Complex64::from_real(1.0));
/// a.set(0, 1, Complex64::new(0.0, -0.5));
/// let eig = eigh_jacobi(&a, 1e-12, 50)?;
/// assert!((eig.values[0] - 1.5).abs() < 1e-10);
/// assert!((eig.values[1] - 0.5).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigh_jacobi(a: &HermitianMatrix, tol: f64, max_sweeps: usize) -> Result<Eigh, LinalgError> {
    let n = a.dim();
    if n == 0 {
        return Ok(Eigh {
            values: vec![],
            vectors: vec![],
        });
    }
    let mut m = a.clone();
    // Eigenvector accumulator, starts as identity. v[i][k] = V_{ik} where
    // columns are eigenvectors.
    let mut v = vec![vec![Complex64::ZERO; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = Complex64::ONE;
    }
    let scale = m.max_abs().max(f64::MIN_POSITIVE);
    let threshold = tol * scale;

    let mut converged = false;
    for _sweep in 0..max_sweeps {
        if m.off_diagonal_norm() <= threshold * (n as f64) {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= threshold * 1e-3 {
                    continue;
                }
                let app = m.get(p, p).re;
                let aqq = m.get(q, q).re;
                // Phase removal: e^{iθ} such that conj(phase)·apq is real ≥ 0.
                let phase = if apq.abs() > 0.0 {
                    apq.scale(1.0 / apq.abs())
                } else {
                    Complex64::ONE
                };
                let g = apq.abs();
                // Real Jacobi rotation zeroing the off-diagonal of
                // [[app, g], [g, aqq]].
                let tau = (aqq - app) / (2.0 * g);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Combined rotation R = D·G with D = diag(1, conj(phase))
                // (which makes the pivot block real-symmetric) and the real
                // Jacobi rotation G = [[c, s], [-s, c]]:
                //   R_pp = c,               R_pq = s,
                //   R_qp = -conj(phase)·s,  R_qq = conj(phase)·c.
                let rpp = Complex64::from_real(c);
                let rpq = Complex64::from_real(s);
                let rqp = -phase.conj().scale(s);
                let rqq = phase.conj().scale(c);

                // A ← R^H A R: update columns then rows.
                for i in 0..n {
                    let aip = m.get(i, p);
                    let aiq = m.get(i, q);
                    let new_p = aip * rpp + aiq * rqp;
                    let new_q = aip * rpq + aiq * rqq;
                    m.data[i * n + p] = new_p;
                    m.data[i * n + q] = new_q;
                }
                for j in 0..n {
                    let apj = m.get(p, j);
                    let aqj = m.get(q, j);
                    let new_p = rpp.conj() * apj + rqp.conj() * aqj;
                    let new_q = rpq.conj() * apj + rqq.conj() * aqj;
                    m.data[p * n + j] = new_p;
                    m.data[q * n + j] = new_q;
                }
                // Clean tiny numerical asymmetry on the pivot.
                let dpp = m.get(p, p).re;
                let dqq = m.get(q, q).re;
                m.data[p * n + p] = Complex64::from_real(dpp);
                m.data[q * n + q] = Complex64::from_real(dqq);
                m.data[p * n + q] = Complex64::ZERO;
                m.data[q * n + p] = Complex64::ZERO;

                // V ← V R (accumulate on rows, columns of V are vectors).
                for row in &mut *v {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = vp * rpp + vq * rqp;
                    row[q] = vp * rpq + vq * rqq;
                }
            }
        }
    }
    if !converged && m.off_diagonal_norm() > threshold * (n as f64) {
        return Err(LinalgError::new(format!(
            "jacobi failed to converge in {max_sweeps} sweeps (off-diag {:.3e})",
            m.off_diagonal_norm()
        )));
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|k| (m.get(k, k).re, k)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values = pairs.iter().map(|&(val, _)| val).collect();
    let vectors = pairs
        .iter()
        .map(|&(_, k)| (0..n).map(|i| v[i][k]).collect())
        .collect();
    Ok(Eigh { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_hermitian(n: usize, seed: u64) -> HermitianMatrix {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = HermitianMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                if i == j {
                    a.set(i, j, Complex64::from_real(next()));
                } else {
                    a.set(i, j, Complex64::new(next(), next()));
                }
            }
        }
        a
    }

    fn reconstruct(eig: &Eigh, n: usize) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; n * n];
        for (lam, vk) in eig.values.iter().zip(&eig.vectors) {
            for i in 0..n {
                for j in 0..n {
                    out[i * n + j] += vk[i] * vk[j].conj() * *lam;
                }
            }
        }
        out
    }

    #[test]
    fn set_maintains_hermitian_symmetry() {
        let mut a = HermitianMatrix::zeros(3);
        a.set(0, 2, Complex64::new(1.0, 2.0));
        assert_eq!(a.get(2, 0), Complex64::new(1.0, -2.0));
        a.set(1, 1, Complex64::new(5.0, 3.0));
        assert_eq!(a.get(1, 1), Complex64::from_real(5.0));
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = HermitianMatrix::zeros(3);
        a.set(0, 0, Complex64::from_real(3.0));
        a.set(1, 1, Complex64::from_real(-1.0));
        a.set(2, 2, Complex64::from_real(2.0));
        let eig = eigh_jacobi(&a, 1e-14, 10).unwrap();
        assert_eq!(eig.values, vec![3.0, 2.0, -1.0]);
    }

    #[test]
    fn decomposition_reconstructs_matrix() {
        for n in [2usize, 4, 8, 16] {
            let a = rand_hermitian(n, 33 + n as u64);
            let eig = eigh_jacobi(&a, 1e-13, 100).unwrap();
            let rec = reconstruct(&eig, n);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec[i * n + j] - a.get(i, j)).abs() < 1e-8,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 12;
        let a = rand_hermitian(n, 77);
        let eig = eigh_jacobi(&a, 1e-13, 100).unwrap();
        for p in 0..n {
            for q in 0..n {
                let dot: Complex64 = eig.vectors[p]
                    .iter()
                    .zip(&eig.vectors[q])
                    .map(|(&u, &w)| u.conj() * w)
                    .sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot - Complex64::from_real(expect)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigen_relation_holds() {
        let n = 10;
        let a = rand_hermitian(n, 5);
        let eig = eigh_jacobi(&a, 1e-13, 100).unwrap();
        let mut y = vec![Complex64::ZERO; n];
        for (lam, vk) in eig.values.iter().zip(&eig.vectors) {
            a.matvec(vk, &mut y);
            for i in 0..n {
                assert!((y[i] - vk[i].scale(*lam)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let n = 9;
        let a = rand_hermitian(n, 12);
        let tr: f64 = (0..n).map(|i| a.get(i, i).re).sum();
        let eig = eigh_jacobi(&a, 1e-13, 100).unwrap();
        let sum: f64 = eig.values.iter().sum();
        assert!((tr - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = HermitianMatrix::zeros(0);
        let eig = eigh_jacobi(&a, 1e-12, 5).unwrap();
        assert!(eig.values.is_empty());
    }
}
