//! Randomized subspace iteration for the top-Q eigenpairs of a Hermitian
//! positive semi-definite operator.
//!
//! The SOCS decomposition (paper Eq. 4) only needs the `Q = 24` largest
//! eigenpairs of the TCC; a full Jacobi decomposition would be cubic in the
//! number of band-limited frequencies. Subspace iteration needs only
//! matrix–vector products and a small dense Rayleigh–Ritz eigensolve.

use bismo_fft::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hermitian::{eigh_jacobi, Eigh, HermitianMatrix, LinalgError};

/// A Hermitian linear operator given by its matrix–vector product.
///
/// Implementors must guarantee `⟨x, A y⟩ = ⟨A x, y⟩` (Hermitian symmetry);
/// the eigensolvers in this crate silently assume it.
pub trait HermitianOp {
    /// Operator dimension.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `y.len()` differs from
    /// [`HermitianOp::dim`].
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]);
}

impl HermitianOp for HermitianMatrix {
    fn dim(&self) -> usize {
        HermitianMatrix::dim(self)
    }

    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec(x, y);
    }
}

fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    a.iter().zip(b).map(|(&u, &v)| u.conj() * v).sum()
}

fn norm(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Modified Gram–Schmidt orthonormalization of the columns in `basis`.
/// Columns that collapse to (numerical) zero are re-randomized so the basis
/// keeps full rank.
fn orthonormalize(basis: &mut [Vec<Complex64>], rng: &mut StdRng) {
    let k = basis.len();
    for i in 0..k {
        for j in 0..i {
            // basis[j] is already normalized.
            let (head, tail) = basis.split_at_mut(i);
            let proj = dot(&head[j], &tail[0]);
            for (t, h) in tail[0].iter_mut().zip(&head[j]) {
                *t -= *h * proj;
            }
        }
        let n = norm(&basis[i]);
        if n < 1e-12 {
            for z in &mut basis[i] {
                *z = Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
            }
            // One re-orthogonalization pass for the fresh vector.
            for j in 0..i {
                let (head, tail) = basis.split_at_mut(i);
                let proj = dot(&head[j], &tail[0]);
                for (t, h) in tail[0].iter_mut().zip(&head[j]) {
                    *t -= *h * proj;
                }
            }
            let n2 = norm(&basis[i]).max(f64::MIN_POSITIVE);
            for z in &mut basis[i] {
                *z = z.scale(1.0 / n2);
            }
        } else {
            for z in &mut basis[i] {
                *z = z.scale(1.0 / n);
            }
        }
    }
}

/// Computes the `q` algebraically largest eigenpairs of a Hermitian PSD
/// operator by randomized subspace iteration with Rayleigh–Ritz extraction.
///
/// `oversample` extra directions (a handful) and `iters` power iterations
/// control accuracy; the TCC spectra in this workspace decay fast (that is
/// the entire premise of SOCS), so `oversample = 8`, `iters = 30` is ample.
///
/// # Errors
///
/// Returns an error if `q` exceeds the operator dimension or the small dense
/// Ritz eigensolve fails.
///
/// # Examples
///
/// ```
/// use bismo_fft::Complex64;
/// use bismo_linalg::{top_eigenpairs, HermitianMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = HermitianMatrix::zeros(4);
/// for (i, lam) in [4.0, 3.0, 2.0, 1.0].iter().enumerate() {
///     a.set(i, i, Complex64::from_real(*lam));
/// }
/// let eig = top_eigenpairs(&a, 2, 8, 30, 42)?;
/// assert!((eig.values[0] - 4.0).abs() < 1e-9);
/// assert!((eig.values[1] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn top_eigenpairs(
    op: &dyn HermitianOp,
    q: usize,
    oversample: usize,
    iters: usize,
    seed: u64,
) -> Result<Eigh, LinalgError> {
    let n = op.dim();
    if q > n {
        return Err(LinalgError::new(format!(
            "requested {q} eigenpairs from a dimension-{n} operator"
        )));
    }
    if q == 0 || n == 0 {
        return Ok(Eigh {
            values: vec![],
            vectors: vec![],
        });
    }
    let k = (q + oversample).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut basis: Vec<Vec<Complex64>> = (0..k)
        .map(|_| {
            (0..n)
                .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect()
        })
        .collect();
    orthonormalize(&mut basis, &mut rng);

    let mut scratch = vec![Complex64::ZERO; n];
    for _ in 0..iters {
        for col in &mut *basis {
            op.apply(col, &mut scratch);
            col.copy_from_slice(&scratch);
        }
        orthonormalize(&mut basis, &mut rng);
    }

    // Rayleigh–Ritz: B = X^H A X, small k×k Hermitian.
    let mut applied: Vec<Vec<Complex64>> = Vec::with_capacity(k);
    for col in &basis {
        let mut y = vec![Complex64::ZERO; n];
        op.apply(col, &mut y);
        applied.push(y);
    }
    let mut b = HermitianMatrix::zeros(k);
    for (i, basis_i) in basis.iter().enumerate() {
        for (j, applied_j) in applied.iter().enumerate().skip(i) {
            let v = dot(basis_i, applied_j);
            b.set(i, j, v);
        }
    }
    let small = eigh_jacobi(&b, 1e-13, 200)?;

    // Ritz vectors: u_m = Σ_i X_i · W_{i,m}.
    let mut values = Vec::with_capacity(q);
    let mut vectors = Vec::with_capacity(q);
    for m in 0..q {
        values.push(small.values[m]);
        let w = &small.vectors[m];
        let mut u = vec![Complex64::ZERO; n];
        for (i, col) in basis.iter().enumerate() {
            let wi = w[i];
            for (uj, &cj) in u.iter_mut().zip(col) {
                *uj += cj * wi;
            }
        }
        vectors.push(u);
    }
    Ok(Eigh { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psd_matrix(n: usize, seed: u64) -> HermitianMatrix {
        // A = B^H B is PSD.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let b: Vec<Complex64> = (0..n * n).map(|_| Complex64::new(next(), next())).collect();
        let mut a = HermitianMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let mut acc = Complex64::ZERO;
                for k in 0..n {
                    acc += b[k * n + i].conj() * b[k * n + j];
                }
                a.set(i, j, acc);
            }
        }
        a
    }

    #[test]
    fn matches_dense_jacobi_on_psd() {
        let n = 24;
        let a = psd_matrix(n, 9);
        let full = eigh_jacobi(&a, 1e-13, 200).unwrap();
        let q = 5;
        let approx = top_eigenpairs(&a, q, 8, 60, 1).unwrap();
        for m in 0..q {
            let rel = (approx.values[m] - full.values[m]).abs() / full.values[0];
            assert!(
                rel < 1e-6,
                "pair {m}: {} vs {}",
                approx.values[m],
                full.values[m]
            );
        }
    }

    #[test]
    fn ritz_vectors_satisfy_eigen_relation() {
        let n = 20;
        let a = psd_matrix(n, 3);
        let eig = top_eigenpairs(&a, 4, 8, 60, 7).unwrap();
        let mut y = vec![Complex64::ZERO; n];
        for (lam, v) in eig.values.iter().zip(&eig.vectors) {
            a.matvec(v, &mut y);
            let resid: f64 = y
                .iter()
                .zip(v)
                .map(|(&ay, &vi)| (ay - vi.scale(*lam)).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(resid < 1e-5 * lam.max(1.0), "residual {resid} for λ={lam}");
        }
    }

    #[test]
    fn vectors_are_orthonormal() {
        let n = 16;
        let a = psd_matrix(n, 5);
        let eig = top_eigenpairs(&a, 6, 6, 50, 11).unwrap();
        for p in 0..6 {
            for r in 0..6 {
                let d = dot(&eig.vectors[p], &eig.vectors[r]);
                let expect = if p == r { 1.0 } else { 0.0 };
                assert!((d - Complex64::from_real(expect)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn q_zero_returns_empty() {
        let a = psd_matrix(4, 2);
        let eig = top_eigenpairs(&a, 0, 4, 5, 0).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn q_larger_than_dim_is_error() {
        let a = psd_matrix(4, 2);
        assert!(top_eigenpairs(&a, 5, 4, 5, 0).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = psd_matrix(12, 8);
        let e1 = top_eigenpairs(&a, 3, 6, 40, 123).unwrap();
        let e2 = top_eigenpairs(&a, 3, 6, 40, 123).unwrap();
        assert_eq!(e1.values, e2.values);
    }
}
