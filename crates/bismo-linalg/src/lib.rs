//! # bismo-linalg
//!
//! Dense Hermitian eigensolvers and matrix-free conjugate gradients for the
//! BiSMO workspace (reproduction of *"Efficient Bilevel Source Mask
//! Optimization"*, DAC 2024).
//!
//! Two consumers drive the design:
//!
//! * the Hopkins/SOCS imaging model needs the top-`Q` eigenpairs of the
//!   Hermitian TCC matrix ([`eigh_jacobi`] exactly, [`top_eigenpairs`] at
//!   scale), and
//! * BiSMO-CG needs a fixed-budget, matrix-free CG solve against the
//!   lower-level Hessian ([`conjugate_gradient`]).
//!
//! ## Examples
//!
//! ```
//! use bismo_fft::Complex64;
//! use bismo_linalg::{eigh_jacobi, HermitianMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = HermitianMatrix::zeros(2);
//! a.set(0, 0, Complex64::from_real(2.0));
//! a.set(1, 1, Complex64::from_real(2.0));
//! a.set(0, 1, Complex64::from_real(1.0));
//! let eig = eigh_jacobi(&a, 1e-12, 50)?;
//! assert!((eig.values[0] - 3.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod hermitian;
mod subspace;

pub use cg::{axpy, conjugate_gradient, dot, norm, CgResult, DenseSymOp, RealOp};
pub use hermitian::{eigh_jacobi, Eigh, HermitianMatrix, LinalgError};
pub use subspace::{top_eigenpairs, HermitianOp};
