//! Matrix-free conjugate gradients on real vector spaces.
//!
//! BiSMO-CG (paper Eq. 17–18 and Algorithm 2 line 10) solves
//! `[∂²L_so/∂θ_J∂θ_J] w = ∂L_mo/∂θ_J` with `K` CG steps, using only
//! Hessian-vector products. The solver here is deliberately minimal:
//! fixed-iteration-budget CG with breakdown guards, no preconditioner —
//! matching what the paper (and the bilevel literature it cites) runs.

/// A real linear operator given by its matrix–vector product.
///
/// BiSMO's SO Hessian is only available through Hessian-vector products, so
/// the CG solver is written against this trait rather than a matrix type.
pub trait RealOp {
    /// Operator dimension.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if slice lengths differ from
    /// [`RealOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Dense symmetric operator for tests and small problems.
#[derive(Debug, Clone)]
pub struct DenseSymOp {
    n: usize,
    data: Vec<f64>,
}

impl DenseSymOp {
    /// Builds from a row-major `n × n` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn new(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "dense operator buffer mismatch");
        DenseSymOp { n, data }
    }
}

impl RealOp for DenseSymOp {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate().take(self.n) {
            *yi = self.data[i * self.n..(i + 1) * self.n]
                .iter()
                .zip(x)
                .map(|(a, b)| a * b)
                .sum();
        }
    }
}

/// Outcome of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual 2-norm `‖b − A x‖`.
    pub residual: f64,
    /// Whether the residual tolerance was met (as opposed to exhausting the
    /// iteration budget or hitting a curvature breakdown).
    pub converged: bool,
}

/// Dot product helper exposed for downstream gradient code.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x` helper exposed for downstream gradient code.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm helper.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `A x = b` for symmetric positive definite `A` with at most
/// `max_iters` CG steps, starting from `x0` (pass zeros when no warm start is
/// available — Algorithm 2 warm-starts from the previous outer iteration's
/// solution).
///
/// Stops early when `‖r‖ ≤ tol · ‖b‖`. On negative-curvature breakdown (the
/// SO Hessian is only guaranteed PSD near the lower-level optimum) the solve
/// returns the best iterate so far with `converged = false` rather than
/// diverging.
///
/// # Panics
///
/// Panics if `b.len()` or `x0.len()` differs from `op.dim()`.
///
/// # Examples
///
/// ```
/// use bismo_linalg::{conjugate_gradient, DenseSymOp};
///
/// let a = DenseSymOp::new(2, vec![4.0, 1.0, 1.0, 3.0]);
/// let b = [1.0, 2.0];
/// let out = conjugate_gradient(&a, &b, &[0.0, 0.0], 10, 1e-12);
/// assert!(out.converged);
/// assert!((out.x[0] - 1.0 / 11.0).abs() < 1e-10);
/// assert!((out.x[1] - 7.0 / 11.0).abs() < 1e-10);
/// ```
pub fn conjugate_gradient(
    op: &dyn RealOp,
    b: &[f64],
    x0: &[f64],
    max_iters: usize,
    tol: f64,
) -> CgResult {
    let n = op.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x0.len(), n, "initial guess length mismatch");

    let mut x = x0.to_vec();
    let mut ax = vec![0.0; n];
    op.apply(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    let mut iterations = 0;

    if rs.sqrt() <= tol * b_norm {
        return CgResult {
            x,
            iterations,
            residual: rs.sqrt(),
            converged: true,
        };
    }

    let mut ap = vec![0.0; n];
    for _ in 0..max_iters {
        op.apply(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 || !p_ap.is_finite() {
            // Negative curvature or numerical breakdown: stop with the best
            // iterate so far.
            return CgResult {
                x,
                iterations,
                residual: norm(&r),
                converged: false,
            };
        }
        let alpha = rs / p_ap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        iterations += 1;
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() <= tol * b_norm {
            return CgResult {
                x,
                iterations,
                residual: rs_new.sqrt(),
                converged: true,
            };
        }
        let beta = rs_new / rs;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs = rs_new;
    }
    CgResult {
        x,
        iterations,
        residual: rs.sqrt(),
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix(n: usize, seed: u64) -> DenseSymOp {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let b: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += b[k * n + i] * b[k * n + j];
                }
                a[i * n + j] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        DenseSymOp::new(n, a)
    }

    #[test]
    fn solves_identity() {
        let n = 5;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let op = DenseSymOp::new(n, eye);
        let b = [1.0, -2.0, 3.0, 0.5, 0.0];
        let out = conjugate_gradient(&op, &b, &vec![0.0; n], 10, 1e-14);
        assert!(out.converged);
        for (xi, bi) in out.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_within_dimension_iterations() {
        let n = 30;
        let op = spd_matrix(n, 17);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let out = conjugate_gradient(&op, &b, &vec![0.0; n], n + 5, 1e-10);
        assert!(out.converged, "residual = {}", out.residual);
        let mut ax = vec![0.0; n];
        op.apply(&out.x, &mut ax);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn warm_start_from_solution_stops_immediately() {
        let n = 8;
        let op = spd_matrix(n, 4);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let out = conjugate_gradient(&op, &b, &x_true, 10, 1e-10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let n = 40;
        let op = spd_matrix(n, 99);
        let b = vec![1.0; n];
        let out = conjugate_gradient(&op, &b, &vec![0.0; n], 3, 0.0);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn negative_curvature_breaks_gracefully() {
        // A = -I is symmetric negative definite.
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = -1.0;
        }
        let op = DenseSymOp::new(n, a);
        let b = vec![1.0; n];
        let out = conjugate_gradient(&op, &b, &vec![0.0; n], 10, 1e-10);
        assert!(!out.converged);
        assert!(out.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn residual_decreases_monotonically_in_budget() {
        let n = 25;
        let op = spd_matrix(n, 7);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut last = f64::INFINITY;
        for budget in [1usize, 2, 4, 8, 16] {
            let out = conjugate_gradient(&op, &b, &vec![0.0; n], budget, 0.0);
            assert!(out.residual <= last + 1e-12, "budget {budget}");
            last = out.residual;
        }
    }
}
