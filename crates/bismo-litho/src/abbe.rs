//! Abbe source-point-integration imaging (paper Eq. 2) with hand-derived
//! adjoint gradients and source-point parallelism.
//!
//! For every effective source point σ at illumination frequency
//! `(f_σ, g_σ)` the engine forms `A_σ = F⁻¹[H(f+f_σ, g+g_σ) ⊙ F(M)]` and
//! accumulates `I = (1/Σj) Σ_σ j_σ |A_σ|²`. The `1/Σj` dose normalization is
//! an implementation choice (see DESIGN.md §4): it pins the clear-field
//! intensity at 1 regardless of how much source power the optimizer turns
//! on, which is what makes a fixed resist threshold `I_tr` meaningful.
//!
//! # Gradients
//!
//! With upstream `G_I = ∂L/∂I` (real) and `w_σ = j_σ / Σj`:
//!
//! * mask:   `∂L/∂M = Σ_σ 2 w_σ · Re{ F⁻¹[ H_σ ⊙ F(G_I ⊙ A_σ) ] }`
//!   (the FFT normalization cancels between `F^H` and `F^{-H}`, so the
//!   adjoint uses the same transforms as the forward pass);
//! * source: `∂L/∂j_τ = ( ⟨G_I, |A_τ|²⟩ − ⟨G_I, I⟩ ) / Σj` for **every**
//!   grid point τ — including currently dark ones, which is exactly what
//!   lets source optimization light up new pole positions.
//!
//! # Hot-path memory discipline
//!
//! The engine is built to be allocation-free per imaging call after warm-up
//! (DESIGN.md §6):
//!
//! * every shifted pupil `H_σ` is precomputed once per `(Pupil, source
//!   grid)` into a shared [`ShiftedPupilTable`] and reused across all
//!   optimizer iterations and all passes (forward, mask-adjoint,
//!   source-gradient);
//! * all scratch fields live in pooled [`ImagingWorkspace`]s checked out per
//!   call / per worker thread and returned afterwards, so steady-state calls
//!   reuse warm buffers;
//! * the `*_into` method variants write into caller-owned outputs, making
//!   the single-threaded pipeline perform **zero** heap allocations per call
//!   (verified by `tests/zero_alloc.rs` with a counting allocator). The
//!   multithreaded paths still pay per-call thread spawns, but no
//!   field-sized buffers.
//!
//! @bismo:bit-exact — the fused batch path is contractually bit-identical
//! per entry to the single-mask path (DESIGN.md §9), so no FMA, fold
//! reordering, or CPU dispatch may fork either DAG. Enforced by
//! bismo-analyze's bit-exact-purity rule.

use std::sync::{Arc, Mutex};

use bismo_fft::{BatchFft2, Complex64, Fft2Workspace};
use bismo_optics::{ImagingCore, OpticalConfig, RealField, ShiftedPupilTable, Source};

use crate::batch::{check_batch_shape, IntensityBatch, MaskBatch};
use crate::error::LithoError;

/// Minimum total source power below which no image is formed.
const DARK_EPS: f64 = 1e-12;

/// Splits `items` into at most `threads` contiguous chunks and runs `f` on
/// each in a scoped worker thread, returning the per-chunk results in order.
/// Empty input yields an empty result (no worker is spawned — `chunks(0)`
/// would panic).
fn fan_out<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&[T]) -> Result<R, LithoError> + Sync,
) -> Result<Vec<R>, LithoError> {
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let nchunks = threads.min(items.len()).max(1);
    let chunk_len = items.len().div_ceil(nchunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            // Join only fails if the worker itself panicked; re-raising the
            // root panic is propagation, not a new failure mode.
            // PANIC-OK: propagates a worker panic (scoped threads re-raise it regardless).
            .map(|h| h.join().expect("imaging worker panicked"))
            .collect()
    })
}

/// Per-call / per-worker scratch: one of every field-sized buffer the
/// imaging passes need. Pooled by [`WorkspacePool`]; buffers are sized on
/// first use and reused verbatim afterwards.
#[derive(Debug, Default)]
struct ImagingWorkspace {
    /// FFT column-pass scratch.
    fft: Fft2Workspace,
    /// Mask spectrum `O = F(M)` (filled by the call's main thread only).
    spec: Vec<Complex64>,
    /// Per-source-point field `A_σ` (and the `G ⊙ A_σ` product in the
    /// mask-only adjoint, which reuses it).
    field: Vec<Complex64>,
    /// `F(G ⊙ A_σ)` buffer of the shared gradient pass.
    back: Vec<Complex64>,
    /// Frequency-domain mask-adjoint accumulator.
    acc: Vec<Complex64>,
    /// Real-valued partial intensity accumulator.
    partial: Vec<f64>,
}

impl ImagingWorkspace {
    /// Ensures every buffer holds exactly `n2` elements. A no-op (and
    /// allocation-free) once the workspace has been used at this size.
    fn ensure(&mut self, n2: usize) {
        if self.spec.len() != n2 {
            self.spec.resize(n2, Complex64::ZERO);
            self.field.resize(n2, Complex64::ZERO);
            self.back.resize(n2, Complex64::ZERO);
            self.acc.resize(n2, Complex64::ZERO);
            self.partial.resize(n2, 0.0);
        }
    }
}

/// Lock-guarded stack of warm workspaces, shared by an engine and all of its
/// clones. `acquire` pops (or creates on a cold start), `release` pushes
/// back; the lock is held only for the push/pop, never during imaging.
#[derive(Debug, Clone, Default)]
struct WorkspacePool {
    slots: Arc<Mutex<Vec<ImagingWorkspace>>>,
}

impl WorkspacePool {
    fn acquire(&self, n2: usize) -> ImagingWorkspace {
        // A poisoned pool lock only means some other thread panicked around
        // its push/pop; the slots are plain scratch buffers that `ensure`
        // re-sizes, so recovering the pool is always sound — no reason to
        // cascade that panic into every later imaging call.
        let mut ws = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        ws.ensure(n2);
        ws
    }

    fn release(&self, ws: ImagingWorkspace) {
        // See `acquire`: a poisoned lock still guards valid scratch buffers.
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ws);
    }
}

/// Per-call / per-worker scratch of the **batched** imaging passes: stacked
/// `batch × n²` variants of the [`ImagingWorkspace`] buffers. Pooled
/// separately from the single-mask workspaces so a mixed workload (e.g.
/// fused dose corners inside an optimizer that also images single masks)
/// keeps both pools warm at their own sizes.
#[derive(Debug, Default)]
struct BatchWorkspace {
    /// FFT column-pass scratch (sized for the blocked batch pass).
    fft: Fft2Workspace,
    /// Stacked mask spectra `O_b = F(M_b)`.
    specs: Vec<Complex64>,
    /// Stacked per-source-point fields `A_{σ,b}`.
    fields: Vec<Complex64>,
    /// Stacked frequency-domain mask-adjoint accumulators.
    acc: Vec<Complex64>,
    /// Stacked real-valued partial intensity accumulators.
    partial: Vec<f64>,
}

impl BatchWorkspace {
    /// Ensures every stacked buffer holds exactly `batch · n2` elements. A
    /// no-op (and allocation-free) once used at this size.
    fn ensure(&mut self, n2: usize, batch: usize) {
        let len = n2 * batch;
        if self.specs.len() != len {
            self.specs.resize(len, Complex64::ZERO);
            self.fields.resize(len, Complex64::ZERO);
            self.acc.resize(len, Complex64::ZERO);
            self.partial.resize(len, 0.0);
        }
    }
}

/// Lock-guarded stack of warm batch workspaces — same discipline as
/// [`WorkspacePool`].
#[derive(Debug, Clone, Default)]
struct BatchPool {
    slots: Arc<Mutex<Vec<BatchWorkspace>>>,
}

impl BatchPool {
    fn acquire(&self, n2: usize, batch: usize) -> BatchWorkspace {
        // Poison recovery as in `WorkspacePool::acquire`: the slots are
        // scratch buffers re-sized by `ensure`, valid regardless of where
        // another thread panicked.
        let mut ws = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        ws.ensure(n2, batch);
        ws
    }

    fn release(&self, ws: BatchWorkspace) {
        // See `acquire`: a poisoned lock still guards valid scratch buffers.
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ws);
    }
}

/// Abbe forward-imaging engine.
///
/// # Examples
///
/// ```
/// use bismo_litho::AbbeImager;
/// use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let abbe = AbbeImager::new(&cfg)?;
/// let src = Source::from_shape(
///     &cfg,
///     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
/// );
/// // A fully clear mask images to (near) unit intensity everywhere.
/// let clear = RealField::filled(cfg.mask_dim(), 1.0);
/// let i = abbe.intensity(&src, &clear)?;
/// assert!((i.max() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AbbeImager {
    /// The immutable per-configuration state (pupil, shifted-pupil table,
    /// FFT plan), shared across clones, worker threads — and, via
    /// [`AbbeImager::from_core`], across independently constructed engines.
    core: Arc<ImagingCore>,
    threads: usize,
    min_weight: f64,
    real_spectrum: bool,
    pool: WorkspacePool,
    batch_pool: BatchPool,
}

impl AbbeImager {
    /// Creates an engine for `cfg`'s grids, running single-threaded.
    ///
    /// Construction evaluates the shifted pupil of every source-grid point
    /// into the engine's [`ShiftedPupilTable`]; per-call imaging then never
    /// touches the analytic pupil again. Callers constructing many engines
    /// for the same configuration should build one [`ImagingCore`] and use
    /// [`AbbeImager::from_core`] instead, which skips that work entirely.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask dimension is not FFT-compatible (the
    /// config validates this, so only hand-rolled configs can fail here).
    pub fn new(cfg: &OpticalConfig) -> Result<Self, LithoError> {
        Ok(AbbeImager::from_core(Arc::new(ImagingCore::new(cfg)?)))
    }

    /// Creates an engine over an already-built shared [`ImagingCore`],
    /// performing no per-configuration work at all: the pupil table and FFT
    /// plan are borrowed from the core. This is the cheap constructor the
    /// parallel suite runner uses to hand every worker the same caches.
    #[must_use]
    pub fn from_core(core: Arc<ImagingCore>) -> Self {
        AbbeImager {
            core,
            threads: 1,
            min_weight: 1e-9,
            real_spectrum: false,
            pool: WorkspacePool::default(),
            batch_pool: BatchPool::default(),
        }
    }

    /// The shared immutable core this engine images through.
    #[inline]
    pub fn core(&self) -> &Arc<ImagingCore> {
        &self.core
    }

    /// Sets the number of worker threads used to parallelize over source
    /// points (the paper's GPU-acceleration axis, §3.1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the weight below which a source point is skipped in forward
    /// passes (its contribution to the image is below `min_weight / Σj`).
    #[must_use]
    pub fn with_min_weight(mut self, min_weight: f64) -> Self {
        self.min_weight = min_weight.max(0.0);
        self
    }

    /// Opts the mask-spectrum step (single and batched) into the real-input
    /// FFT path ([`bismo_fft::Fft2Plan::forward_real_with`]), which exploits
    /// the mask being a real field to halve that transform's work.
    ///
    /// **Off by default.** The real-input factorization is mathematically
    /// exact but legitimately reorders floating-point operations, so images
    /// and gradients agree with the default path only to ULP level, not
    /// bitwise (DESIGN.md §10). Anything pinned to exact bits — the golden
    /// solver suite in particular — must stay on the default path; opt in
    /// where throughput matters and bit-reproducibility against the complex
    /// path does not.
    #[must_use]
    pub fn with_real_spectrum(mut self, on: bool) -> Self {
        self.real_spectrum = on;
        self
    }

    /// Whether the mask-spectrum step rides the real-input FFT path (see
    /// [`AbbeImager::with_real_spectrum`]). Exposed like
    /// [`AbbeImager::min_weight`] so callers fusing work across engines can
    /// verify the engines compute identically.
    #[inline]
    pub fn real_spectrum(&self) -> bool {
        self.real_spectrum
    }

    /// Adds a defocus aberration of `z` nanometres to the projection pupil
    /// (see [`bismo_optics::Pupil::with_defocus`]); the adjoint gradients
    /// automatically pick up the conjugate phase. Rebuilds the shifted-pupil
    /// cache into a fresh core — the cache key is the `(Pupil, source grid)`
    /// pair — leaving any core shared with other engines untouched.
    #[must_use]
    pub fn with_defocus(mut self, z_nm: f64) -> Self {
        self.core = Arc::new(self.core.with_defocus(z_nm));
        self
    }

    /// The configuration this engine was built for.
    #[inline]
    pub fn config(&self) -> &OpticalConfig {
        self.core.config()
    }

    /// Configured worker thread count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured forward-pass skip threshold (see
    /// [`AbbeImager::with_min_weight`]). Exposed so callers fusing work
    /// across engines can verify the engines schedule identically — both
    /// the thread count and this threshold change floating-point summation
    /// order.
    #[inline]
    pub fn min_weight(&self) -> f64 {
        self.min_weight
    }

    /// The precomputed per-source-point shifted pupils this engine images
    /// through (exposed for benches and cross-engine reuse).
    #[inline]
    pub fn shifted_pupils(&self) -> &ShiftedPupilTable {
        self.core.shifted()
    }

    /// The source checks shared by every entry point (grid shape, frequency
    /// scale, total power), returning the total source power.
    fn check_source(&self, source: &Source) -> Result<f64, LithoError> {
        if source.dim() != self.core.config().source_dim() {
            return Err(LithoError::Shape(format!(
                "source is {}×{0}, engine expects {1}×{1}",
                source.dim(),
                self.core.config().source_dim()
            )));
        }
        // The engine images through shifted pupils cached for ITS config's
        // source grid; a source built under a different frequency scale
        // would silently image through the wrong shifts.
        if source.freq_scale() != self.core.config().source_freq_scale() {
            return Err(LithoError::Shape(format!(
                "source frequency scale {} does not match the engine's {} — \
                 the source was built under a different optical configuration",
                source.freq_scale(),
                self.core.config().source_freq_scale()
            )));
        }
        let s = source.total_weight();
        if s < DARK_EPS {
            return Err(LithoError::DarkSource);
        }
        Ok(s)
    }

    fn check_inputs(&self, source: &Source, mask: &RealField) -> Result<f64, LithoError> {
        let n = self.core.config().mask_dim();
        if mask.dim() != n {
            return Err(LithoError::Shape(format!(
                "mask is {}×{0}, engine expects {n}×{n}",
                mask.dim()
            )));
        }
        self.check_source(source)
    }

    fn check_field_dim(&self, field: &RealField, what: &str) -> Result<(), LithoError> {
        if field.dim() != self.core.config().mask_dim() {
            return Err(LithoError::Shape(format!(
                "{what} field is {}×{0}, engine expects {1}×{1}",
                field.dim(),
                self.core.config().mask_dim()
            )));
        }
        Ok(())
    }

    /// Fills `ws.spec` with the spectrum `O = F(M)` of a real mask, through
    /// the complex plan or — when the engine opted in via
    /// [`AbbeImager::with_real_spectrum`] — the half-work real-input path.
    fn mask_spectrum_into(
        &self,
        mask: &RealField,
        ws: &mut ImagingWorkspace,
    ) -> Result<(), LithoError> {
        let ImagingWorkspace { spec, fft, .. } = ws;
        if self.real_spectrum {
            self.core
                .plan()
                .forward_real_with(mask.as_slice(), spec, fft)?;
        } else {
            for (s, &v) in spec.iter_mut().zip(mask.as_slice()) {
                *s = Complex64::from_real(v);
            }
            self.core.plan().forward_with(spec, fft)?;
        }
        Ok(())
    }

    /// Forward-pass body shared by the single-threaded path and the chunk
    /// workers: accumulates `Σ j_σ |A_σ|²` over `(grid index, weight)` pairs
    /// into `ws.partial` (which the caller has zeroed).
    fn intensity_accumulate(
        &self,
        spec: &[Complex64],
        points: impl IntoIterator<Item = (usize, f64)>,
        ws: &mut ImagingWorkspace,
    ) -> Result<(), LithoError> {
        let ImagingWorkspace {
            fft,
            field,
            partial,
            ..
        } = ws;
        for (idx, w) in points {
            self.core.shifted().entry(idx).apply(spec, field);
            self.core.plan().inverse_with(field, fft)?;
            for (acc, a) in partial.iter_mut().zip(field.iter()) {
                *acc += w * a.norm_sqr();
            }
        }
        Ok(())
    }

    /// Computes the aerial image `I = (1/Σj) Σ_σ j_σ |A_σ|²` (Eq. 2 with
    /// dose normalization).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid mismatches,
    /// [`LithoError::DarkSource`] when the source carries no power, and FFT
    /// errors from the transform layer.
    pub fn intensity(&self, source: &Source, mask: &RealField) -> Result<RealField, LithoError> {
        let mut out = RealField::zeros(self.core.config().mask_dim());
        self.intensity_into(source, mask, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`AbbeImager::intensity`]: writes the
    /// image into the caller-owned `out` field.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`], plus a shape error
    /// when `out` does not match the mask grid.
    pub fn intensity_into(
        &self,
        source: &Source,
        mask: &RealField,
        out: &mut RealField,
    ) -> Result<(), LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        self.check_field_dim(out, "output")?;
        let n = self.core.config().mask_dim();
        let n2 = n * n;
        let mut ws_main = self.pool.acquire(n2);
        self.mask_spectrum_into(mask, &mut ws_main)?;
        let out_slice = out.as_mut_slice();
        out_slice.fill(0.0);

        if self.threads <= 1 || source.effective_count(self.min_weight) < 2 {
            let mut ws = self.pool.acquire(n2);
            ws.partial.fill(0.0);
            let lit = source
                .weights()
                .iter()
                .enumerate()
                .filter_map(|(idx, &w)| (w > self.min_weight).then_some((idx, w)));
            self.intensity_accumulate(&ws_main.spec, lit, &mut ws)?;
            for (t, p) in out_slice.iter_mut().zip(&ws.partial) {
                *t += *p;
            }
            self.pool.release(ws);
        } else {
            let points = source.effective_points(self.min_weight);
            let spec: &[Complex64] = &ws_main.spec;
            let workers = fan_out(&points, self.threads, |chunk| {
                let mut ws = self.pool.acquire(n2);
                ws.partial.fill(0.0);
                let lit = chunk.iter().map(|p| (p.index, p.weight));
                self.intensity_accumulate(spec, lit, &mut ws)?;
                Ok(ws)
            })?;
            // Merge in chunk order so the result is deterministic.
            for ws in workers {
                for (t, p) in out_slice.iter_mut().zip(&ws.partial) {
                    *t += *p;
                }
                self.pool.release(ws);
            }
        }
        for t in out_slice.iter_mut() {
            *t /= s_total;
        }
        self.pool.release(ws_main);
        Ok(())
    }

    /// Shared per-index gradient pass over `range` of the source grid:
    /// writes `∂L/∂j_τ` entries into `src_out` (offset by `range.start`) and,
    /// when `with_adjoint`, accumulates the frequency-domain mask adjoint
    /// into `ws.acc` (which the caller has zeroed).
    #[allow(clippy::too_many_arguments)]
    fn grad_pass_range(
        &self,
        spec: &[Complex64],
        weights: &[f64],
        g_intensity: &[f64],
        g_dot_i: f64,
        s_total: f64,
        range: std::ops::Range<usize>,
        with_adjoint: bool,
        ws: &mut ImagingWorkspace,
        src_out: &mut [f64],
    ) -> Result<(), LithoError> {
        let start = range.start;
        let ImagingWorkspace {
            fft,
            field,
            back,
            acc,
            ..
        } = ws;
        for idx in range {
            let entry = self.core.shifted().entry(idx);

            // A_τ = F⁻¹(H_τ ⊙ O).
            entry.apply(spec, field);
            self.core.plan().inverse_with(field, fft)?;

            // Source gradient: (⟨G, |A_τ|²⟩ − ⟨G, I⟩) / Σj.
            let g_dot_a: f64 = g_intensity
                .iter()
                .zip(field.iter())
                .map(|(&g, a)| g * a.norm_sqr())
                // BIT-EXACT-OK: sequential fold in slice index order — identical DAG to an explicit loop; no tree reduction on slices.
                .sum();
            src_out[idx - start] = (g_dot_a - g_dot_i) / s_total;

            // Mask-gradient accumulation: w_τ · H̄_τ ⊙ F(G ⊙ A_τ).
            let weight = weights[idx];
            if with_adjoint && weight > self.min_weight {
                let w = weight / s_total;
                for ((b, a), &g) in back.iter_mut().zip(field.iter()).zip(g_intensity) {
                    *b = a.scale(g);
                }
                self.core.plan().forward_with(back, fft)?;
                entry.accumulate(acc, back, w);
            }
        }
        Ok(())
    }

    /// Fans [`AbbeImager::grad_pass_range`] out over the source grid:
    /// splits `0..out.len()` (and `out`, chunk-aligned) across worker
    /// threads, each with its own pooled workspace, and returns the worker
    /// workspaces **in chunk order** so the caller can merge their adjoint
    /// accumulators deterministically before releasing them.
    #[allow(clippy::too_many_arguments)]
    fn grad_fan_out(
        &self,
        spec: &[Complex64],
        weights: &[f64],
        gi: &[f64],
        g_dot_i: f64,
        s_total: f64,
        with_adjoint: bool,
        out: &mut [f64],
    ) -> Result<Vec<ImagingWorkspace>, LithoError> {
        let nj2 = out.len();
        let n2 = spec.len();
        let nchunks = self.threads.min(nj2).max(1);
        let chunk_len = nj2.div_ceil(nchunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(ci, out_chunk)| {
                    let start = ci * chunk_len;
                    let end = start + out_chunk.len();
                    scope.spawn(move || {
                        let mut ws = self.pool.acquire(n2);
                        if with_adjoint {
                            ws.acc.fill(Complex64::ZERO);
                        }
                        self.grad_pass_range(
                            spec,
                            weights,
                            gi,
                            g_dot_i,
                            s_total,
                            start..end,
                            with_adjoint,
                            &mut ws,
                            out_chunk,
                        )?;
                        Ok(ws)
                    })
                })
                .collect();
            handles
                .into_iter()
                // PANIC-OK: propagation of a worker panic, as in `fan_out`.
                .map(|h| h.join().expect("imaging worker panicked"))
                .collect()
        })
    }

    /// Computes `∂L/∂M` and `∂L/∂j` in one shared pass, given the upstream
    /// intensity gradient `g_intensity = ∂L/∂I` and the forward image
    /// `intensity` (needed by the dose-normalization term of the source
    /// gradient).
    ///
    /// The source gradient is returned on the full `N_j × N_j` grid in
    /// row-major order; dark grid points get real gradients too.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`].
    pub fn gradients(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<(RealField, Vec<f64>), LithoError> {
        let mut grad_mask = RealField::zeros(self.core.config().mask_dim());
        let mut grad_source = vec![0.0; source.dim() * source.dim()];
        self.gradients_into(
            source,
            mask,
            g_intensity,
            intensity,
            &mut grad_mask,
            &mut grad_source,
        )?;
        Ok((grad_mask, grad_source))
    }

    /// Allocation-free variant of [`AbbeImager::gradients`]: writes both
    /// gradients into caller-owned buffers (`grad_source_out` must hold
    /// `N_j²` elements).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::gradients`], plus shape errors
    /// for mismatched output buffers.
    pub fn gradients_into(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
        grad_mask_out: &mut RealField,
        grad_source_out: &mut [f64],
    ) -> Result<(), LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        self.check_field_dim(g_intensity, "gradient")?;
        self.check_field_dim(intensity, "intensity")?;
        self.check_field_dim(grad_mask_out, "mask-gradient output")?;
        let nj2 = source.dim() * source.dim();
        if grad_source_out.len() != nj2 {
            return Err(LithoError::Shape(format!(
                "source-gradient output has {} entries, engine expects {nj2}",
                grad_source_out.len()
            )));
        }
        let n = self.core.config().mask_dim();
        let n2 = n * n;
        let g_dot_i = g_intensity.dot(intensity);
        let weights = source.weights();
        let gi = g_intensity.as_slice();

        let mut ws_main = self.pool.acquire(n2);
        self.mask_spectrum_into(mask, &mut ws_main)?;

        if self.threads <= 1 || nj2 < 2 {
            let mut ws = self.pool.acquire(n2);
            ws.acc.fill(Complex64::ZERO);
            self.grad_pass_range(
                &ws_main.spec,
                weights,
                gi,
                g_dot_i,
                s_total,
                0..nj2,
                true,
                &mut ws,
                grad_source_out,
            )?;
            let ImagingWorkspace { fft, acc, .. } = &mut ws;
            self.core.plan().inverse_with(acc, fft)?;
            for (o, z) in grad_mask_out.as_mut_slice().iter_mut().zip(acc.iter()) {
                *o = 2.0 * z.re;
            }
            self.pool.release(ws);
            self.pool.release(ws_main);
            return Ok(());
        }

        let ImagingWorkspace { spec, fft, acc, .. } = &mut ws_main;
        let workers =
            self.grad_fan_out(spec, weights, gi, g_dot_i, s_total, true, grad_source_out)?;
        // Merge the per-worker frequency-domain accumulators in chunk order
        // (deterministic summation independent of thread completion order).
        acc.fill(Complex64::ZERO);
        for ws in workers {
            for (a, p) in acc.iter_mut().zip(&ws.acc) {
                *a += *p;
            }
            self.pool.release(ws);
        }
        self.core.plan().inverse_with(acc, fft)?;
        for (o, z) in grad_mask_out.as_mut_slice().iter_mut().zip(acc.iter()) {
            *o = 2.0 * z.re;
        }
        self.pool.release(ws_main);
        Ok(())
    }

    /// Computes only `∂L/∂j` (the lower-level SO gradient). Skips the
    /// per-point backward FFT of the mask accumulation, roughly halving the
    /// cost of the unrolled inner steps and Hessian-vector products of
    /// Algorithm 2.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`].
    pub fn grad_source(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<Vec<f64>, LithoError> {
        let mut out = vec![0.0; source.dim() * source.dim()];
        self.grad_source_into(source, mask, g_intensity, intensity, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`AbbeImager::grad_source`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::grad_source`], plus a shape error
    /// for a mismatched output buffer.
    pub fn grad_source_into(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
        out: &mut [f64],
    ) -> Result<(), LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        self.check_field_dim(g_intensity, "gradient")?;
        self.check_field_dim(intensity, "intensity")?;
        let nj2 = source.dim() * source.dim();
        if out.len() != nj2 {
            return Err(LithoError::Shape(format!(
                "source-gradient output has {} entries, engine expects {nj2}",
                out.len()
            )));
        }
        let n2 = self.core.config().mask_dim() * self.core.config().mask_dim();
        let g_dot_i = g_intensity.dot(intensity);
        let weights = source.weights();
        let gi = g_intensity.as_slice();

        let mut ws_main = self.pool.acquire(n2);
        self.mask_spectrum_into(mask, &mut ws_main)?;

        if self.threads <= 1 || nj2 < 2 {
            let mut ws = self.pool.acquire(n2);
            self.grad_pass_range(
                &ws_main.spec,
                weights,
                gi,
                g_dot_i,
                s_total,
                0..nj2,
                false,
                &mut ws,
                out,
            )?;
            self.pool.release(ws);
            self.pool.release(ws_main);
            return Ok(());
        }

        let workers =
            self.grad_fan_out(&ws_main.spec, weights, gi, g_dot_i, s_total, false, out)?;
        for ws in workers {
            self.pool.release(ws);
        }
        self.pool.release(ws_main);
        Ok(())
    }

    /// Mask-only adjoint body shared by the single-threaded path and the
    /// chunk workers: accumulates `Σ w_σ H̄_σ ⊙ F(G ⊙ A_σ)` over
    /// `(grid index, weight)` pairs into `ws.acc` (which the caller has
    /// zeroed).
    fn mask_adjoint_accumulate(
        &self,
        spec: &[Complex64],
        g_intensity: &[f64],
        s_total: f64,
        points: impl IntoIterator<Item = (usize, f64)>,
        ws: &mut ImagingWorkspace,
    ) -> Result<(), LithoError> {
        let ImagingWorkspace {
            fft, field, acc, ..
        } = ws;
        for (idx, weight) in points {
            let entry = self.core.shifted().entry(idx);
            entry.apply(spec, field);
            self.core.plan().inverse_with(field, fft)?;
            let w = weight / s_total;
            for (a, &g) in field.iter_mut().zip(g_intensity) {
                *a = a.scale(g);
            }
            self.core.plan().forward_with(field, fft)?;
            entry.accumulate(acc, field, w);
        }
        Ok(())
    }

    /// Convenience wrapper computing only the mask gradient (used by the
    /// mask-only Abbe-MO driver where the source is fixed). Parallelizes
    /// over source points like the forward pass.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`].
    pub fn grad_mask(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        let mut out = RealField::zeros(self.core.config().mask_dim());
        self.grad_mask_into(source, mask, g_intensity, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`AbbeImager::grad_mask`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::grad_mask`], plus a shape error
    /// when `out` does not match the mask grid.
    pub fn grad_mask_into(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        out: &mut RealField,
    ) -> Result<(), LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        self.check_field_dim(g_intensity, "gradient")?;
        self.check_field_dim(out, "output")?;
        let n2 = self.core.config().mask_dim() * self.core.config().mask_dim();
        let gi = g_intensity.as_slice();

        let mut ws_main = self.pool.acquire(n2);
        self.mask_spectrum_into(mask, &mut ws_main)?;

        if self.threads <= 1 || source.effective_count(self.min_weight) < 2 {
            let mut ws = self.pool.acquire(n2);
            ws.acc.fill(Complex64::ZERO);
            let lit = source
                .weights()
                .iter()
                .enumerate()
                .filter_map(|(idx, &w)| (w > self.min_weight).then_some((idx, w)));
            self.mask_adjoint_accumulate(&ws_main.spec, gi, s_total, lit, &mut ws)?;
            let ImagingWorkspace { fft, acc, .. } = &mut ws;
            self.core.plan().inverse_with(acc, fft)?;
            for (o, z) in out.as_mut_slice().iter_mut().zip(acc.iter()) {
                *o = 2.0 * z.re;
            }
            self.pool.release(ws);
            self.pool.release(ws_main);
            return Ok(());
        }

        let points = source.effective_points(self.min_weight);
        let spec: &[Complex64] = &ws_main.spec;
        let workers = fan_out(&points, self.threads, |chunk| {
            let mut ws = self.pool.acquire(n2);
            ws.acc.fill(Complex64::ZERO);
            let lit = chunk.iter().map(|p| (p.index, p.weight));
            self.mask_adjoint_accumulate(spec, gi, s_total, lit, &mut ws)?;
            Ok(ws)
        })?;
        let ImagingWorkspace { fft, acc, .. } = &mut ws_main;
        acc.fill(Complex64::ZERO);
        for ws in workers {
            for (a, p) in acc.iter_mut().zip(&ws.acc) {
                *a += *p;
            }
            self.pool.release(ws);
        }
        self.core.plan().inverse_with(acc, fft)?;
        for (o, z) in out.as_mut_slice().iter_mut().zip(acc.iter()) {
            *o = 2.0 * z.re;
        }
        self.pool.release(ws_main);
        Ok(())
    }

    /// The shared input checks of the batched entry points (mask grid,
    /// source grid/scale, source power), mirroring
    /// [`AbbeImager::check_inputs`] for stacked masks.
    fn check_batch_inputs(&self, source: &Source, masks: &MaskBatch) -> Result<f64, LithoError> {
        let n = self.core.config().mask_dim();
        check_batch_shape(masks, n, masks.batch(), "mask")?;
        self.check_source(source)
    }

    /// Fills `ws.specs` with the stacked spectra `O_b = F(M_b)` of a mask
    /// batch (the batched [`AbbeImager::mask_spectrum_into`]).
    ///
    /// This forward transform runs on the calling thread *before* the
    /// source-point fan-out, so with `threads > 1` it is the one batched
    /// FFT nothing else overlaps — it goes through
    /// [`BatchFft2::forward_threaded`], splitting the batch entries across
    /// the engine's worker count (bit-identical results; the workers
    /// allocate their own scratch, so the zero-alloc warm-path contract is
    /// a `threads == 1` property). The real-input variant has no threaded
    /// counterpart and always runs inline.
    fn batch_spectra_into(
        &self,
        masks: &MaskBatch,
        bfft: &BatchFft2<'_>,
        ws: &mut BatchWorkspace,
    ) -> Result<(), LithoError> {
        let BatchWorkspace { specs, fft, .. } = ws;
        if self.real_spectrum {
            bfft.forward_real_with(masks.as_slice(), specs, fft)?;
        } else {
            for (s, &v) in specs.iter_mut().zip(masks.as_slice()) {
                *s = Complex64::from_real(v);
            }
            if self.threads > 1 {
                bfft.forward_threaded(specs, self.threads)?;
            } else {
                bfft.forward_with(specs, fft)?;
            }
        }
        Ok(())
    }

    /// Batched forward-pass body: accumulates `Σ j_σ |A_{σ,b}|²` over
    /// `(grid index, weight)` pairs into `ws.partial` (which the caller has
    /// zeroed), with **one** shifted-pupil table walk per source point for
    /// the whole batch and one batched inverse FFT per point.
    fn intensity_accumulate_batch(
        &self,
        specs: &[Complex64],
        points: impl IntoIterator<Item = (usize, f64)>,
        bfft: &BatchFft2<'_>,
        ws: &mut BatchWorkspace,
    ) -> Result<(), LithoError> {
        let n2 = self.core.config().mask_dim() * self.core.config().mask_dim();
        let BatchWorkspace {
            fft,
            fields,
            partial,
            ..
        } = ws;
        for (idx, w) in points {
            self.core
                .shifted()
                .entry(idx)
                .apply_batch(specs, fields, n2);
            bfft.inverse_with(fields, fft)?;
            for (acc, a) in partial.iter_mut().zip(fields.iter()) {
                *acc += w * a.norm_sqr();
            }
        }
        Ok(())
    }

    /// Fused batched forward imaging: one call computes the aerial image of
    /// every stacked mask (e.g. the three dose-corner masks of the SMO
    /// objective), writing into the caller-owned `out` batch.
    ///
    /// Per-entry results are bit-identical to `B` separate
    /// [`AbbeImager::intensity_into`] calls at the same thread count; the
    /// fusion amortizes the per-point table traversal and runs the FFTs
    /// through the cache-blocked batch path (DESIGN.md §9). Allocation-free
    /// once the batch workspace pool is warm at this `(grid, batch)` size.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`], plus shape errors
    /// for mismatched batches.
    pub fn intensity_batch_into(
        &self,
        source: &Source,
        masks: &MaskBatch,
        out: &mut IntensityBatch,
    ) -> Result<(), LithoError> {
        let s_total = self.check_batch_inputs(source, masks)?;
        let n = self.core.config().mask_dim();
        check_batch_shape(out, n, masks.batch(), "output")?;
        if masks.batch() == 0 {
            return Ok(());
        }
        let n2 = n * n;
        let batch = masks.batch();
        let bfft = self.core.plan().batched(batch);
        let mut ws_main = self.batch_pool.acquire(n2, batch);
        self.batch_spectra_into(masks, &bfft, &mut ws_main)?;
        let out_slice = out.as_mut_slice();
        out_slice.fill(0.0);

        if self.threads <= 1 || source.effective_count(self.min_weight) < 2 {
            let mut ws = self.batch_pool.acquire(n2, batch);
            ws.partial.fill(0.0);
            let lit = source
                .weights()
                .iter()
                .enumerate()
                .filter_map(|(idx, &w)| (w > self.min_weight).then_some((idx, w)));
            self.intensity_accumulate_batch(&ws_main.specs, lit, &bfft, &mut ws)?;
            for (t, p) in out_slice.iter_mut().zip(&ws.partial) {
                *t += *p;
            }
            self.batch_pool.release(ws);
        } else {
            let points = source.effective_points(self.min_weight);
            let specs: &[Complex64] = &ws_main.specs;
            let workers = fan_out(&points, self.threads, |chunk| {
                let mut ws = self.batch_pool.acquire(n2, batch);
                ws.partial.fill(0.0);
                let lit = chunk.iter().map(|p| (p.index, p.weight));
                self.intensity_accumulate_batch(specs, lit, &bfft, &mut ws)?;
                Ok(ws)
            })?;
            // Merge in chunk order so the result is deterministic.
            for ws in workers {
                for (t, p) in out_slice.iter_mut().zip(&ws.partial) {
                    *t += *p;
                }
                self.batch_pool.release(ws);
            }
        }
        for t in out_slice.iter_mut() {
            *t /= s_total;
        }
        self.batch_pool.release(ws_main);
        Ok(())
    }

    /// Allocating convenience for [`AbbeImager::intensity_batch_into`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity_batch_into`].
    pub fn intensity_batch(
        &self,
        source: &Source,
        masks: &MaskBatch,
    ) -> Result<IntensityBatch, LithoError> {
        let mut out = IntensityBatch::zeros(masks.dim(), masks.batch());
        self.intensity_batch_into(source, masks, &mut out)?;
        Ok(out)
    }

    /// Batched mask-adjoint body: accumulates
    /// `Σ w_σ H̄_σ ⊙ F(G_b ⊙ A_{σ,b})` into `ws.acc` (which the caller has
    /// zeroed) — one table walk and two batched FFTs per source point.
    fn mask_adjoint_accumulate_batch(
        &self,
        specs: &[Complex64],
        g_intensity: &[f64],
        s_total: f64,
        points: impl IntoIterator<Item = (usize, f64)>,
        bfft: &BatchFft2<'_>,
        ws: &mut BatchWorkspace,
    ) -> Result<(), LithoError> {
        let n2 = self.core.config().mask_dim() * self.core.config().mask_dim();
        let BatchWorkspace {
            fft, fields, acc, ..
        } = ws;
        for (idx, weight) in points {
            let entry = self.core.shifted().entry(idx);
            entry.apply_batch(specs, fields, n2);
            bfft.inverse_with(fields, fft)?;
            let w = weight / s_total;
            for (a, &g) in fields.iter_mut().zip(g_intensity) {
                *a = a.scale(g);
            }
            bfft.forward_with(fields, fft)?;
            entry.accumulate_batch(acc, fields, w, n2);
        }
        Ok(())
    }

    /// Fused batched mask gradient: entry `b` of `out` receives `∂L/∂M_b`
    /// for mask `b` under the stacked upstream gradient `g_intensity` —
    /// bit-identical per entry to separate [`AbbeImager::grad_mask_into`]
    /// calls, with the per-point table walk and FFTs amortized across the
    /// batch. Allocation-free once the batch pool is warm.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::grad_mask`], plus shape errors
    /// for mismatched batches.
    pub fn grad_mask_batch_into(
        &self,
        source: &Source,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
        out: &mut MaskBatch,
    ) -> Result<(), LithoError> {
        let s_total = self.check_batch_inputs(source, masks)?;
        let n = self.core.config().mask_dim();
        check_batch_shape(g_intensity, n, masks.batch(), "gradient")?;
        check_batch_shape(out, n, masks.batch(), "output")?;
        if masks.batch() == 0 {
            return Ok(());
        }
        let n2 = n * n;
        let batch = masks.batch();
        let bfft = self.core.plan().batched(batch);
        let gi = g_intensity.as_slice();
        let mut ws_main = self.batch_pool.acquire(n2, batch);
        self.batch_spectra_into(masks, &bfft, &mut ws_main)?;

        if self.threads <= 1 || source.effective_count(self.min_weight) < 2 {
            let mut ws = self.batch_pool.acquire(n2, batch);
            ws.acc.fill(Complex64::ZERO);
            let lit = source
                .weights()
                .iter()
                .enumerate()
                .filter_map(|(idx, &w)| (w > self.min_weight).then_some((idx, w)));
            self.mask_adjoint_accumulate_batch(&ws_main.specs, gi, s_total, lit, &bfft, &mut ws)?;
            let BatchWorkspace { fft, acc, .. } = &mut ws;
            bfft.inverse_with(acc, fft)?;
            for (o, z) in out.as_mut_slice().iter_mut().zip(acc.iter()) {
                *o = 2.0 * z.re;
            }
            self.batch_pool.release(ws);
            self.batch_pool.release(ws_main);
            return Ok(());
        }

        let points = source.effective_points(self.min_weight);
        let specs: &[Complex64] = &ws_main.specs;
        let workers = fan_out(&points, self.threads, |chunk| {
            let mut ws = self.batch_pool.acquire(n2, batch);
            ws.acc.fill(Complex64::ZERO);
            let lit = chunk.iter().map(|p| (p.index, p.weight));
            self.mask_adjoint_accumulate_batch(specs, gi, s_total, lit, &bfft, &mut ws)?;
            Ok(ws)
        })?;
        let BatchWorkspace { acc, .. } = &mut ws_main;
        acc.fill(Complex64::ZERO);
        for ws in workers {
            for (a, p) in acc.iter_mut().zip(&ws.acc) {
                *a += *p;
            }
            self.batch_pool.release(ws);
        }
        // This branch only runs with `threads > 1`, so the final batched
        // adjoint inverse — the other FFT outside the point fan-out — uses
        // the threaded entry point (bit-identical to `inverse_with` by the
        // `BatchFft2` chunking contract).
        bfft.inverse_threaded(acc, self.threads)?;
        for (o, z) in out.as_mut_slice().iter_mut().zip(acc.iter()) {
            *o = 2.0 * z.re;
        }
        self.batch_pool.release(ws_main);
        Ok(())
    }

    /// Allocating convenience for [`AbbeImager::grad_mask_batch_into`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::grad_mask_batch_into`].
    pub fn grad_mask_batch(
        &self,
        source: &Source,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
    ) -> Result<MaskBatch, LithoError> {
        let mut out = MaskBatch::zeros(masks.dim(), masks.batch());
        self.grad_mask_batch_into(source, masks, g_intensity, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismo_optics::SourceShape;

    fn setup() -> (OpticalConfig, AbbeImager, Source) {
        let cfg = OpticalConfig::test_small();
        let abbe = AbbeImager::new(&cfg).unwrap();
        let src = Source::from_shape(
            &cfg,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        (cfg, abbe, src)
    }

    fn square_mask(n: usize, half: usize) -> RealField {
        RealField::from_fn(n, |r, c| {
            let dr = r as isize - n as isize / 2;
            let dc = c as isize - n as isize / 2;
            if dr.unsigned_abs() < half && dc.unsigned_abs() < half {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn fan_out_empty_input_returns_empty() {
        // Regression guard: chunks(0) panics, so empty input must
        // short-circuit before chunking.
        let items: Vec<usize> = Vec::new();
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let out = fan_out(&items, 4, |chunk| {
            calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(chunk.len())
        })
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn fan_out_covers_all_items_in_order() {
        let items: Vec<usize> = (0..13).collect();
        let chunks = fan_out(&items, 4, |chunk| Ok(chunk.to_vec())).unwrap();
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn dark_mask_images_dark() {
        let (cfg, abbe, src) = setup();
        let i = abbe
            .intensity(&src, &RealField::zeros(cfg.mask_dim()))
            .unwrap();
        assert!(i.max() < 1e-15);
    }

    #[test]
    fn clear_mask_images_to_unit_intensity() {
        let (cfg, abbe, src) = setup();
        let i = abbe
            .intensity(&src, &RealField::filled(cfg.mask_dim(), 1.0))
            .unwrap();
        assert!((i.min() - 1.0).abs() < 1e-9, "min {}", i.min());
        assert!((i.max() - 1.0).abs() < 1e-9, "max {}", i.max());
    }

    #[test]
    fn intensity_is_nonnegative_and_bounded() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i = abbe.intensity(&src, &m).unwrap();
        assert!(i.min() >= 0.0);
        // A binary mask cannot brighten above ~clear field by much
        // (ringing allows slight overshoot).
        assert!(i.max() < 1.6, "max {}", i.max());
    }

    #[test]
    fn dark_source_is_error() {
        let (cfg, abbe, _) = setup();
        let dark = Source::dark(&cfg);
        let m = square_mask(cfg.mask_dim(), 8);
        assert!(matches!(
            abbe.intensity(&dark, &m),
            Err(LithoError::DarkSource)
        ));
    }

    #[test]
    fn wrong_mask_dim_is_error() {
        let (_, abbe, src) = setup();
        let m = RealField::zeros(16);
        assert!(matches!(
            abbe.intensity(&src, &m),
            Err(LithoError::Shape(_))
        ));
    }

    #[test]
    fn source_from_mismatched_config_is_rejected() {
        // The engine images through shifts cached for its own config; a
        // source with the same grid size but a different frequency scale
        // must be rejected, not silently imaged through the wrong shifts.
        let (cfg, abbe, _) = setup();
        let other = OpticalConfig::builder()
            .mask_dim(cfg.mask_dim())
            .pixel_nm(8.0)
            .na(0.9)
            .source_dim(cfg.source_dim())
            .build()
            .unwrap();
        assert_ne!(other.source_freq_scale(), cfg.source_freq_scale());
        let foreign = Source::from_shape(
            &other,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        let m = square_mask(cfg.mask_dim(), 8);
        assert!(matches!(
            abbe.intensity(&foreign, &m),
            Err(LithoError::Shape(_))
        ));
    }

    #[test]
    fn intensity_scales_invariant_to_source_power() {
        // Doubling every source weight leaves the normalized image unchanged.
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i1 = abbe.intensity(&src, &m).unwrap();
        let doubled = Source::from_weights(
            &cfg,
            src.weights().iter().map(|w| w * 2.0).collect::<Vec<_>>(),
        );
        let i2 = abbe.intensity(&doubled, &m).unwrap();
        for (a, b) in i1.as_slice().iter().zip(i2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn engines_from_shared_core_match_fresh_engine() {
        // Two engines over one Arc'd core, used concurrently from separate
        // threads, must agree exactly with a freshly constructed engine —
        // the invariant the parallel suite runner relies on.
        let (cfg, fresh, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let expected = fresh.intensity(&src, &m).unwrap();
        let core = Arc::new(ImagingCore::new(&cfg).unwrap());
        let results: Vec<RealField> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let core = Arc::clone(&core);
                    let src = &src;
                    let m = &m;
                    scope.spawn(move || AbbeImager::from_core(core).intensity(src, m).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for got in results {
            assert_eq!(got, expected);
        }
        // The core is genuinely shared, not re-derived per engine.
        let a = AbbeImager::from_core(Arc::clone(&core));
        let b = AbbeImager::from_core(Arc::clone(&core));
        assert!(Arc::ptr_eq(a.core(), b.core()));
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i1 = abbe.intensity(&src, &m).unwrap();
        let abbe4 = AbbeImager::new(&cfg).unwrap().with_threads(4);
        let i4 = abbe4.intensity(&src, &m).unwrap();
        for (a, b) in i1.as_slice().iter().zip(i4.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn real_spectrum_engine_matches_default_to_ulp() {
        // The equivalence contract of the opt-in real-input spectrum path
        // (DESIGN.md §10): images and gradients agree with the default
        // complex path to tight relative tolerance, but not bitwise — the
        // real-input factorization legitimately reorders flops.
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let real = abbe.clone().with_real_spectrum(true);
        assert!(real.real_spectrum() && !abbe.real_spectrum());
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 5 + c) % 4) as f64 / 4.0 - 0.3);

        let i_default = abbe.intensity(&src, &m).unwrap();
        let i_real = real.intensity(&src, &m).unwrap();
        let peak = i_default
            .as_slice()
            .iter()
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        for (d, r) in i_default.as_slice().iter().zip(i_real.as_slice()) {
            assert!(
                (d - r).abs() <= 1e-12 * peak,
                "intensity diverged: {d} vs {r}"
            );
        }

        let (gm_d, gj_d) = abbe.gradients(&src, &m, &coeff, &i_default).unwrap();
        let (gm_r, gj_r) = real.gradients(&src, &m, &coeff, &i_real).unwrap();
        let gm_peak = gm_d.as_slice().iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        for (d, r) in gm_d.as_slice().iter().zip(gm_r.as_slice()) {
            assert!(
                (d - r).abs() <= 1e-10 * gm_peak.max(1.0),
                "mask gradient diverged: {d} vs {r}"
            );
        }
        let gj_peak = gj_d.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        for (d, r) in gj_d.iter().zip(&gj_r) {
            assert!(
                (d - r).abs() <= 1e-10 * gj_peak.max(1.0),
                "source gradient diverged: {d} vs {r}"
            );
        }

        // Batched path rides the same flag.
        let masks = MaskBatch::from_fields(&[m.clone(), m.map(|v| 0.9 * v)]);
        let mut batch_d = IntensityBatch::zeros(n, 2);
        let mut batch_r = IntensityBatch::zeros(n, 2);
        abbe.intensity_batch_into(&src, &masks, &mut batch_d)
            .unwrap();
        real.intensity_batch_into(&src, &masks, &mut batch_r)
            .unwrap();
        for (d, r) in batch_d.as_slice().iter().zip(batch_r.as_slice()) {
            assert!(
                (d - r).abs() <= 1e-12 * peak,
                "batched intensity diverged: {d} vs {r}"
            );
        }
    }

    #[test]
    fn repeated_calls_reuse_pooled_workspaces() {
        // Two identical calls must agree exactly — stale workspace contents
        // must never leak into a later call.
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i1 = abbe.intensity(&src, &m).unwrap();
        let coeff = RealField::filled(cfg.mask_dim(), 0.25);
        let _ = abbe.gradients(&src, &m, &coeff, &i1).unwrap();
        let i2 = abbe.intensity(&src, &m).unwrap();
        assert_eq!(i1, i2);
        let g1 = abbe.grad_mask(&src, &m, &coeff).unwrap();
        let g2 = abbe.grad_mask(&src, &m, &coeff).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 5 + c) % 4) as f64 / 4.0 - 0.3);
        let i = abbe.intensity(&src, &m).unwrap();
        let mut i_into = RealField::zeros(n);
        abbe.intensity_into(&src, &m, &mut i_into).unwrap();
        assert_eq!(i, i_into);

        let (gm, gj) = abbe.gradients(&src, &m, &coeff, &i).unwrap();
        let mut gm_into = RealField::zeros(n);
        let mut gj_into = vec![0.0; src.dim() * src.dim()];
        abbe.gradients_into(&src, &m, &coeff, &i, &mut gm_into, &mut gj_into)
            .unwrap();
        assert_eq!(gm, gm_into);
        assert_eq!(gj, gj_into);

        let mut wrong = vec![0.0; 3];
        assert!(matches!(
            abbe.grad_source_into(&src, &m, &coeff, &i, &mut wrong),
            Err(LithoError::Shape(_))
        ));
    }

    #[test]
    fn mask_gradient_matches_finite_difference() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        // Grayscale mask so the derivative is probed off the binary corners.
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        // Loss L = Σ c(x) I(x) with fixed random-ish coefficients c.
        let coeff = RealField::from_fn(n, |r, c| ((r * 31 + c * 17) % 7) as f64 / 7.0 - 0.4);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm, _) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();

        let eps = 1e-5;
        for &(r, c) in &[
            (n / 2, n / 2),
            (n / 2 - 8, n / 2),
            (3, 5),
            (n / 2, n / 2 + 7),
        ] {
            let mut mp = m.clone();
            mp[(r, c)] += eps;
            let mut mm = m.clone();
            mm[(r, c)] -= eps;
            let lp = abbe.intensity(&src, &mp).unwrap().dot(&coeff);
            let lm = abbe.intensity(&src, &mm).unwrap().dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gm[(r, c)];
            assert!(
                (numeric - analytic).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn source_gradient_matches_finite_difference() {
        // Grayscale, strictly positive weights keep every point above the
        // effective threshold under ±ε perturbation (central differences are
        // only valid where the forward map is smooth in the weights).
        let (cfg, abbe, _) = setup();
        let nj = cfg.source_dim();
        let src = Source::from_weights(
            &cfg,
            (0..nj * nj)
                .map(|i| 0.15 + 0.7 * ((i * 7 % 10) as f64) / 10.0)
                .collect::<Vec<_>>(),
        );
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.1 + 0.8 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 13 + c * 29) % 5) as f64 / 5.0 - 0.3);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (_, gj) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();

        let eps = 1e-5;
        let nj = src.dim();
        // Probe a lit point, a dark point, and the center.
        for &idx in &[0usize, nj * nj / 2, nj + 1, nj * nj - 1] {
            let mut wp = src.weights().to_vec();
            wp[idx] += eps;
            let mut wm = src.weights().to_vec();
            wm[idx] -= eps;
            let lp = abbe
                .intensity(&Source::from_weights(&cfg, wp), &m)
                .unwrap()
                .dot(&coeff);
            let lm = abbe
                .intensity(&Source::from_weights(&cfg, wm), &m)
                .unwrap()
                .dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gj[idx];
            assert!(
                (numeric - analytic).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "τ={idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradients_multithreaded_match_single_thread() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r + c) % 3) as f64 - 1.0);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm1, gj1) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let abbe2 = AbbeImager::new(&cfg).unwrap().with_threads(3);
        let (gm2, gj2) = abbe2.gradients(&src, &m, &coeff, &i0).unwrap();
        for (a, b) in gm1.as_slice().iter().zip(gm2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in gj1.iter().zip(&gj2) {
            assert!((a - b).abs() < 1e-12);
        }
        // Multithreaded grad_mask also agrees with the single-threaded one.
        let gm3 = abbe2.grad_mask(&src, &m, &coeff).unwrap();
        let gm4 = abbe.grad_mask(&src, &m, &coeff).unwrap();
        for (a, b) in gm3.as_slice().iter().zip(gm4.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn defocus_blurs_the_image() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let focused = abbe.intensity(&src, &m).unwrap();
        let defocused = AbbeImager::new(&cfg)
            .unwrap()
            .with_defocus(150.0)
            .intensity(&src, &m)
            .unwrap();
        // Defocus softens the image: the peak drops.
        assert!(defocused.max() < focused.max());
        // Energy is only redistributed by a pure-phase aberration, so the
        // totals stay close (windowing effects aside).
        let rel = (defocused.sum() - focused.sum()).abs() / focused.sum();
        assert!(rel < 0.05, "energy drift {rel}");
    }

    #[test]
    fn zero_defocus_matches_plain_engine_exactly() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let a = abbe.intensity(&src, &m).unwrap();
        let b = AbbeImager::new(&cfg)
            .unwrap()
            .with_defocus(0.0)
            .intensity(&src, &m)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn defocused_mask_gradient_matches_finite_difference() {
        // The adjoint must carry the conjugate defocus phase; this test
        // fails loudly if the conjugation is dropped.
        let (cfg, _, _) = setup();
        // Grayscale strictly-positive weights so ±ε stays above the
        // effective-point threshold for the source-gradient check.
        let nj = cfg.source_dim();
        let src = Source::from_weights(
            &cfg,
            (0..nj * nj)
                .map(|i| 0.15 + 0.7 * ((i * 3 % 10) as f64) / 10.0)
                .collect::<Vec<_>>(),
        );
        let abbe = AbbeImager::new(&cfg).unwrap().with_defocus(120.0);
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 11 + c * 5) % 6) as f64 / 6.0 - 0.3);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm, gj) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let eps = 1e-5;
        for &(r, c) in &[(n / 2, n / 2), (n / 2 - 6, n / 2 + 4), (4, 7)] {
            let mut mp = m.clone();
            mp[(r, c)] += eps;
            let mut mm = m.clone();
            mm[(r, c)] -= eps;
            let lp = abbe.intensity(&src, &mp).unwrap().dot(&coeff);
            let lm = abbe.intensity(&src, &mm).unwrap().dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
        // Source gradient under defocus, spot check one grid point.
        let idx = src.dim() + 2;
        let mut wp = src.weights().to_vec();
        wp[idx] += eps;
        let mut wm = src.weights().to_vec();
        wm[idx] -= eps;
        let lp = abbe
            .intensity(&Source::from_weights(&cfg, wp), &m)
            .unwrap()
            .dot(&coeff);
        let lm = abbe
            .intensity(&Source::from_weights(&cfg, wm), &m)
            .unwrap()
            .dot(&coeff);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - gj[idx]).abs() < 1e-6 + 1e-4 * numeric.abs(),
            "τ={idx}: numeric {numeric} vs analytic {}",
            gj[idx]
        );
    }

    #[test]
    fn grad_source_only_matches_full_gradients() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.3 + 0.5 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 3 + c) % 4) as f64 / 4.0 - 0.2);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (_, gj_full) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let gj_only = abbe.grad_source(&src, &m, &coeff, &i0).unwrap();
        for (a, b) in gj_full.iter().zip(&gj_only) {
            assert!((a - b).abs() < 1e-12);
        }
        // And the multithreaded source-only pass agrees too.
        let abbe3 = AbbeImager::new(&cfg).unwrap().with_threads(3);
        let gj_mt = abbe3.grad_source(&src, &m, &coeff, &i0).unwrap();
        for (a, b) in gj_full.iter().zip(&gj_mt) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn grad_mask_convenience_matches_full_gradients() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 6);
        let coeff = RealField::filled(n, 0.5);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm_full, _) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let gm_only = abbe.grad_mask(&src, &m, &coeff).unwrap();
        for (a, b) in gm_full.as_slice().iter().zip(gm_only.as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
