//! Abbe source-point-integration imaging (paper Eq. 2) with hand-derived
//! adjoint gradients and source-point parallelism.
//!
//! For every effective source point σ at illumination frequency
//! `(f_σ, g_σ)` the engine forms `A_σ = F⁻¹[H(f+f_σ, g+g_σ) ⊙ F(M)]` and
//! accumulates `I = (1/Σj) Σ_σ j_σ |A_σ|²`. The `1/Σj` dose normalization is
//! an implementation choice (see DESIGN.md §4): it pins the clear-field
//! intensity at 1 regardless of how much source power the optimizer turns
//! on, which is what makes a fixed resist threshold `I_tr` meaningful.
//!
//! # Gradients
//!
//! With upstream `G_I = ∂L/∂I` (real) and `w_σ = j_σ / Σj`:
//!
//! * mask:   `∂L/∂M = Σ_σ 2 w_σ · Re{ F⁻¹[ H_σ ⊙ F(G_I ⊙ A_σ) ] }`
//!   (the FFT normalization cancels between `F^H` and `F^{-H}`, so the
//!   adjoint uses the same transforms as the forward pass);
//! * source: `∂L/∂j_τ = ( ⟨G_I, |A_τ|²⟩ − ⟨G_I, I⟩ ) / Σj` for **every**
//!   grid point τ — including currently dark ones, which is exactly what
//!   lets source optimization light up new pole positions.

use bismo_fft::{Complex64, Fft2Plan};
use bismo_optics::{OpticalConfig, Pupil, RealField, Source, SourcePoint};

use crate::error::LithoError;

/// Per-chunk result of the shared gradient pass: the frequency-domain mask
/// accumulator and the per-grid-point source-gradient entries.
type GradChunk = (Vec<Complex64>, Vec<(usize, f64)>);

/// Minimum total source power below which no image is formed.
const DARK_EPS: f64 = 1e-12;

/// Splits `items` into at most `threads` contiguous chunks and runs `f` on
/// each in a scoped worker thread, returning the per-chunk results in order.
/// Shared by every parallel pass of the engine (forward imaging and both
/// gradient paths).
fn fan_out<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&[T]) -> Result<R, LithoError> + Sync,
) -> Result<Vec<R>, LithoError> {
    let nchunks = threads.min(items.len()).max(1);
    let chunk_len = items.len().div_ceil(nchunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("imaging worker panicked"))
            .collect()
    })
}

/// Abbe forward-imaging engine.
///
/// # Examples
///
/// ```
/// use bismo_litho::AbbeImager;
/// use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let abbe = AbbeImager::new(&cfg)?;
/// let src = Source::from_shape(
///     &cfg,
///     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
/// );
/// // A fully clear mask images to (near) unit intensity everywhere.
/// let clear = RealField::filled(cfg.mask_dim(), 1.0);
/// let i = abbe.intensity(&src, &clear)?;
/// assert!((i.max() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AbbeImager {
    cfg: OpticalConfig,
    pupil: Pupil,
    plan: Fft2Plan,
    threads: usize,
    min_weight: f64,
}

impl AbbeImager {
    /// Creates an engine for `cfg`'s grids, running single-threaded.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask dimension is not FFT-compatible (the
    /// config validates this, so only hand-rolled configs can fail here).
    pub fn new(cfg: &OpticalConfig) -> Result<Self, LithoError> {
        Ok(AbbeImager {
            cfg: cfg.clone(),
            pupil: Pupil::new(cfg),
            plan: Fft2Plan::new(cfg.mask_dim(), cfg.mask_dim())?,
            threads: 1,
            min_weight: 1e-9,
        })
    }

    /// Sets the number of worker threads used to parallelize over source
    /// points (the paper's GPU-acceleration axis, §3.1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the weight below which a source point is skipped in forward
    /// passes (its contribution to the image is below `min_weight / Σj`).
    #[must_use]
    pub fn with_min_weight(mut self, min_weight: f64) -> Self {
        self.min_weight = min_weight.max(0.0);
        self
    }

    /// Adds a defocus aberration of `z` nanometres to the projection pupil
    /// (see [`Pupil::with_defocus`]); the adjoint gradients automatically
    /// pick up the conjugate phase.
    #[must_use]
    pub fn with_defocus(mut self, z_nm: f64) -> Self {
        self.pupil = self.pupil.clone().with_defocus(z_nm);
        self
    }

    /// The configuration this engine was built for.
    #[inline]
    pub fn config(&self) -> &OpticalConfig {
        &self.cfg
    }

    /// Configured worker thread count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn check_inputs(&self, source: &Source, mask: &RealField) -> Result<f64, LithoError> {
        let n = self.cfg.mask_dim();
        if mask.dim() != n {
            return Err(LithoError::Shape(format!(
                "mask is {}×{0}, engine expects {n}×{n}",
                mask.dim()
            )));
        }
        if source.dim() != self.cfg.source_dim() {
            return Err(LithoError::Shape(format!(
                "source is {}×{0}, engine expects {1}×{1}",
                source.dim(),
                self.cfg.source_dim()
            )));
        }
        let s = source.total_weight();
        if s < DARK_EPS {
            return Err(LithoError::DarkSource);
        }
        Ok(s)
    }

    /// Spectrum `O = F(M)` of a real mask.
    fn mask_spectrum(&self, mask: &RealField) -> Result<Vec<Complex64>, LithoError> {
        let mut o: Vec<Complex64> = mask
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        self.plan.forward(&mut o)?;
        Ok(o)
    }

    /// Fills `out` with `H_σ ⊙ O` for the shifted pupil of one source point
    /// (complex `H_σ` when the pupil carries a defocus phase).
    fn apply_shifted_pupil(
        &self,
        o: &[Complex64],
        out: &mut [Complex64],
        shift_f: f64,
        shift_g: f64,
    ) {
        let n = self.cfg.mask_dim();
        if self.pupil.is_real() {
            for row in 0..n {
                for col in 0..n {
                    let idx = row * n + col;
                    let h = self.pupil.shifted_at(row, col, shift_f, shift_g);
                    out[idx] = if h > 0.0 { o[idx] } else { Complex64::ZERO };
                }
            }
        } else {
            for row in 0..n {
                for col in 0..n {
                    let idx = row * n + col;
                    out[idx] = o[idx] * self.pupil.shifted_complex(row, col, shift_f, shift_g);
                }
            }
        }
    }

    /// Accumulates `w · H̄_σ ⊙ back` into `acc` — the frequency-domain half
    /// of the mask adjoint.
    fn accumulate_adjoint(
        &self,
        acc: &mut [Complex64],
        back: &[Complex64],
        w: f64,
        shift_f: f64,
        shift_g: f64,
    ) {
        let n = self.cfg.mask_dim();
        if self.pupil.is_real() {
            for row in 0..n {
                for col in 0..n {
                    let k = row * n + col;
                    let h = self.pupil.shifted_at(row, col, shift_f, shift_g);
                    if h > 0.0 {
                        acc[k] += back[k].scale(w);
                    }
                }
            }
        } else {
            for row in 0..n {
                for col in 0..n {
                    let k = row * n + col;
                    let h = self.pupil.shifted_complex(row, col, shift_f, shift_g);
                    acc[k] += back[k] * h.conj().scale(w);
                }
            }
        }
    }

    /// Per-chunk worker: accumulates `Σ j_σ |A_σ|²` for a set of points.
    fn intensity_chunk(
        &self,
        o: &[Complex64],
        points: &[SourcePoint],
    ) -> Result<Vec<f64>, LithoError> {
        let n2 = o.len();
        let mut partial = vec![0.0; n2];
        let mut scratch = vec![Complex64::ZERO; n2];
        for p in points {
            self.apply_shifted_pupil(o, &mut scratch, p.freq_f, p.freq_g);
            self.plan.inverse(&mut scratch)?;
            for (acc, a) in partial.iter_mut().zip(&scratch) {
                *acc += p.weight * a.norm_sqr();
            }
        }
        Ok(partial)
    }

    /// Computes the aerial image `I = (1/Σj) Σ_σ j_σ |A_σ|²` (Eq. 2 with
    /// dose normalization).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid mismatches,
    /// [`LithoError::DarkSource`] when the source carries no power, and FFT
    /// errors from the transform layer.
    pub fn intensity(&self, source: &Source, mask: &RealField) -> Result<RealField, LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        let o = self.mask_spectrum(mask)?;
        let points = source.effective_points(self.min_weight);
        let n = self.cfg.mask_dim();
        let mut total = vec![0.0; n * n];

        if self.threads <= 1 || points.len() < 2 {
            let partial = self.intensity_chunk(&o, &points)?;
            for (t, p) in total.iter_mut().zip(&partial) {
                *t = p / s_total;
            }
            return Ok(RealField::from_vec(n, total));
        }

        let partials = fan_out(&points, self.threads, |chunk| {
            self.intensity_chunk(&o, chunk)
        })?;
        for partial in partials {
            for (t, p) in total.iter_mut().zip(&partial) {
                *t += p;
            }
        }
        for t in &mut total {
            *t /= s_total;
        }
        Ok(RealField::from_vec(n, total))
    }

    /// Computes `∂L/∂M` and `∂L/∂j` in one shared pass, given the upstream
    /// intensity gradient `g_intensity = ∂L/∂I` and the forward image
    /// `intensity` (needed by the dose-normalization term of the source
    /// gradient).
    ///
    /// The source gradient is returned on the full `N_j × N_j` grid in
    /// row-major order; dark grid points get real gradients too.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`].
    pub fn gradients(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<(RealField, Vec<f64>), LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        let n = self.cfg.mask_dim();
        if g_intensity.dim() != n || intensity.dim() != n {
            return Err(LithoError::Shape(
                "gradient/intensity field dimension mismatch".into(),
            ));
        }
        let o = self.mask_spectrum(mask)?;
        let g_dot_i = g_intensity.dot(intensity);
        let nj = source.dim();
        let all_indices: Vec<usize> = (0..nj * nj).collect();

        let run_chunk = |indices: &[usize]| -> Result<GradChunk, LithoError> {
            let mut acc_freq = vec![Complex64::ZERO; n * n];
            let mut src_grad = Vec::with_capacity(indices.len());
            let mut a_field = vec![Complex64::ZERO; n * n];
            let mut back = vec![Complex64::ZERO; n * n];
            for &idx in indices {
                let (row, col) = (idx / nj, idx % nj);
                let (sx, sy) = source.sigma_coords(row, col);
                let shift_f = sx * self.cfg.source_freq_scale();
                let shift_g = sy * self.cfg.source_freq_scale();
                let weight = source.weights()[idx];

                // A_τ = F⁻¹(H_τ ⊙ O).
                self.apply_shifted_pupil(&o, &mut a_field, shift_f, shift_g);
                self.plan.inverse(&mut a_field)?;

                // Source gradient: (⟨G, |A_τ|²⟩ − ⟨G, I⟩) / Σj.
                let g_dot_a: f64 = g_intensity
                    .as_slice()
                    .iter()
                    .zip(&a_field)
                    .map(|(&g, a)| g * a.norm_sqr())
                    .sum();
                src_grad.push((idx, (g_dot_a - g_dot_i) / s_total));

                // Mask-gradient accumulation: w_τ · H̄_τ ⊙ F(G ⊙ A_τ).
                if weight > self.min_weight {
                    let w = weight / s_total;
                    for ((b, a), &g) in back.iter_mut().zip(&a_field).zip(g_intensity.as_slice()) {
                        *b = a.scale(g);
                    }
                    self.plan.forward(&mut back)?;
                    self.accumulate_adjoint(&mut acc_freq, &back, w, shift_f, shift_g);
                }
            }
            Ok((acc_freq, src_grad))
        };

        let (mut acc_freq, src_entries) = if self.threads <= 1 || all_indices.len() < 2 {
            run_chunk(&all_indices)?
        } else {
            let results = fan_out(&all_indices, self.threads, run_chunk)?;
            let mut acc = vec![Complex64::ZERO; n * n];
            let mut entries = Vec::with_capacity(nj * nj);
            for (partial_acc, partial_entries) in results {
                for (a, p) in acc.iter_mut().zip(&partial_acc) {
                    *a += *p;
                }
                entries.extend(partial_entries);
            }
            (acc, entries)
        };

        self.plan.inverse(&mut acc_freq)?;
        let grad_mask =
            RealField::from_vec(n, acc_freq.iter().map(|z| 2.0 * z.re).collect::<Vec<_>>());
        let mut grad_source = vec![0.0; nj * nj];
        for (idx, g) in src_entries {
            grad_source[idx] = g;
        }
        Ok((grad_mask, grad_source))
    }

    /// Computes only `∂L/∂j` (the lower-level SO gradient). Skips the
    /// per-point backward FFT of the mask accumulation, roughly halving the
    /// cost of the unrolled inner steps and Hessian-vector products of
    /// Algorithm 2.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`].
    pub fn grad_source(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<Vec<f64>, LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        let n = self.cfg.mask_dim();
        if g_intensity.dim() != n || intensity.dim() != n {
            return Err(LithoError::Shape(
                "gradient/intensity field dimension mismatch".into(),
            ));
        }
        let o = self.mask_spectrum(mask)?;
        let g_dot_i = g_intensity.dot(intensity);
        let nj = source.dim();
        let all_indices: Vec<usize> = (0..nj * nj).collect();

        let run_chunk = |indices: &[usize]| -> Result<Vec<(usize, f64)>, LithoError> {
            let mut out = Vec::with_capacity(indices.len());
            let mut a_field = vec![Complex64::ZERO; n * n];
            for &idx in indices {
                let (row, col) = (idx / nj, idx % nj);
                let (sx, sy) = source.sigma_coords(row, col);
                let shift_f = sx * self.cfg.source_freq_scale();
                let shift_g = sy * self.cfg.source_freq_scale();
                self.apply_shifted_pupil(&o, &mut a_field, shift_f, shift_g);
                self.plan.inverse(&mut a_field)?;
                let g_dot_a: f64 = g_intensity
                    .as_slice()
                    .iter()
                    .zip(&a_field)
                    .map(|(&g, a)| g * a.norm_sqr())
                    .sum();
                out.push((idx, (g_dot_a - g_dot_i) / s_total));
            }
            Ok(out)
        };

        let entries = if self.threads <= 1 || all_indices.len() < 2 {
            run_chunk(&all_indices)?
        } else {
            let results = fan_out(&all_indices, self.threads, run_chunk)?;
            let mut entries = Vec::with_capacity(nj * nj);
            for partial in results {
                entries.extend(partial);
            }
            entries
        };
        let mut grad = vec![0.0; nj * nj];
        for (idx, g) in entries {
            grad[idx] = g;
        }
        Ok(grad)
    }

    /// Convenience wrapper computing only the mask gradient (used by the
    /// mask-only Abbe-MO driver where the source is fixed).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbbeImager::intensity`].
    pub fn grad_mask(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        let s_total = self.check_inputs(source, mask)?;
        let n = self.cfg.mask_dim();
        let o = self.mask_spectrum(mask)?;
        let points = source.effective_points(self.min_weight);

        let mut acc_freq = vec![Complex64::ZERO; n * n];
        let mut a_field = vec![Complex64::ZERO; n * n];
        for p in &points {
            self.apply_shifted_pupil(&o, &mut a_field, p.freq_f, p.freq_g);
            self.plan.inverse(&mut a_field)?;
            let w = p.weight / s_total;
            for (a, &g) in a_field.iter_mut().zip(g_intensity.as_slice()) {
                *a = a.scale(g);
            }
            self.plan.forward(&mut a_field)?;
            self.accumulate_adjoint(&mut acc_freq, &a_field, w, p.freq_f, p.freq_g);
        }
        self.plan.inverse(&mut acc_freq)?;
        Ok(RealField::from_vec(
            n,
            acc_freq.iter().map(|z| 2.0 * z.re).collect::<Vec<_>>(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismo_optics::SourceShape;

    fn setup() -> (OpticalConfig, AbbeImager, Source) {
        let cfg = OpticalConfig::test_small();
        let abbe = AbbeImager::new(&cfg).unwrap();
        let src = Source::from_shape(
            &cfg,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        (cfg, abbe, src)
    }

    fn square_mask(n: usize, half: usize) -> RealField {
        RealField::from_fn(n, |r, c| {
            let dr = r as isize - n as isize / 2;
            let dc = c as isize - n as isize / 2;
            if dr.unsigned_abs() < half && dc.unsigned_abs() < half {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dark_mask_images_dark() {
        let (cfg, abbe, src) = setup();
        let i = abbe
            .intensity(&src, &RealField::zeros(cfg.mask_dim()))
            .unwrap();
        assert!(i.max() < 1e-15);
    }

    #[test]
    fn clear_mask_images_to_unit_intensity() {
        let (cfg, abbe, src) = setup();
        let i = abbe
            .intensity(&src, &RealField::filled(cfg.mask_dim(), 1.0))
            .unwrap();
        assert!((i.min() - 1.0).abs() < 1e-9, "min {}", i.min());
        assert!((i.max() - 1.0).abs() < 1e-9, "max {}", i.max());
    }

    #[test]
    fn intensity_is_nonnegative_and_bounded() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i = abbe.intensity(&src, &m).unwrap();
        assert!(i.min() >= 0.0);
        // A binary mask cannot brighten above ~clear field by much
        // (ringing allows slight overshoot).
        assert!(i.max() < 1.6, "max {}", i.max());
    }

    #[test]
    fn dark_source_is_error() {
        let (cfg, abbe, _) = setup();
        let dark = Source::dark(&cfg);
        let m = square_mask(cfg.mask_dim(), 8);
        assert!(matches!(
            abbe.intensity(&dark, &m),
            Err(LithoError::DarkSource)
        ));
    }

    #[test]
    fn wrong_mask_dim_is_error() {
        let (_, abbe, src) = setup();
        let m = RealField::zeros(16);
        assert!(matches!(
            abbe.intensity(&src, &m),
            Err(LithoError::Shape(_))
        ));
    }

    #[test]
    fn intensity_scales_invariant_to_source_power() {
        // Doubling every source weight leaves the normalized image unchanged.
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i1 = abbe.intensity(&src, &m).unwrap();
        let doubled = Source::from_weights(
            &cfg,
            src.weights().iter().map(|w| w * 2.0).collect::<Vec<_>>(),
        );
        let i2 = abbe.intensity(&doubled, &m).unwrap();
        for (a, b) in i1.as_slice().iter().zip(i2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let i1 = abbe.intensity(&src, &m).unwrap();
        let abbe4 = AbbeImager::new(&cfg).unwrap().with_threads(4);
        let i4 = abbe4.intensity(&src, &m).unwrap();
        for (a, b) in i1.as_slice().iter().zip(i4.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mask_gradient_matches_finite_difference() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        // Grayscale mask so the derivative is probed off the binary corners.
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        // Loss L = Σ c(x) I(x) with fixed random-ish coefficients c.
        let coeff = RealField::from_fn(n, |r, c| ((r * 31 + c * 17) % 7) as f64 / 7.0 - 0.4);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm, _) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();

        let eps = 1e-5;
        for &(r, c) in &[
            (n / 2, n / 2),
            (n / 2 - 8, n / 2),
            (3, 5),
            (n / 2, n / 2 + 7),
        ] {
            let mut mp = m.clone();
            mp[(r, c)] += eps;
            let mut mm = m.clone();
            mm[(r, c)] -= eps;
            let lp = abbe.intensity(&src, &mp).unwrap().dot(&coeff);
            let lm = abbe.intensity(&src, &mm).unwrap().dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gm[(r, c)];
            assert!(
                (numeric - analytic).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn source_gradient_matches_finite_difference() {
        // Grayscale, strictly positive weights keep every point above the
        // effective threshold under ±ε perturbation (central differences are
        // only valid where the forward map is smooth in the weights).
        let (cfg, abbe, _) = setup();
        let nj = cfg.source_dim();
        let src = Source::from_weights(
            &cfg,
            (0..nj * nj)
                .map(|i| 0.15 + 0.7 * ((i * 7 % 10) as f64) / 10.0)
                .collect::<Vec<_>>(),
        );
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.1 + 0.8 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 13 + c * 29) % 5) as f64 / 5.0 - 0.3);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (_, gj) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();

        let eps = 1e-5;
        let nj = src.dim();
        // Probe a lit point, a dark point, and the center.
        for &idx in &[0usize, nj * nj / 2, nj + 1, nj * nj - 1] {
            let mut wp = src.weights().to_vec();
            wp[idx] += eps;
            let mut wm = src.weights().to_vec();
            wm[idx] -= eps;
            let lp = abbe
                .intensity(&Source::from_weights(&cfg, wp), &m)
                .unwrap()
                .dot(&coeff);
            let lm = abbe
                .intensity(&Source::from_weights(&cfg, wm), &m)
                .unwrap()
                .dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gj[idx];
            assert!(
                (numeric - analytic).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "τ={idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradients_multithreaded_match_single_thread() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r + c) % 3) as f64 - 1.0);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm1, gj1) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let abbe2 = AbbeImager::new(&cfg).unwrap().with_threads(3);
        let (gm2, gj2) = abbe2.gradients(&src, &m, &coeff, &i0).unwrap();
        for (a, b) in gm1.as_slice().iter().zip(gm2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in gj1.iter().zip(&gj2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn defocus_blurs_the_image() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let focused = abbe.intensity(&src, &m).unwrap();
        let defocused = AbbeImager::new(&cfg)
            .unwrap()
            .with_defocus(150.0)
            .intensity(&src, &m)
            .unwrap();
        // Defocus softens the image: the peak drops.
        assert!(defocused.max() < focused.max());
        // Energy is only redistributed by a pure-phase aberration, so the
        // totals stay close (windowing effects aside).
        let rel = (defocused.sum() - focused.sum()).abs() / focused.sum();
        assert!(rel < 0.05, "energy drift {rel}");
    }

    #[test]
    fn zero_defocus_matches_plain_engine_exactly() {
        let (cfg, abbe, src) = setup();
        let m = square_mask(cfg.mask_dim(), 8);
        let a = abbe.intensity(&src, &m).unwrap();
        let b = AbbeImager::new(&cfg)
            .unwrap()
            .with_defocus(0.0)
            .intensity(&src, &m)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn defocused_mask_gradient_matches_finite_difference() {
        // The adjoint must carry the conjugate defocus phase; this test
        // fails loudly if the conjugation is dropped.
        let (cfg, _, _) = setup();
        // Grayscale strictly-positive weights so ±ε stays above the
        // effective-point threshold for the source-gradient check.
        let nj = cfg.source_dim();
        let src = Source::from_weights(
            &cfg,
            (0..nj * nj)
                .map(|i| 0.15 + 0.7 * ((i * 3 % 10) as f64) / 10.0)
                .collect::<Vec<_>>(),
        );
        let abbe = AbbeImager::new(&cfg).unwrap().with_defocus(120.0);
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 11 + c * 5) % 6) as f64 / 6.0 - 0.3);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm, gj) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let eps = 1e-5;
        for &(r, c) in &[(n / 2, n / 2), (n / 2 - 6, n / 2 + 4), (4, 7)] {
            let mut mp = m.clone();
            mp[(r, c)] += eps;
            let mut mm = m.clone();
            mm[(r, c)] -= eps;
            let lp = abbe.intensity(&src, &mp).unwrap().dot(&coeff);
            let lm = abbe.intensity(&src, &mm).unwrap().dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
        // Source gradient under defocus, spot check one grid point.
        let idx = src.dim() + 2;
        let mut wp = src.weights().to_vec();
        wp[idx] += eps;
        let mut wm = src.weights().to_vec();
        wm[idx] -= eps;
        let lp = abbe
            .intensity(&Source::from_weights(&cfg, wp), &m)
            .unwrap()
            .dot(&coeff);
        let lm = abbe
            .intensity(&Source::from_weights(&cfg, wm), &m)
            .unwrap()
            .dot(&coeff);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - gj[idx]).abs() < 1e-6 + 1e-4 * numeric.abs(),
            "τ={idx}: numeric {numeric} vs analytic {}",
            gj[idx]
        );
    }

    #[test]
    fn grad_source_only_matches_full_gradients() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.3 + 0.5 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 3 + c) % 4) as f64 / 4.0 - 0.2);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (_, gj_full) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let gj_only = abbe.grad_source(&src, &m, &coeff, &i0).unwrap();
        for (a, b) in gj_full.iter().zip(&gj_only) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn grad_mask_convenience_matches_full_gradients() {
        let (cfg, abbe, src) = setup();
        let n = cfg.mask_dim();
        let m = square_mask(n, 6);
        let coeff = RealField::filled(n, 0.5);
        let i0 = abbe.intensity(&src, &m).unwrap();
        let (gm_full, _) = abbe.gradients(&src, &m, &coeff, &i0).unwrap();
        let gm_only = abbe.grad_mask(&src, &m, &coeff).unwrap();
        for (a, b) in gm_full.as_slice().iter().zip(gm_only.as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
