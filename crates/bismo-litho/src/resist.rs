//! Sigmoid threshold resist model (paper Eq. 6) and dose process corners.
//!
//! `Z = sigmoid(β · (I − I_tr))` maps aerial intensity to a smooth resist
//! image; the sigmoid keeps the whole pipeline differentiable. Process-window
//! evaluation scales the mask transmission by dose factors `d_min`, `d_max`
//! (±2% in the paper) before imaging.

use bismo_optics::RealField;

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid threshold resist model.
///
/// # Examples
///
/// ```
/// use bismo_litho::ResistModel;
/// use bismo_optics::RealField;
///
/// let resist = ResistModel::new(30.0, 0.225);
/// let aerial = RealField::filled(4, 1.0);
/// let z = resist.develop(&aerial);
/// assert!(z.as_slice().iter().all(|&v| v > 0.99)); // bright field prints
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistModel {
    beta: f64,
    threshold: f64,
}

impl ResistModel {
    /// Creates a resist model with sigmoid steepness `beta` (paper: β = 30)
    /// and intensity threshold `threshold` (`I_tr`).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not strictly positive.
    pub fn new(beta: f64, threshold: f64) -> Self {
        assert!(beta > 0.0, "resist steepness must be positive");
        ResistModel { beta, threshold }
    }

    /// Sigmoid steepness β.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Intensity threshold `I_tr`.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Develops an aerial image into a resist image (Eq. 6).
    #[must_use]
    pub fn develop(&self, intensity: &RealField) -> RealField {
        intensity.map(|i| sigmoid(self.beta * (i - self.threshold)))
    }

    /// Pointwise derivative `∂Z/∂I = β·Z·(1−Z)` evaluated from a developed
    /// resist image (cheaper than re-deriving from intensity).
    #[must_use]
    pub fn develop_grad_from_resist(&self, resist: &RealField) -> RealField {
        resist.map(|z| self.beta * z * (1.0 - z))
    }

    /// Hard-thresholded (binary) resist image at `Z ≥ 0.5`; used by the EPE
    /// and PVB metrics, which are defined on printed contours.
    #[must_use]
    pub fn print(&self, intensity: &RealField) -> RealField {
        intensity.map(|i| if i >= self.threshold { 1.0 } else { 0.0 })
    }
}

/// Dose corners of the process window (paper §3.1: ±2% dose).
///
/// The fields are private so every value in circulation has passed
/// [`DoseCorners::new`]'s validation — a literal-constructed corner pair
/// like `{min: 1.1, max: 0.9}` (or a NaN/infinite factor) can no longer
/// slip into the objective and silently invert or explode the
/// process-window term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoseCorners {
    /// Minimum-dose factor `d_min` (`0 < d_min ≤ 1`).
    min: f64,
    /// Maximum-dose factor `d_max` (`≥ 1`, finite).
    max: f64,
}

impl DoseCorners {
    /// The paper's ±2% dose range.
    pub const PAPER: DoseCorners = DoseCorners {
        min: 0.98,
        max: 1.02,
    };

    /// Creates custom corners.
    ///
    /// # Panics
    ///
    /// Panics unless both factors are finite and `0 < min ≤ 1 ≤ max` — the
    /// corners must straddle the nominal dose.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min > 0.0 && min <= 1.0 && max >= 1.0,
            "dose corners must be finite and straddle nominal dose \
             (0 < min ≤ 1 ≤ max), got min={min}, max={max}"
        );
        DoseCorners { min, max }
    }

    /// Minimum-dose factor `d_min`.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum-dose factor `d_max`.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for DoseCorners {
    fn default() -> Self {
        DoseCorners::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(50.0) > 1.0 - 1e-15);
        assert!(sigmoid(-50.0) < 1e-15);
        // Stability at extremes.
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = sigmoid(-10.0);
        for k in -99..100 {
            let v = sigmoid(k as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn develop_thresholds_around_itr() {
        let r = ResistModel::new(30.0, 0.3);
        let i = RealField::from_vec(2, vec![0.0, 0.3, 0.6, 1.0]);
        let z = r.develop(&i);
        assert!(z.as_slice()[0] < 0.01);
        assert!((z.as_slice()[1] - 0.5).abs() < 1e-12);
        assert!(z.as_slice()[2] > 0.99);
    }

    #[test]
    fn develop_grad_matches_finite_difference() {
        let r = ResistModel::new(30.0, 0.225);
        let eps = 1e-6;
        for &i0 in &[0.0, 0.1, 0.225, 0.3, 0.9] {
            let up = sigmoid(r.beta() * (i0 + eps - r.threshold()));
            let dn = sigmoid(r.beta() * (i0 - eps - r.threshold()));
            let numeric = (up - dn) / (2.0 * eps);
            let z = RealField::filled(1, sigmoid(r.beta() * (i0 - r.threshold())));
            let analytic = r.develop_grad_from_resist(&z).as_slice()[0];
            assert!(
                (numeric - analytic).abs() < 1e-5 * numeric.abs().max(1e-3),
                "at I={i0}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn print_is_binary() {
        let r = ResistModel::new(30.0, 0.5);
        let i = RealField::from_vec(2, vec![0.49, 0.5, 0.51, 2.0]);
        let p = r.print(&i);
        assert_eq!(p.as_slice(), &[0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn paper_dose_corners() {
        let d = DoseCorners::default();
        assert_eq!(d, DoseCorners::PAPER);
        assert_eq!(d.min(), 0.98);
        assert_eq!(d.max(), 1.02);
    }

    #[test]
    fn valid_dose_corners_are_accepted() {
        let d = DoseCorners::new(0.95, 1.05);
        assert_eq!(d.min(), 0.95);
        assert_eq!(d.max(), 1.05);
        // The degenerate-but-legal nominal-only window.
        let nominal = DoseCorners::new(1.0, 1.0);
        assert_eq!((nominal.min(), nominal.max()), (1.0, 1.0));
    }

    #[test]
    fn nonsense_dose_corners_fail_fast() {
        // Every class of nonsense must panic at construction instead of
        // being accepted and silently poisoning the PVB term.
        for (min, max) in [
            (1.1, 1.2),                // both above nominal
            (0.8, 0.9),                // both below nominal
            (0.0, 1.02),               // zero dose
            (-0.5, 1.02),              // negative dose
            (f64::NAN, 1.02),          // NaN min
            (0.98, f64::NAN),          // NaN max
            (0.98, f64::INFINITY),     // infinite max
            (f64::NEG_INFINITY, 1.02), // infinite min
        ] {
            let caught = std::panic::catch_unwind(|| DoseCorners::new(min, max));
            assert!(caught.is_err(), "accepted nonsense corners ({min}, {max})");
        }
    }

    #[test]
    #[should_panic(expected = "steepness must be positive")]
    fn bad_beta_panics() {
        let _ = ResistModel::new(0.0, 0.2);
    }
}
