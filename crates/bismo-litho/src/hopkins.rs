//! Hopkins imaging via transmission cross-coefficients and the Sum of
//! Coherent Systems decomposition (paper Eq. 3–4).
//!
//! The TCC is assembled on the band-limited frequency support of the pupil
//! (everything outside `|f| ≤ NA/λ` contributes nothing), eigendecomposed,
//! and truncated to the top `Q` kernels. The whole construction is baked
//! against a **fixed source** — which is precisely why Hopkins cannot drive
//! source optimization (§2.1): the source information is destroyed by the
//! SVD truncation. The type system mirrors this: [`HopkinsImager`] exposes
//! mask gradients but has no source-gradient method.

use std::sync::Arc;

use bismo_fft::{Complex64, Fft2Plan, Fft2Workspace};
use bismo_linalg::{eigh_jacobi, top_eigenpairs, Eigh, HermitianMatrix};
use bismo_optics::{
    ImagingCore, OpticalConfig, Pupil, RealField, ShiftedPupilEntry, ShiftedPupilTable, Source,
    SourcePoint,
};

use crate::batch::{check_batch_shape, IntensityBatch, MaskBatch};
use crate::error::LithoError;
use crate::kernel_cache::{self, TccKernels};

/// Hermitian inner product `⟨a, b⟩ = Σ conj(a_k)·b_k` over two cached
/// shifted-pupil entries (lit-bin lists in ascending flat-index order).
fn entry_hermitian_dot(a: ShiftedPupilEntry<'_>, b: ShiftedPupilEntry<'_>) -> Complex64 {
    let (mut i, mut j) = (0, 0);
    let mut acc = Complex64::ZERO;
    while i < a.indices.len() && j < b.indices.len() {
        match a.indices[i].cmp(&b.indices[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a.value_at(i).conj() * b.value_at(j);
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Gram-matrix dimension threshold below which the exact Jacobi eigensolver
/// is used; above it, randomized subspace iteration.
pub(crate) const DENSE_EIG_LIMIT: usize = 260;

/// Construction options for the TCC build (DESIGN.md §13): assembly
/// worker-thread count and cache routing. The default (`threads: 0`,
/// cache on) is what [`HopkinsImager::new`] and friends use.
#[derive(Debug, Clone, Copy, Default)]
pub struct TccBuild {
    /// Worker threads for the Gram assembly and the kernel lift; `0` (the
    /// default) uses the machine's available parallelism. Threading is a
    /// scheduling choice, never a numerical one: the assembled matrix and
    /// the final kernels are bit-identical at any thread count (§9).
    pub threads: usize,
    /// Skip the process-wide [`crate::KernelCache`] entirely — always
    /// build fresh, never insert. Benchmarks use this to time true cold
    /// builds; tests use it to pin cached kernels against an uncached
    /// reference.
    pub bypass_cache: bool,
}

impl TccBuild {
    /// Resolves the requested thread count against `units` independent
    /// work items: `0` means available parallelism, and no more workers
    /// than items are ever spawned.
    fn workers(self, units: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        t.clamp(1, units.max(1))
    }
}

/// One SOCS kernel: eigenvalue κ_q and the frequency-domain eigenvector
/// φ_q restricted to the pupil support.
#[derive(Debug, Clone)]
pub struct SocsKernel {
    /// Eigenvalue κ_q of the TCC (non-negative for a physical source).
    pub kappa: f64,
    /// Eigenvector entries, aligned with [`HopkinsImager::support`].
    pub phi: Vec<Complex64>,
}

/// Hopkins/SOCS forward-imaging engine for a fixed illumination source.
///
/// # Examples
///
/// ```
/// use bismo_litho::HopkinsImager;
/// use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let src = Source::from_shape(
///     &cfg,
///     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
/// );
/// let hopkins = HopkinsImager::new(&cfg, &src, 24)?;
/// let clear = RealField::filled(cfg.mask_dim(), 1.0);
/// let i = hopkins.intensity(&clear)?;
/// assert!(i.max() <= 1.0 + 1e-9); // truncation only loses energy
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HopkinsImager {
    cfg: OpticalConfig,
    plan: Fft2Plan,
    /// The kernel bundle, shared with the process-wide cache (and with
    /// every other engine built from the same inputs). Cloning an imager —
    /// or hitting the cache — shares the bundle instead of copying it.
    tcc: Arc<TccKernels>,
    /// The frozen illumination the TCC was baked against.
    source: Source,
}

impl HopkinsImager {
    /// Builds the TCC for `source`, eigendecomposes it and keeps the top
    /// `q` kernels. This is the expensive, per-source preprocessing step the
    /// paper's runtime analysis charges to the hybrid AM-SMO baseline.
    ///
    /// The TCC `T = Σ_σ (j_σ/Σj) · h_σ h_σ^T` (with `h_σ` the shifted-pupil
    /// indicator on the extended frequency support, which reaches out to
    /// `2·NA/λ` — shifted pupils extend past the unshifted pupil!) has rank
    /// at most the number of source points, so its nonzero eigenpairs are
    /// recovered exactly from the σ×σ **Gram matrix**
    /// `G[σ,τ] = √(w_σ w_τ) · |supp(h_σ) ∩ supp(h_τ)|`:
    /// if `G u = λ u` then `v = (Σ_σ √w_σ u_σ h_σ)/√λ` satisfies `T v = λ v`.
    /// This keeps the eigenproblem at source-grid size instead of
    /// frequency-support size.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::DarkSource`] for a powerless source and
    /// propagates eigensolver failures.
    pub fn new(cfg: &OpticalConfig, source: &Source, q: usize) -> Result<Self, LithoError> {
        HopkinsImager::with_pupil(cfg, Pupil::new(cfg), source, q)
    }

    /// Like [`HopkinsImager::new`] but against an explicit (possibly
    /// defocused/aberrated, hence complex) pupil.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HopkinsImager::new`].
    pub fn with_pupil(
        cfg: &OpticalConfig,
        pupil: Pupil,
        source: &Source,
        q: usize,
    ) -> Result<Self, LithoError> {
        Self::with_pupil_build(cfg, pupil, source, q, TccBuild::default())
    }

    /// Like [`HopkinsImager::with_pupil`] with explicit [`TccBuild`]
    /// options. On a kernel-cache hit the shifted-pupil table is never
    /// evaluated and the eigensolver never runs — construction collapses to
    /// an FFT-plan build plus an `Arc` clone of the cached bundle.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HopkinsImager::new`].
    pub fn with_pupil_build(
        cfg: &OpticalConfig,
        pupil: Pupil,
        source: &Source,
        q: usize,
        build: TccBuild,
    ) -> Result<Self, LithoError> {
        Self::validate(cfg, source)?;
        let points = source.effective_points(1e-12);
        let key = kernel_cache::fingerprint(cfg, &pupil, &points, source, q);
        let plan = Fft2Plan::new(cfg.mask_dim(), cfg.mask_dim())?;
        let build_fresh = || {
            // Shifted pupils of the lit source points only (the full grid
            // would be wasted work for a one-off build).
            let selected: Vec<usize> = points.iter().map(|p| p.index).collect();
            let shifted = ShiftedPupilTable::for_points(cfg, &pupil, &selected);
            Self::build_tcc(&shifted, &points, source.total_weight(), q, build)
        };
        let tcc = if build.bypass_cache {
            Arc::new(build_fresh()?)
        } else {
            kernel_cache::acquire(key, cfg.mask_dim(), build_fresh)?
        };
        Ok(HopkinsImager {
            cfg: cfg.clone(),
            plan,
            tcc,
            source: source.clone(),
        })
    }

    /// Builds the TCC against a shared [`ImagingCore`], reusing its
    /// precomputed full-grid [`ShiftedPupilTable`] and FFT plan instead of
    /// re-evaluating shifted pupils. The kernels are bit-identical to
    /// [`HopkinsImager::with_pupil`] with the core's pupil (the table caches
    /// exact analytic values either way); only the construction cost
    /// changes. This is the constructor the parallel suite runner and the
    /// hybrid AM-SMO driver use so that repeated TCC builds share one
    /// table.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HopkinsImager::new`].
    pub fn with_core(core: &ImagingCore, source: &Source, q: usize) -> Result<Self, LithoError> {
        Self::with_core_build(core, source, q, TccBuild::default())
    }

    /// Like [`HopkinsImager::with_core`] with explicit [`TccBuild`]
    /// options. The cache key is identical to the standalone path's (the
    /// full-grid table caches the exact same analytic values), so engines
    /// built through either constructor share one cached bundle.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HopkinsImager::new`].
    pub fn with_core_build(
        core: &ImagingCore,
        source: &Source,
        q: usize,
        build: TccBuild,
    ) -> Result<Self, LithoError> {
        let cfg = core.config();
        Self::validate(cfg, source)?;
        let points = source.effective_points(1e-12);
        let key = kernel_cache::fingerprint(cfg, core.pupil(), &points, source, q);
        let build_fresh =
            || Self::build_tcc(core.shifted(), &points, source.total_weight(), q, build);
        let tcc = if build.bypass_cache {
            Arc::new(build_fresh()?)
        } else {
            kernel_cache::acquire(key, cfg.mask_dim(), build_fresh)?
        };
        Ok(HopkinsImager {
            cfg: cfg.clone(),
            plan: core.plan().clone(),
            tcc,
            source: source.clone(),
        })
    }

    /// The shared input checks of every constructor (dark source, grid
    /// shape, frequency scale — the same guards as the Abbe engine, so both
    /// backends fail alike).
    fn validate(cfg: &OpticalConfig, source: &Source) -> Result<(), LithoError> {
        if source.total_weight() < 1e-12 {
            return Err(LithoError::DarkSource);
        }
        if source.dim() != cfg.source_dim() {
            return Err(LithoError::Shape(format!(
                "source is {}×{0}, config expects {1}×{1}",
                source.dim(),
                cfg.source_dim()
            )));
        }
        // The TCC is assembled from shifted pupils cached for THIS config's
        // source grid; a source built under a different frequency scale
        // would silently bake kernels at the wrong illumination frequencies.
        if source.freq_scale() != cfg.source_freq_scale() {
            return Err(LithoError::Shape(format!(
                "source frequency scale {} does not match the config's {} — \
                 the source was built under a different optical configuration",
                source.freq_scale(),
                cfg.source_freq_scale()
            )));
        }
        Ok(())
    }

    /// TCC assembly + eigendecomposition + kernel lift over an
    /// already-evaluated shifted-pupil table (which must cover at least
    /// `points`, the effective points of the source — a full-grid table
    /// qualifies; the caller computed `points` once to build/select the
    /// table, so it is passed through instead of re-derived).
    ///
    /// Both expensive stages — the σ(σ+1)/2 independent Gram overlaps and
    /// the per-kernel spectrum lift — fan out over `build.workers(..)`
    /// scoped threads. Work items map to fixed output slots whose
    /// boundaries depend only on σ (never on worker count or finish
    /// order), and each item's floating-point operation DAG is untouched,
    /// so the result is bit-identical at any thread count (§9).
    fn build_tcc(
        shifted: &ShiftedPupilTable,
        points: &[SourcePoint],
        s_total: f64,
        q: usize,
        build: TccBuild,
    ) -> Result<TccKernels, LithoError> {
        let n = shifted.mask_dim();

        // Union support in point-then-flat-index discovery order.
        let mut support_mark = vec![usize::MAX; n * n];
        let mut support: Vec<(usize, usize)> = Vec::new();
        for p in points {
            for &flat in shifted.entry(p.index).indices {
                let flat = flat as usize;
                if support_mark[flat] == usize::MAX {
                    support_mark[flat] = support.len();
                    support.push((flat / n, flat % n));
                }
            }
        }
        let sigma = points.len();

        // Gram matrix G[σ,τ] = √(w_σ w_τ)/Σj · ⟨h_σ, h_τ⟩ (Hermitian PSD;
        // real only for an in-focus binary pupil). The upper triangle is
        // computed into a packed row-major buffer: row `a` owns the slots
        // for pairs (a, a..σ).
        let sqrt_w: Vec<f64> = points.iter().map(|p| (p.weight / s_total).sqrt()).collect();
        let pair_count = sigma * (sigma + 1) / 2;
        let mut overlaps = vec![Complex64::ZERO; pair_count];
        let fill_rows = |buf: &mut [Complex64], first: usize, last: usize| {
            let mut k = 0usize;
            for a in first..last {
                let ea = shifted.entry(points[a].index);
                for p in &points[a..] {
                    buf[k] = entry_hermitian_dot(ea, shifted.entry(p.index));
                    k += 1;
                }
            }
        };
        let workers = build.workers(sigma);
        if workers <= 1 {
            fill_rows(&mut overlaps, 0, sigma);
        } else {
            // Contiguous row blocks balanced by slot count (row a holds
            // σ−a slots). Block boundaries are a pure function of σ and
            // the worker count, and each worker writes only its own
            // disjoint sub-slice, so the packed buffer — and everything
            // downstream — is deterministic.
            std::thread::scope(|scope| {
                let fill_rows = &fill_rows;
                let mut rest: &mut [Complex64] = &mut overlaps;
                let mut row = 0usize;
                let mut remaining = pair_count;
                for w in 0..workers {
                    if row >= sigma {
                        break;
                    }
                    let target = remaining.div_ceil(workers - w);
                    let mut len = 0usize;
                    let mut end = row;
                    while end < sigma && (len == 0 || len + (sigma - end) <= target) {
                        len += sigma - end;
                        end += 1;
                    }
                    let (head, tail) = rest.split_at_mut(len);
                    rest = tail;
                    let first = row;
                    scope.spawn(move || fill_rows(head, first, end));
                    remaining -= len;
                    row = end;
                }
            });
        }
        let mut gram = HermitianMatrix::zeros(sigma);
        let mut slot = 0usize;
        for a in 0..sigma {
            for b in a..sigma {
                let overlap = overlaps[slot];
                slot += 1;
                if overlap.norm_sqr() > 0.0 {
                    gram.set(a, b, overlap.scale(sqrt_w[a] * sqrt_w[b]));
                }
            }
        }
        drop(overlaps);

        let q_eff = q.min(sigma);
        let eig: Eigh = if sigma <= DENSE_EIG_LIMIT {
            eigh_jacobi(&gram, 1e-12, 200)?
        } else {
            top_eigenpairs(&gram, q_eff, 8, 40, 0x5bc5)?
        };

        // Lift Gram eigenvectors to TCC eigenvectors on the support:
        // φ_q = (Σ_σ √w_σ · u_q[σ] · h_σ) / √λ_q. Kernels are mutually
        // independent, so the retained ones fan out over the same worker
        // pool, each filling its own pre-assigned slot.
        let lift = |lam: f64, u: &[Complex64]| -> SocsKernel {
            let inv_sqrt = 1.0 / lam.sqrt();
            let mut phi = vec![Complex64::ZERO; support.len()];
            for (s_idx, p) in points.iter().enumerate() {
                let coef = u[s_idx].scale(sqrt_w[s_idx] * inv_sqrt);
                let entry = shifted.entry(p.index);
                for (pos, &flat) in entry.indices.iter().enumerate() {
                    phi[support_mark[flat as usize]] += coef * entry.value_at(pos);
                }
            }
            SocsKernel { kappa: lam, phi }
        };
        let retained: Vec<(f64, &[Complex64])> = eig
            .values
            .iter()
            .zip(&eig.vectors)
            .take(q_eff)
            .filter(|(lam, _)| **lam > 1e-14)
            .map(|(lam, u)| (*lam, u.as_slice()))
            .collect();
        let kworkers = build.workers(retained.len()).min(workers);
        let kernels: Vec<SocsKernel> = if kworkers <= 1 {
            retained.iter().map(|&(lam, u)| lift(lam, u)).collect()
        } else {
            let chunk = retained.len().div_ceil(kworkers);
            let mut slots: Vec<Option<SocsKernel>> = vec![None; retained.len()];
            std::thread::scope(|scope| {
                for (items, out) in retained.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    let lift = &lift;
                    scope.spawn(move || {
                        for (&(lam, u), slot) in items.iter().zip(out) {
                            *slot = Some(lift(lam, u));
                        }
                    });
                }
            });
            debug_assert!(slots.iter().all(Option::is_some));
            slots.into_iter().flatten().collect()
        };

        Ok(TccKernels {
            support,
            kernels,
            truncation: q_eff,
        })
    }

    /// The configuration this engine was built for.
    #[inline]
    pub fn config(&self) -> &OpticalConfig {
        &self.cfg
    }

    /// The frozen illumination source the TCC was baked against. Exposed so
    /// generic drivers over [`crate::ImagingBackend`] can evaluate the same
    /// objective a source-aware backend would.
    #[inline]
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// The pupil-support frequency bins the kernels live on.
    #[inline]
    pub fn support(&self) -> &[(usize, usize)] {
        &self.tcc.support
    }

    /// Retained SOCS kernels (≤ the requested truncation; zero-eigenvalue
    /// kernels are dropped).
    #[inline]
    pub fn kernels(&self) -> &[SocsKernel] {
        &self.tcc.kernels
    }

    /// The truncation rank `Q` requested at construction.
    #[inline]
    pub fn truncation(&self) -> usize {
        self.tcc.truncation
    }

    fn check_mask(&self, mask: &RealField) -> Result<(), LithoError> {
        if mask.dim() != self.cfg.mask_dim() {
            return Err(LithoError::Shape(format!(
                "mask is {}×{0}, engine expects {1}×{1}",
                mask.dim(),
                self.cfg.mask_dim()
            )));
        }
        Ok(())
    }

    /// Computes the SOCS aerial image `I = Σ_q κ_q |φ_q ⊗ M|²` (Eq. 4,
    /// evaluated in the frequency domain).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid mismatches plus FFT failures.
    pub fn intensity(&self, mask: &RealField) -> Result<RealField, LithoError> {
        self.check_mask(mask)?;
        let n = self.cfg.mask_dim();
        let mut fft_ws = Fft2Workspace::for_plan(&self.plan);
        let mut o: Vec<Complex64> = mask
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        self.plan.forward_with(&mut o, &mut fft_ws)?;

        let mut total = vec![0.0; n * n];
        let mut field = vec![Complex64::ZERO; n * n];
        for kernel in &self.tcc.kernels {
            field.fill(Complex64::ZERO);
            for (i, &(row, col)) in self.tcc.support.iter().enumerate() {
                let k = row * n + col;
                field[k] = kernel.phi[i] * o[k];
            }
            self.plan.inverse_with(&mut field, &mut fft_ws)?;
            for (t, a) in total.iter_mut().zip(&field) {
                *t += kernel.kappa * a.norm_sqr();
            }
        }
        Ok(RealField::from_vec(n, total))
    }

    /// Mask gradient `∂L/∂M = Σ_q 2 κ_q Re{F⁻¹[φ̄_q ⊙ F(G_I ⊙ A_q)]}` given
    /// the upstream intensity gradient.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid mismatches plus FFT failures.
    pub fn grad_mask(
        &self,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        self.check_mask(mask)?;
        self.check_mask(g_intensity)?;
        let n = self.cfg.mask_dim();
        let mut fft_ws = Fft2Workspace::for_plan(&self.plan);
        let mut o: Vec<Complex64> = mask
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        self.plan.forward_with(&mut o, &mut fft_ws)?;

        let mut acc_freq = vec![Complex64::ZERO; n * n];
        let mut field = vec![Complex64::ZERO; n * n];
        for kernel in &self.tcc.kernels {
            field.fill(Complex64::ZERO);
            for (i, &(row, col)) in self.tcc.support.iter().enumerate() {
                let k = row * n + col;
                field[k] = kernel.phi[i] * o[k];
            }
            self.plan.inverse_with(&mut field, &mut fft_ws)?;
            for (a, &g) in field.iter_mut().zip(g_intensity.as_slice()) {
                *a = a.scale(g);
            }
            self.plan.forward_with(&mut field, &mut fft_ws)?;
            for (i, &(row, col)) in self.tcc.support.iter().enumerate() {
                let k = row * n + col;
                acc_freq[k] += kernel.phi[i].conj() * field[k].scale(kernel.kappa);
            }
        }
        self.plan.inverse_with(&mut acc_freq, &mut fft_ws)?;
        Ok(RealField::from_vec(
            n,
            acc_freq.iter().map(|z| 2.0 * z.re).collect::<Vec<_>>(),
        ))
    }

    /// Fused batched SOCS imaging: computes the aerial image of every
    /// stacked mask in one pass over the TCC kernels — per kernel, the
    /// support is walked **once** (the eigenvector value is loaded once per
    /// bin for the whole batch) followed by one batched inverse FFT.
    /// Per-entry results are bit-identical to separate
    /// [`HopkinsImager::intensity`] calls (DESIGN.md §9).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid/batch mismatches plus FFT
    /// failures.
    pub fn intensity_batch_into(
        &self,
        masks: &MaskBatch,
        out: &mut IntensityBatch,
    ) -> Result<(), LithoError> {
        let n = self.cfg.mask_dim();
        check_batch_shape(masks, n, masks.batch(), "mask")?;
        check_batch_shape(out, n, masks.batch(), "output")?;
        if masks.batch() == 0 {
            return Ok(());
        }
        let n2 = n * n;
        let batch = masks.batch();
        let bfft = self.plan.batched(batch);
        let mut fft_ws = Fft2Workspace::new();
        let mut o: Vec<Complex64> = masks
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        bfft.forward_with(&mut o, &mut fft_ws)?;

        let out_slice = out.as_mut_slice();
        out_slice.fill(0.0);
        let mut field = vec![Complex64::ZERO; batch * n2];
        for kernel in &self.tcc.kernels {
            field.fill(Complex64::ZERO);
            for (i, &(row, col)) in self.tcc.support.iter().enumerate() {
                let k = row * n + col;
                let phi = kernel.phi[i];
                for b in 0..batch {
                    field[b * n2 + k] = phi * o[b * n2 + k];
                }
            }
            bfft.inverse_with(&mut field, &mut fft_ws)?;
            for (t, a) in out_slice.iter_mut().zip(&field) {
                *t += kernel.kappa * a.norm_sqr();
            }
        }
        Ok(())
    }

    /// Allocating convenience for [`HopkinsImager::intensity_batch_into`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HopkinsImager::intensity_batch_into`].
    pub fn intensity_batch(&self, masks: &MaskBatch) -> Result<IntensityBatch, LithoError> {
        let mut out = IntensityBatch::zeros(masks.dim(), masks.batch());
        self.intensity_batch_into(masks, &mut out)?;
        Ok(out)
    }

    /// Fused batched mask gradient over the TCC kernels: one support walk
    /// and two batched FFTs per kernel for the whole batch, bit-identical
    /// per entry to separate [`HopkinsImager::grad_mask`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid/batch mismatches plus FFT
    /// failures.
    pub fn grad_mask_batch_into(
        &self,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
        out: &mut MaskBatch,
    ) -> Result<(), LithoError> {
        let n = self.cfg.mask_dim();
        check_batch_shape(masks, n, masks.batch(), "mask")?;
        check_batch_shape(g_intensity, n, masks.batch(), "gradient")?;
        check_batch_shape(out, n, masks.batch(), "output")?;
        if masks.batch() == 0 {
            return Ok(());
        }
        let n2 = n * n;
        let batch = masks.batch();
        let bfft = self.plan.batched(batch);
        let mut fft_ws = Fft2Workspace::new();
        let mut o: Vec<Complex64> = masks
            .as_slice()
            .iter()
            .map(|&v| Complex64::from_real(v))
            .collect();
        bfft.forward_with(&mut o, &mut fft_ws)?;

        let mut acc_freq = vec![Complex64::ZERO; batch * n2];
        let mut field = vec![Complex64::ZERO; batch * n2];
        for kernel in &self.tcc.kernels {
            field.fill(Complex64::ZERO);
            for (i, &(row, col)) in self.tcc.support.iter().enumerate() {
                let k = row * n + col;
                let phi = kernel.phi[i];
                for b in 0..batch {
                    field[b * n2 + k] = phi * o[b * n2 + k];
                }
            }
            bfft.inverse_with(&mut field, &mut fft_ws)?;
            for (a, &g) in field.iter_mut().zip(g_intensity.as_slice()) {
                *a = a.scale(g);
            }
            bfft.forward_with(&mut field, &mut fft_ws)?;
            for (i, &(row, col)) in self.tcc.support.iter().enumerate() {
                let k = row * n + col;
                let phi_conj = kernel.phi[i].conj();
                for b in 0..batch {
                    acc_freq[b * n2 + k] += phi_conj * field[b * n2 + k].scale(kernel.kappa);
                }
            }
        }
        bfft.inverse_with(&mut acc_freq, &mut fft_ws)?;
        for (o, z) in out.as_mut_slice().iter_mut().zip(acc_freq.iter()) {
            *o = 2.0 * z.re;
        }
        Ok(())
    }

    /// Allocating convenience for [`HopkinsImager::grad_mask_batch_into`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HopkinsImager::grad_mask_batch_into`].
    pub fn grad_mask_batch(
        &self,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
    ) -> Result<MaskBatch, LithoError> {
        let mut out = MaskBatch::zeros(masks.dim(), masks.batch());
        self.grad_mask_batch_into(masks, g_intensity, &mut out)?;
        Ok(out)
    }

    /// Fraction of the TCC trace captured by the retained kernels — a
    /// quality measure of the truncation (1.0 means lossless).
    pub fn captured_energy(&self) -> f64 {
        // Trace of the normalized TCC equals Σ_k (pupil overlap fraction).
        // We report retained-eigenvalue mass relative to the trace implied
        // by the kernels at construction; callers comparing against Abbe get
        // the practical answer from the intensity itself, so a simple sum of
        // kappas normalized by the full trace stored at build time suffices.
        self.tcc.kernels.iter().map(|k| k.kappa).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abbe::AbbeImager;
    use bismo_optics::SourceShape;

    fn setup() -> (OpticalConfig, Source) {
        let cfg = OpticalConfig::test_small();
        let src = Source::from_shape(
            &cfg,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        (cfg, src)
    }

    fn square_mask(n: usize, half: usize) -> RealField {
        RealField::from_fn(n, |r, c| {
            let dr = r as isize - n as isize / 2;
            let dc = c as isize - n as isize / 2;
            if dr.unsigned_abs() < half && dc.unsigned_abs() < half {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn untruncated_socs_matches_abbe() {
        // With all eigenpairs retained, Hopkins and Abbe are the same
        // bilinear form — this is the strongest cross-validation of both
        // engines and of the TCC assembly.
        let (cfg, src) = setup();
        let abbe = AbbeImager::new(&cfg).unwrap();
        // q larger than the source-point count ⇒ untruncated.
        let hopkins = HopkinsImager::new(&cfg, &src, usize::MAX).unwrap();
        let m = square_mask(cfg.mask_dim(), 8);
        let ia = abbe.intensity(&src, &m).unwrap();
        let ih = hopkins.intensity(&m).unwrap();
        let scale = ia.max().max(1e-12);
        for (a, b) in ia.as_slice().iter().zip(ih.as_slice()) {
            assert!(
                (a - b).abs() < 1e-8 * scale.max(1.0),
                "abbe {a} vs hopkins {b}"
            );
        }
    }

    #[test]
    fn truncation_only_loses_energy() {
        let (cfg, src) = setup();
        let full = HopkinsImager::new(&cfg, &src, usize::MAX).unwrap();
        let trunc = HopkinsImager::new(&cfg, &src, 4).unwrap();
        let m = square_mask(cfg.mask_dim(), 8);
        let i_full = full.intensity(&m).unwrap();
        let i_trunc = trunc.intensity(&m).unwrap();
        // PSD truncation ⇒ pointwise the truncated image ≤ full image.
        for (f, t) in i_full.as_slice().iter().zip(i_trunc.as_slice()) {
            assert!(*t <= f + 1e-10);
        }
        assert!(i_trunc.sum() < i_full.sum());
    }

    #[test]
    fn eigenvalues_are_nonnegative_and_sorted() {
        let (cfg, src) = setup();
        let hopkins = HopkinsImager::new(&cfg, &src, 12).unwrap();
        let kappas: Vec<f64> = hopkins.kernels().iter().map(|k| k.kappa).collect();
        assert!(!kappas.is_empty());
        for w in kappas.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(kappas.iter().all(|&k| k >= 0.0));
    }

    #[test]
    fn spectrum_decays_fast() {
        // The premise of SOCS: eigenvalues decay rapidly, so a small Q
        // captures most of the energy.
        let (cfg, src) = setup();
        let hopkins = HopkinsImager::new(&cfg, &src, usize::MAX).unwrap();
        let kappas: Vec<f64> = hopkins.kernels().iter().map(|k| k.kappa).collect();
        let total: f64 = kappas.iter().sum();
        let top8: f64 = kappas.iter().take(8).sum();
        assert!(top8 / total > 0.5, "top-8 capture {}", top8 / total);
    }

    #[test]
    fn defocused_untruncated_socs_matches_defocused_abbe() {
        // The complex-pupil generalization: the Gram construction must
        // reproduce the Abbe image under defocus too (phases matter in both
        // the Gram entries and the kernel lift).
        let (cfg, src) = setup();
        let z = 120.0;
        let abbe = AbbeImager::new(&cfg).unwrap().with_defocus(z);
        let pupil = Pupil::new(&cfg).with_defocus(z);
        let hopkins = HopkinsImager::with_pupil(&cfg, pupil, &src, usize::MAX).unwrap();
        let m = square_mask(cfg.mask_dim(), 8);
        let ia = abbe.intensity(&src, &m).unwrap();
        let ih = hopkins.intensity(&m).unwrap();
        let scale = ia.max().max(1e-12);
        for (a, b) in ia.as_slice().iter().zip(ih.as_slice()) {
            assert!(
                (a - b).abs() < 1e-8 * scale.max(1.0),
                "abbe {a} vs hopkins {b}"
            );
        }
    }

    #[test]
    fn dark_source_is_error() {
        let (cfg, _) = setup();
        assert!(matches!(
            HopkinsImager::new(&cfg, &Source::dark(&cfg), 8),
            Err(LithoError::DarkSource)
        ));
        let core = ImagingCore::new(&cfg).unwrap();
        assert!(matches!(
            HopkinsImager::with_core(&core, &Source::dark(&cfg), 8),
            Err(LithoError::DarkSource)
        ));
    }

    #[test]
    fn with_core_matches_standalone_construction() {
        // The shared-core constructor must produce bit-identical kernels to
        // the standalone path: the full-grid table caches the exact same
        // analytic values `for_points` evaluates.
        let (cfg, src) = setup();
        let core = ImagingCore::new(&cfg).unwrap();
        // Bypass the kernel cache on both sides so the test keeps comparing
        // two genuine constructions instead of one build and a cache hit.
        let fresh = TccBuild {
            bypass_cache: true,
            ..TccBuild::default()
        };
        let standalone =
            HopkinsImager::with_pupil_build(&cfg, Pupil::new(&cfg), &src, 12, fresh).unwrap();
        let shared = HopkinsImager::with_core_build(&core, &src, 12, fresh).unwrap();
        assert_eq!(standalone.support(), shared.support());
        assert_eq!(standalone.kernels().len(), shared.kernels().len());
        for (a, b) in standalone.kernels().iter().zip(shared.kernels()) {
            assert_eq!(a.kappa, b.kappa);
            for (x, y) in a.phi.iter().zip(&b.phi) {
                assert_eq!(x.re, y.re);
                assert_eq!(x.im, y.im);
            }
        }
        let m = square_mask(cfg.mask_dim(), 8);
        assert_eq!(
            standalone.intensity(&m).unwrap(),
            shared.intensity(&m).unwrap()
        );
    }

    #[test]
    fn source_from_mismatched_config_is_rejected() {
        // Same guard as the Abbe engine: a source built under a different
        // frequency scale would bake TCC kernels at wrong illumination
        // frequencies, so construction must fail instead.
        let (cfg, _) = setup();
        let other = OpticalConfig::builder()
            .mask_dim(cfg.mask_dim())
            .pixel_nm(8.0)
            .na(0.9)
            .source_dim(cfg.source_dim())
            .build()
            .unwrap();
        let foreign = Source::from_shape(
            &other,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        assert!(matches!(
            HopkinsImager::new(&cfg, &foreign, 8),
            Err(LithoError::Shape(_))
        ));
    }

    #[test]
    fn grad_mask_matches_finite_difference() {
        let (cfg, src) = setup();
        let hopkins = HopkinsImager::new(&cfg, &src, 10).unwrap();
        let n = cfg.mask_dim();
        let m = square_mask(n, 8).map(|v| 0.2 + 0.6 * v);
        let coeff = RealField::from_fn(n, |r, c| ((r * 7 + c * 3) % 5) as f64 / 5.0 - 0.4);
        let gm = hopkins.grad_mask(&m, &coeff).unwrap();
        let eps = 1e-5;
        for &(r, c) in &[(n / 2, n / 2), (n / 2 + 5, n / 2 - 3), (2, 60)] {
            let mut mp = m.clone();
            mp[(r, c)] += eps;
            let mut mm = m.clone();
            mm[(r, c)] -= eps;
            let lp = hopkins.intensity(&mp).unwrap().dot(&coeff);
            let lm = hopkins.intensity(&mm).unwrap().dot(&coeff);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-6 + 1e-4 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
    }

    #[test]
    fn clear_field_bounded_by_one() {
        let (cfg, src) = setup();
        let hopkins = HopkinsImager::new(&cfg, &src, 24).unwrap();
        let i = hopkins
            .intensity(&RealField::filled(cfg.mask_dim(), 1.0))
            .unwrap();
        assert!(i.max() <= 1.0 + 1e-9);
        assert!(i.max() > 0.5, "truncated clear field too dark: {}", i.max());
    }
}
