//! Contiguously stacked batches of real fields — the currency of the
//! batched imaging axis (DESIGN.md §9).
//!
//! A [`FieldBatch`] holds `B` same-sized square fields back to back in one
//! flat buffer (`entry b` at `data[b·dim² .. (b+1)·dim²]`). That layout is
//! what lets the layers below amortize work across the batch: the FFT layer
//! transforms the stacked buffer in one call (`bismo_fft::BatchFft2`), and
//! the shifted-pupil table is walked once per source point with an inner
//! loop over the batch (`ShiftedPupilEntry::apply_batch`).
//!
//! The aliases [`MaskBatch`] and [`IntensityBatch`] name the two roles a
//! batch plays at the [`crate::ImagingBackend`] boundary; they are the same
//! type, so a gradient batch can be reused as an output buffer and so on.
//! Ownership follows the workspace rules of DESIGN.md §6: the `*_into`
//! backend methods write into caller-owned batches, keeping the warm path
//! allocation-free.
//!
//! @bismo:bit-exact — the stacked layout is part of the §9 bit-identity
//! contract; arithmetic introduced here would sit inside the fused DAG.
//! Enforced by bismo-analyze's bit-exact-purity rule.

use bismo_optics::RealField;

use crate::error::LithoError;

/// `B` square `dim × dim` fields stacked contiguously in one buffer.
///
/// # Examples
///
/// ```
/// use bismo_litho::FieldBatch;
/// use bismo_optics::RealField;
///
/// let nominal = RealField::filled(4, 1.0);
/// let scaled = nominal.map(|v| 0.98 * v);
/// let batch = FieldBatch::from_fields(&[nominal, scaled]);
/// assert_eq!(batch.batch(), 2);
/// assert_eq!(batch.entry(1)[0], 0.98);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FieldBatch {
    dim: usize,
    batch: usize,
    data: Vec<f64>,
}

/// A batch of (possibly dose-scaled) mask transmissions — the input role of
/// a [`FieldBatch`] at the imaging boundary.
pub type MaskBatch = FieldBatch;

/// A batch of aerial images (or intensity-space gradients) — the output
/// role of a [`FieldBatch`] at the imaging boundary.
pub type IntensityBatch = FieldBatch;

impl FieldBatch {
    /// The stacked length `batch · dim²`, checked so an absurd shape is a
    /// loud panic instead of a silently wrapped (and thus mis-sized) buffer
    /// in release builds.
    fn stacked_len(dim: usize, batch: usize) -> usize {
        dim.checked_mul(dim)
            .and_then(|n2| batch.checked_mul(n2))
            // PANIC-OK: documented accessor/constructor contract — an absurd shape must fail loudly, not wrap into a mis-sized buffer.
            .expect("batch × dim × dim overflows usize")
    }

    /// Creates a batch of `batch` zeroed `dim × dim` fields.
    ///
    /// # Panics
    ///
    /// Panics if `batch · dim²` overflows `usize`.
    #[must_use]
    pub fn zeros(dim: usize, batch: usize) -> Self {
        FieldBatch {
            dim,
            batch,
            data: vec![0.0; FieldBatch::stacked_len(dim, batch)],
        }
    }

    /// Stacks existing fields into a batch (copying).
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty or the fields disagree on dimension.
    #[must_use]
    pub fn from_fields(fields: &[RealField]) -> Self {
        let dim = fields
            .first()
            // PANIC-OK: documented `# Panics` contract — an empty stack has no dimension; callers build from fixed corner lists.
            .expect("cannot build a batch from zero fields")
            .dim();
        let mut data = Vec::with_capacity(FieldBatch::stacked_len(dim, fields.len()));
        for f in fields {
            assert_eq!(f.dim(), dim, "batch fields disagree on dimension");
            data.extend_from_slice(f.as_slice());
        }
        FieldBatch {
            dim,
            batch: fields.len(),
            data,
        }
    }

    /// Wraps an existing stacked buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != batch * dim * dim` (computed without
    /// overflow, so a wrapped product can never mis-validate the buffer).
    #[must_use]
    pub fn from_stacked(dim: usize, batch: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            FieldBatch::stacked_len(dim, batch),
            "stacked buffer size mismatch"
        );
        FieldBatch { dim, batch, data }
    }

    /// Side length of every field in the batch.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stacked fields.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Pixels per field (`dim²`).
    #[inline]
    pub fn entry_len(&self) -> usize {
        self.dim * self.dim
    }

    /// Total stacked length (`batch · dim²`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a zero-entry (or zero-dimension) batch.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of one stacked field.
    ///
    /// # Panics
    ///
    /// Panics if `b >= batch`.
    #[inline]
    pub fn entry(&self, b: usize) -> &[f64] {
        let n2 = self.entry_len();
        &self.data[b * n2..(b + 1) * n2]
    }

    /// Mutable view of one stacked field.
    ///
    /// # Panics
    ///
    /// Panics if `b >= batch`.
    #[inline]
    pub fn entry_mut(&mut self, b: usize) -> &mut [f64] {
        let n2 = self.entry_len();
        &mut self.data[b * n2..(b + 1) * n2]
    }

    /// Copies one stacked field out into an owned [`RealField`].
    ///
    /// # Panics
    ///
    /// Panics if `b >= batch`.
    #[must_use]
    pub fn entry_field(&self, b: usize) -> RealField {
        RealField::from_vec(self.dim, self.entry(b).to_vec())
    }

    /// Overwrites one stacked field from a [`RealField`].
    ///
    /// # Panics
    ///
    /// Panics if `b >= batch` or the dimensions differ.
    pub fn set_entry(&mut self, b: usize, field: &RealField) {
        assert_eq!(field.dim(), self.dim, "batch field dimension mismatch");
        self.entry_mut(b).copy_from_slice(field.as_slice());
    }

    /// Unstacks the batch into owned fields (copying).
    #[must_use]
    pub fn to_fields(&self) -> Vec<RealField> {
        (0..self.batch).map(|b| self.entry_field(b)).collect()
    }

    /// Immutable view of the whole stacked buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the whole stacked buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fills every pixel of every entry with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }
}

/// Shared shape guard of the batched backend methods: `what` batches must
/// sit on the `n × n` mask grid and hold `batch` entries.
pub(crate) fn check_batch_shape(
    batch: &FieldBatch,
    n: usize,
    expected_batch: usize,
    what: &str,
) -> Result<(), LithoError> {
    if batch.dim() != n {
        return Err(LithoError::Shape(format!(
            "{what} batch entries are {}×{0}, engine expects {n}×{n}",
            batch.dim()
        )));
    }
    if batch.batch() != expected_batch {
        return Err(LithoError::Shape(format!(
            "{what} batch holds {} entries, expected {expected_batch}",
            batch.batch()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacking_and_views_round_trip() {
        let a = RealField::from_fn(3, |r, c| (r * 3 + c) as f64);
        let b = a.map(|v| -v);
        let mut batch = FieldBatch::from_fields(&[a.clone(), b.clone()]);
        assert_eq!(batch.dim(), 3);
        assert_eq!(batch.batch(), 2);
        assert_eq!(batch.entry_len(), 9);
        assert_eq!(batch.len(), 18);
        assert_eq!(batch.entry(0), a.as_slice());
        assert_eq!(batch.entry_field(1), b);
        assert_eq!(batch.to_fields(), vec![a.clone(), b]);
        batch.set_entry(1, &a);
        assert_eq!(batch.entry(1), a.as_slice());
        batch.entry_mut(0)[4] = 99.0;
        assert_eq!(batch.as_slice()[4], 99.0);
        batch.fill(0.5);
        assert!(batch.as_slice().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn from_stacked_validates_length() {
        let batch = FieldBatch::from_stacked(2, 3, vec![1.0; 12]);
        assert_eq!(batch.batch(), 3);
        assert!(!batch.is_empty());
        assert!(FieldBatch::zeros(2, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "stacked buffer size mismatch")]
    fn from_stacked_rejects_bad_length() {
        let _ = FieldBatch::from_stacked(2, 3, vec![1.0; 11]);
    }

    #[test]
    #[should_panic(expected = "disagree on dimension")]
    fn from_fields_rejects_mixed_dims() {
        let _ = FieldBatch::from_fields(&[RealField::zeros(2), RealField::zeros(3)]);
    }

    #[test]
    fn shape_guard_reports_both_mismatches() {
        let batch = FieldBatch::zeros(4, 2);
        assert!(check_batch_shape(&batch, 4, 2, "mask").is_ok());
        assert!(matches!(
            check_batch_shape(&batch, 8, 2, "mask"),
            Err(LithoError::Shape(_))
        ));
        assert!(matches!(
            check_batch_shape(&batch, 4, 3, "mask"),
            Err(LithoError::Shape(_))
        ));
    }
}
