//! The [`ImagingBackend`] abstraction: one interface over every forward
//! imaging model in the workspace.
//!
//! Both engines compute the same bilinear form `I(M) = Σ_k w_k |F⁻¹[H_k ⊙
//! F(M)]|²` — Abbe sums over source points, Hopkins/SOCS over TCC
//! eigenvectors — so the optimization layer above them (`bismo-core`'s
//! `MoProblem<B>`) only needs forward intensity and adjoint gradients. The
//! trait captures exactly that surface:
//!
//! * [`intensity`](ImagingBackend::intensity) and
//!   [`grad_mask`](ImagingBackend::grad_mask) are mandatory — every model
//!   can image a mask and backpropagate to it;
//! * [`grad_source`](ImagingBackend::grad_source) is *capability-gated*:
//!   Abbe provides it, Hopkins returns [`LithoError::Unsupported`] because
//!   SOCS truncation destroys the source information (paper §2.1). Callers
//!   branch on [`supports_grad_source`](ImagingBackend::supports_grad_source)
//!   instead of knowing concrete engine types.
//!
//! Backends whose construction bakes in an illumination (Hopkins) simply
//! ignore the `source` argument of the forward/adjoint methods; the frozen
//! source is available via their own accessors (`HopkinsImager::source`).

use bismo_optics::{OpticalConfig, RealField, Source};

use crate::abbe::AbbeImager;
use crate::error::LithoError;
use crate::hopkins::HopkinsImager;

/// A forward lithography imaging model with adjoint gradients.
///
/// `Send + Sync` is a supertrait requirement because problems holding a
/// backend are evaluated from parallel drivers and benches.
///
/// # Examples
///
/// ```
/// use bismo_litho::{AbbeImager, HopkinsImager, ImagingBackend};
/// use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// fn clear_field_peak<B: ImagingBackend>(b: &B, src: &Source) -> f64 {
///     let clear = RealField::filled(b.config().mask_dim(), 1.0);
///     b.intensity(src, &clear).unwrap().max()
/// }
/// let cfg = OpticalConfig::test_small();
/// let src = Source::from_shape(
///     &cfg,
///     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
/// );
/// let abbe = AbbeImager::new(&cfg)?;
/// let hopkins = HopkinsImager::new(&cfg, &src, usize::MAX)?;
/// assert!((clear_field_peak(&abbe, &src) - clear_field_peak(&hopkins, &src)).abs() < 1e-8);
/// assert!(abbe.supports_grad_source());
/// assert!(!hopkins.supports_grad_source());
/// # Ok(())
/// # }
/// ```
pub trait ImagingBackend: Send + Sync {
    /// The optical configuration this backend images under.
    fn config(&self) -> &OpticalConfig;

    /// Short human-readable model name (bench labels, error messages).
    fn name(&self) -> &'static str;

    /// Computes the aerial image `I(source, mask)`.
    ///
    /// Fixed-source backends ignore `source` (they were built against one).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid mismatches plus model-specific
    /// failures.
    fn intensity(&self, source: &Source, mask: &RealField) -> Result<RealField, LithoError>;

    /// Computes `∂L/∂M` given the upstream intensity gradient
    /// `g_intensity = ∂L/∂I`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingBackend::intensity`].
    fn grad_mask(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError>;

    /// Whether this backend can differentiate with respect to the source
    /// weights. Defaults to `false`; backends overriding
    /// [`grad_source`](ImagingBackend::grad_source) must override this too.
    fn supports_grad_source(&self) -> bool {
        false
    }

    /// Computes `∂L/∂j` on the full source grid given the upstream intensity
    /// gradient and the forward image (needed by dose-normalization terms).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Unsupported`] unless the backend overrides it.
    fn grad_source(
        &self,
        _source: &Source,
        _mask: &RealField,
        _g_intensity: &RealField,
        _intensity: &RealField,
    ) -> Result<Vec<f64>, LithoError> {
        Err(LithoError::Unsupported("source gradient"))
    }

    /// Computes `∂L/∂M` and `∂L/∂j` together. The default runs the two
    /// adjoints separately; backends with a cheaper shared pass override it.
    ///
    /// # Errors
    ///
    /// Same failure modes as the individual gradient methods.
    fn gradients(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<(RealField, Vec<f64>), LithoError> {
        Ok((
            self.grad_mask(source, mask, g_intensity)?,
            self.grad_source(source, mask, g_intensity, intensity)?,
        ))
    }
}

impl ImagingBackend for AbbeImager {
    fn config(&self) -> &OpticalConfig {
        AbbeImager::config(self)
    }

    fn name(&self) -> &'static str {
        "abbe"
    }

    fn intensity(&self, source: &Source, mask: &RealField) -> Result<RealField, LithoError> {
        AbbeImager::intensity(self, source, mask)
    }

    fn grad_mask(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        AbbeImager::grad_mask(self, source, mask, g_intensity)
    }

    fn supports_grad_source(&self) -> bool {
        true
    }

    fn grad_source(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<Vec<f64>, LithoError> {
        AbbeImager::grad_source(self, source, mask, g_intensity, intensity)
    }

    fn gradients(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<(RealField, Vec<f64>), LithoError> {
        // The shared pass reuses A_σ between the source and mask adjoints —
        // roughly halving the FFT count versus the default implementation.
        AbbeImager::gradients(self, source, mask, g_intensity, intensity)
    }
}

impl ImagingBackend for HopkinsImager {
    fn config(&self) -> &OpticalConfig {
        HopkinsImager::config(self)
    }

    fn name(&self) -> &'static str {
        "hopkins"
    }

    /// Images through the SOCS kernels of the source this engine was built
    /// for; the `source` argument is ignored (see the module docs).
    fn intensity(&self, _source: &Source, mask: &RealField) -> Result<RealField, LithoError> {
        HopkinsImager::intensity(self, mask)
    }

    fn grad_mask(
        &self,
        _source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        HopkinsImager::grad_mask(self, mask, g_intensity)
    }
}
