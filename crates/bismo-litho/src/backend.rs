//! The [`ImagingBackend`] abstraction: one interface over every forward
//! imaging model in the workspace.
//!
//! Both engines compute the same bilinear form `I(M) = Σ_k w_k |F⁻¹[H_k ⊙
//! F(M)]|²` — Abbe sums over source points, Hopkins/SOCS over TCC
//! eigenvectors — so the optimization layer above them (`bismo-core`'s
//! `MoProblem<B>`) only needs forward intensity and adjoint gradients. The
//! trait captures exactly that surface:
//!
//! * [`intensity`](ImagingBackend::intensity) and
//!   [`grad_mask`](ImagingBackend::grad_mask) are mandatory — every model
//!   can image a mask and backpropagate to it;
//! * [`grad_source`](ImagingBackend::grad_source) is *capability-gated*:
//!   Abbe provides it, Hopkins returns [`LithoError::Unsupported`] because
//!   SOCS truncation destroys the source information (paper §2.1). Callers
//!   branch on [`supports_grad_source`](ImagingBackend::supports_grad_source)
//!   instead of knowing concrete engine types.
//!
//! Backends whose construction bakes in an illumination (Hopkins) simply
//! ignore the `source` argument of the forward/adjoint methods; the frozen
//! source is available via their own accessors (`HopkinsImager::source`).

use bismo_optics::{OpticalConfig, RealField, Source};

use crate::abbe::AbbeImager;
use crate::batch::{check_batch_shape, FieldBatch, IntensityBatch, MaskBatch};
use crate::error::LithoError;
use crate::hopkins::HopkinsImager;

/// A forward lithography imaging model with adjoint gradients.
///
/// `Send + Sync` is a supertrait requirement because problems holding a
/// backend are evaluated from parallel drivers and benches.
///
/// # Examples
///
/// ```
/// use bismo_litho::{AbbeImager, HopkinsImager, ImagingBackend};
/// use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// fn clear_field_peak<B: ImagingBackend>(b: &B, src: &Source) -> f64 {
///     let clear = RealField::filled(b.config().mask_dim(), 1.0);
///     b.intensity(src, &clear).unwrap().max()
/// }
/// let cfg = OpticalConfig::test_small();
/// let src = Source::from_shape(
///     &cfg,
///     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
/// );
/// let abbe = AbbeImager::new(&cfg)?;
/// let hopkins = HopkinsImager::new(&cfg, &src, usize::MAX)?;
/// assert!((clear_field_peak(&abbe, &src) - clear_field_peak(&hopkins, &src)).abs() < 1e-8);
/// assert!(abbe.supports_grad_source());
/// assert!(!hopkins.supports_grad_source());
/// # Ok(())
/// # }
/// ```
pub trait ImagingBackend: Send + Sync {
    /// The optical configuration this backend images under.
    fn config(&self) -> &OpticalConfig;

    /// Short human-readable model name (bench labels, error messages).
    fn name(&self) -> &'static str;

    /// Computes the aerial image `I(source, mask)`.
    ///
    /// Fixed-source backends ignore `source` (they were built against one).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] on grid mismatches plus model-specific
    /// failures.
    fn intensity(&self, source: &Source, mask: &RealField) -> Result<RealField, LithoError>;

    /// Computes `∂L/∂M` given the upstream intensity gradient
    /// `g_intensity = ∂L/∂I`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingBackend::intensity`].
    fn grad_mask(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError>;

    /// Whether this backend can differentiate with respect to the source
    /// weights. Defaults to `false`; backends overriding
    /// [`grad_source`](ImagingBackend::grad_source) must override this too.
    fn supports_grad_source(&self) -> bool {
        false
    }

    /// Computes `∂L/∂j` on the full source grid given the upstream intensity
    /// gradient and the forward image (needed by dose-normalization terms).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Unsupported`] unless the backend overrides it.
    fn grad_source(
        &self,
        _source: &Source,
        _mask: &RealField,
        _g_intensity: &RealField,
        _intensity: &RealField,
    ) -> Result<Vec<f64>, LithoError> {
        Err(LithoError::Unsupported("source gradient"))
    }

    /// Computes `∂L/∂M` and `∂L/∂j` together. The default runs the two
    /// adjoints separately; backends with a cheaper shared pass override it.
    ///
    /// # Errors
    ///
    /// Same failure modes as the individual gradient methods.
    fn gradients(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<(RealField, Vec<f64>), LithoError> {
        Ok((
            self.grad_mask(source, mask, g_intensity)?,
            self.grad_source(source, mask, g_intensity, intensity)?,
        ))
    }

    /// Images a whole [`MaskBatch`] in one call, writing each entry's
    /// aerial image into the matching entry of the caller-owned `out`
    /// batch. Per-entry results are **bit-identical** to `B` independent
    /// [`intensity`](ImagingBackend::intensity) calls — the batch axis is a
    /// scheduling contract, never a numerical one (DESIGN.md §9).
    ///
    /// The default implementation is the entry-at-a-time loop; fused
    /// backends override it to amortize their per-call traversal (the Abbe
    /// engine walks its shifted-pupil table once per source point for the
    /// whole batch, Hopkins walks its kernel support once per kernel).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingBackend::intensity`], plus shape
    /// errors for mismatched batches.
    fn intensity_batch_into(
        &self,
        source: &Source,
        masks: &MaskBatch,
        out: &mut IntensityBatch,
    ) -> Result<(), LithoError> {
        let n = self.config().mask_dim();
        check_batch_shape(masks, n, masks.batch(), "mask")?;
        check_batch_shape(out, n, masks.batch(), "output")?;
        for b in 0..masks.batch() {
            let image = self.intensity(source, &masks.entry_field(b))?;
            out.entry_mut(b).copy_from_slice(image.as_slice());
        }
        Ok(())
    }

    /// Allocating convenience for
    /// [`intensity_batch_into`](ImagingBackend::intensity_batch_into).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingBackend::intensity_batch_into`].
    fn intensity_batch(
        &self,
        source: &Source,
        masks: &MaskBatch,
    ) -> Result<IntensityBatch, LithoError> {
        let mut out = FieldBatch::zeros(masks.dim(), masks.batch());
        self.intensity_batch_into(source, masks, &mut out)?;
        Ok(out)
    }

    /// Computes `∂L/∂M` for a whole batch in one call: entry `b` of `out`
    /// receives the mask gradient of mask `b` under the upstream intensity
    /// gradient `b`. Bit-identical per entry to `B` independent
    /// [`grad_mask`](ImagingBackend::grad_mask) calls; fused backends
    /// override the entry-at-a-time default.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingBackend::grad_mask`], plus shape
    /// errors for mismatched batches.
    fn grad_mask_batch_into(
        &self,
        source: &Source,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
        out: &mut MaskBatch,
    ) -> Result<(), LithoError> {
        let n = self.config().mask_dim();
        check_batch_shape(masks, n, masks.batch(), "mask")?;
        check_batch_shape(g_intensity, n, masks.batch(), "gradient")?;
        check_batch_shape(out, n, masks.batch(), "output")?;
        for b in 0..masks.batch() {
            let g = self.grad_mask(source, &masks.entry_field(b), &g_intensity.entry_field(b))?;
            out.entry_mut(b).copy_from_slice(g.as_slice());
        }
        Ok(())
    }

    /// Allocating convenience for
    /// [`grad_mask_batch_into`](ImagingBackend::grad_mask_batch_into).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingBackend::grad_mask_batch_into`].
    fn grad_mask_batch(
        &self,
        source: &Source,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
    ) -> Result<MaskBatch, LithoError> {
        let mut out = FieldBatch::zeros(masks.dim(), masks.batch());
        self.grad_mask_batch_into(source, masks, g_intensity, &mut out)?;
        Ok(out)
    }
}

impl ImagingBackend for AbbeImager {
    fn config(&self) -> &OpticalConfig {
        AbbeImager::config(self)
    }

    fn name(&self) -> &'static str {
        "abbe"
    }

    fn intensity(&self, source: &Source, mask: &RealField) -> Result<RealField, LithoError> {
        AbbeImager::intensity(self, source, mask)
    }

    fn grad_mask(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        AbbeImager::grad_mask(self, source, mask, g_intensity)
    }

    fn supports_grad_source(&self) -> bool {
        true
    }

    fn grad_source(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<Vec<f64>, LithoError> {
        AbbeImager::grad_source(self, source, mask, g_intensity, intensity)
    }

    fn gradients(
        &self,
        source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
        intensity: &RealField,
    ) -> Result<(RealField, Vec<f64>), LithoError> {
        // The shared pass reuses A_σ between the source and mask adjoints —
        // roughly halving the FFT count versus the default implementation.
        AbbeImager::gradients(self, source, mask, g_intensity, intensity)
    }

    fn intensity_batch_into(
        &self,
        source: &Source,
        masks: &MaskBatch,
        out: &mut IntensityBatch,
    ) -> Result<(), LithoError> {
        // Fused: one shifted-pupil table walk per source point for the
        // whole batch, batched FFTs, pooled batch workspaces.
        AbbeImager::intensity_batch_into(self, source, masks, out)
    }

    fn grad_mask_batch_into(
        &self,
        source: &Source,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
        out: &mut MaskBatch,
    ) -> Result<(), LithoError> {
        AbbeImager::grad_mask_batch_into(self, source, masks, g_intensity, out)
    }
}

impl ImagingBackend for HopkinsImager {
    fn config(&self) -> &OpticalConfig {
        HopkinsImager::config(self)
    }

    fn name(&self) -> &'static str {
        "hopkins"
    }

    /// Images through the SOCS kernels of the source this engine was built
    /// for; the `source` argument is ignored (see the module docs).
    fn intensity(&self, _source: &Source, mask: &RealField) -> Result<RealField, LithoError> {
        HopkinsImager::intensity(self, mask)
    }

    fn grad_mask(
        &self,
        _source: &Source,
        mask: &RealField,
        g_intensity: &RealField,
    ) -> Result<RealField, LithoError> {
        HopkinsImager::grad_mask(self, mask, g_intensity)
    }

    /// Fused over the TCC kernels: one support walk per kernel for the
    /// whole batch; the `source` argument is ignored as for the single-mask
    /// methods.
    fn intensity_batch_into(
        &self,
        _source: &Source,
        masks: &MaskBatch,
        out: &mut IntensityBatch,
    ) -> Result<(), LithoError> {
        HopkinsImager::intensity_batch_into(self, masks, out)
    }

    fn grad_mask_batch_into(
        &self,
        _source: &Source,
        masks: &MaskBatch,
        g_intensity: &IntensityBatch,
        out: &mut MaskBatch,
    ) -> Result<(), LithoError> {
        HopkinsImager::grad_mask_batch_into(self, masks, g_intensity, out)
    }
}
