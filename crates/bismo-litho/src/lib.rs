//! # bismo-litho
//!
//! Lithography simulators for the BiSMO workspace (reproduction of
//! *"Efficient Bilevel Source Mask Optimization"*, DAC 2024):
//!
//! * [`AbbeImager`] — source-point-integration imaging (paper Eq. 2) with
//!   hand-derived adjoint gradients with respect to **both** the mask and
//!   the source, parallelized over source points;
//! * [`HopkinsImager`] — TCC + SOCS imaging (Eq. 3–4) for a fixed source,
//!   with mask gradients only (the truncation destroys source information,
//!   which is the paper's argument for Abbe-based SMO);
//! * [`ResistModel`] — the sigmoid threshold resist (Eq. 6) and
//!   [`DoseCorners`] for process-window evaluation;
//! * [`ImagingBackend`] — the trait unifying both engines behind one
//!   forward/adjoint interface, so optimization drivers are written once
//!   and instantiated per model (`bismo-core`'s `MoProblem<B>`);
//! * [`FieldBatch`] (with its [`MaskBatch`] / [`IntensityBatch`] roles) —
//!   contiguously stacked fields for the batched imaging axis: one
//!   `intensity_batch` / `grad_mask_batch` call images a whole batch (dose
//!   corners, multiple clips) with per-entry results bit-identical to
//!   independent single-mask calls.
//!
//! ## Examples
//!
//! ```
//! use bismo_litho::{AbbeImager, ResistModel};
//! use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = OpticalConfig::test_small();
//! let abbe = AbbeImager::new(&cfg)?;
//! let source = Source::from_shape(
//!     &cfg,
//!     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
//! );
//! let mask = RealField::from_fn(cfg.mask_dim(), |r, c| {
//!     if (16..48).contains(&r) && (24..40).contains(&c) { 1.0 } else { 0.0 }
//! });
//! let aerial = abbe.intensity(&source, &mask)?;
//! let resist = ResistModel::new(30.0, 0.225).develop(&aerial);
//! assert!(resist.max() > 0.9); // the feature prints
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abbe;
mod backend;
mod batch;
mod error;
mod hopkins;
mod kernel_cache;
mod resist;

pub use abbe::AbbeImager;
pub use backend::ImagingBackend;
pub use batch::{FieldBatch, IntensityBatch, MaskBatch};
pub use error::LithoError;
pub use hopkins::{HopkinsImager, SocsKernel, TccBuild};
pub use kernel_cache::{KernelCache, KernelCacheStats};
pub use resist::{sigmoid, DoseCorners, ResistModel};
