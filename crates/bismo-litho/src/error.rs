//! Error type shared by the lithography simulators.

use bismo_fft::FftError;
use bismo_linalg::LinalgError;

/// Error raised by the imaging engines.
#[derive(Debug)]
pub enum LithoError {
    /// A Fourier transform failed (buffer size mismatch or bad plan length).
    Fft(FftError),
    /// A linear-algebra kernel failed (eigensolver non-convergence, bad
    /// truncation rank).
    Linalg(LinalgError),
    /// Inputs are inconsistent with the configured grids.
    Shape(String),
    /// The source carries (numerically) zero total power, so no image forms.
    DarkSource,
    /// The requested operation is not provided by this imaging backend
    /// (e.g. source gradients through a Hopkins/SOCS engine, whose
    /// truncation destroys the source information — paper §2.1).
    Unsupported(&'static str),
}

impl std::fmt::Display for LithoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LithoError::Fft(e) => write!(f, "fft failure: {e}"),
            LithoError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            LithoError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            LithoError::DarkSource => write!(f, "source has zero total power"),
            LithoError::Unsupported(what) => {
                write!(f, "operation not supported by this imaging backend: {what}")
            }
        }
    }
}

impl std::error::Error for LithoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LithoError::Fft(e) => Some(e),
            LithoError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FftError> for LithoError {
    fn from(e: FftError) -> Self {
        LithoError::Fft(e)
    }
}

impl From<LinalgError> for LithoError {
    fn from(e: LinalgError) -> Self {
        LithoError::Linalg(e)
    }
}
