//! Process-wide cache of SOCS kernel bundles (DESIGN.md §13).
//!
//! The TCC build depends only on `(OpticalConfig, Pupil, effective source
//! points, Q)` — everything else about a [`crate::HopkinsImager`] is cheap.
//! This module amortizes that build twice over:
//!
//! * an **in-memory LRU** of [`Arc`]-shared kernel bundles, consulted by
//!   every `HopkinsImager` constructor, so a suite sweep (or the hybrid
//!   AM-SMO driver re-entering the same source) assembles each TCC once per
//!   process instead of once per (clip × round);
//! * an **opt-in on-disk tier** (`BISMO_KERNEL_CACHE=<dir>`, strict parse
//!   per the §7 knob rules) holding each bundle as a versioned,
//!   checksummed little-endian file, so repeated *processes* skip the
//!   rebuild too. A mismatched, truncated, or corrupted file is a **miss,
//!   never an error**; writes go through a temp file + atomic rename like
//!   the bench journal, so readers only ever observe complete files.
//!
//! The cache key is an FNV-1a fingerprint (the journal's hash idiom) over
//! the exact inputs of the build, including the eigensolver route; the
//! assembly thread count is deliberately **not** part of the key, because
//! the build is bit-identical at any thread count (§9). Files store exact
//! `f64` bit patterns, so a disk round-trip is bit-exact on both
//! eigensolver routes.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use bismo_fft::Complex64;
use bismo_optics::{OpticalConfig, Pupil, Source, SourcePoint};

use crate::error::LithoError;
use crate::hopkins::{SocsKernel, DENSE_EIG_LIMIT};

/// Bumped on any change to the fingerprint recipe or the file layout; also
/// embedded in the file magic so stale caches from older formats read as
/// misses instead of mis-parses.
const FORMAT_VERSION: u64 = 1;

/// File magic: `BSMOTCC` + the format version digit.
const MAGIC: &[u8; 8] = b"BSMOTCC1";

/// Fixed-size file header: magic + key + payload length + checksum.
const HEADER_LEN: usize = 32;

/// Default number of resident bundles. Paper-scale bundles run a few MB
/// each (Q kernels × union support × 16 bytes), so this bounds the cache
/// at tens of MB worst case.
const DEFAULT_CAPACITY: usize = 8;

/// The immutable product of one TCC build: the union frequency support,
/// the retained SOCS kernels, and the truncation rank that was requested.
/// Shared by `Arc` between every [`crate::HopkinsImager`] built from the
/// same inputs — borrowers keep their bundle alive after eviction.
#[derive(Debug)]
pub(crate) struct TccKernels {
    pub(crate) support: Vec<(usize, usize)>,
    pub(crate) kernels: Vec<SocsKernel>,
    pub(crate) truncation: usize,
}

/// Counters of the process-wide kernel cache, for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCacheStats {
    /// Builds served from the in-memory LRU.
    pub hits: u64,
    /// Builds served by deserializing an on-disk bundle.
    pub disk_hits: u64,
    /// Full (cold) builds — nothing usable in either tier.
    pub misses: u64,
    /// Bundles successfully persisted to the disk tier.
    pub disk_stores: u64,
    /// In-memory entries dropped to respect the capacity bound.
    pub evictions: u64,
}

struct Inner {
    cap: usize,
    disk_dir: Option<PathBuf>,
    /// Index 0 is least-recently used; the back is most-recent. Linear
    /// scans are fine at the capacities involved (≤ a few dozen).
    lru: Vec<(u64, Arc<TccKernels>)>,
    stats: KernelCacheStats,
}

fn state() -> &'static Mutex<Inner> {
    static STATE: OnceLock<Mutex<Inner>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(Inner {
            cap: DEFAULT_CAPACITY,
            disk_dir: disk_dir_from_env(),
            lru: Vec::new(),
            stats: KernelCacheStats::default(),
        })
    })
}

fn lock() -> MutexGuard<'static, Inner> {
    // A panic while holding the lock leaves only counters/entries behind,
    // all of which remain structurally valid; recover instead of poisoning
    // every later build.
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Strict §7 parse of `BISMO_KERNEL_CACHE`: unset disables the disk tier;
/// a set value must be a usable directory path (created here if absent).
fn disk_dir_from_env() -> Option<PathBuf> {
    match std::env::var("BISMO_KERNEL_CACHE") {
        Ok(v) if v.trim().is_empty() => {
            // PANIC-OK: §7 fail-fast knob contract — an empty value is a
            // misconfiguration, not a request to disable the cache.
            panic!("BISMO_KERNEL_CACHE is set but empty; set it to a cache directory or unset it")
        }
        Ok(v) => {
            std::fs::create_dir_all(&v).unwrap_or_else(|e| {
                // PANIC-OK: §7 fail-fast knob contract — an uncreatable cache
                // directory would silently disable the tier the user asked for.
                panic!("BISMO_KERNEL_CACHE={v}: cannot create cache directory: {e}")
            });
            Some(PathBuf::from(v))
        }
        Err(std::env::VarError::NotPresent) => None,
        // PANIC-OK: §7 fail-fast knob contract (malformed value).
        Err(e) => panic!("BISMO_KERNEL_CACHE is not valid unicode: {e}"),
    }
}

/// Handle-less facade over the process-wide SOCS kernel cache. All methods
/// are safe to call from any thread; mutators exist for benches and tests
/// (cold-build timing, LRU/corruption coverage) and for embedders that want
/// to point the disk tier somewhere programmatically.
pub struct KernelCache;

impl KernelCache {
    /// Snapshot of the cache counters.
    pub fn stats() -> KernelCacheStats {
        lock().stats
    }

    /// Number of bundles currently resident in the in-memory tier.
    pub fn resident() -> usize {
        lock().lru.len()
    }

    /// Drops every in-memory entry (on-disk files are untouched).
    /// Outstanding `Arc` borrowers keep their bundles alive.
    pub fn clear() {
        lock().lru.clear();
    }

    /// Resets all counters to zero.
    pub fn reset_stats() {
        lock().stats = KernelCacheStats::default();
    }

    /// Current in-memory capacity bound.
    pub fn capacity() -> usize {
        lock().cap
    }

    /// Sets the in-memory capacity (clamped to ≥ 1), evicting
    /// least-recently-used entries if the cache is over the new bound.
    pub fn set_capacity(cap: usize) {
        let mut g = lock();
        g.cap = cap.max(1);
        while g.lru.len() > g.cap {
            g.lru.remove(0);
            g.stats.evictions += 1;
        }
    }

    /// The active disk-tier directory, if any.
    pub fn disk_dir() -> Option<PathBuf> {
        lock().disk_dir.clone()
    }

    /// Points the disk tier at `dir` (created if absent; an unusable
    /// directory degrades to misses on load and skipped stores on write),
    /// or disables it with `None`. Overrides the `BISMO_KERNEL_CACHE`
    /// default for the rest of the process.
    pub fn set_disk_dir(dir: Option<PathBuf>) {
        if let Some(d) = &dir {
            let _ = std::fs::create_dir_all(d);
        }
        lock().disk_dir = dir;
    }
}

/// Looks `key` up in both tiers, building (and inserting) on a miss.
/// The lock is never held across disk I/O or the build itself, so two
/// threads racing on the same key may both build; the later insert wins,
/// which is harmless because builds are deterministic.
pub(crate) fn acquire(
    key: u64,
    mask_dim: usize,
    build: impl FnOnce() -> Result<TccKernels, LithoError>,
) -> Result<Arc<TccKernels>, LithoError> {
    let disk_dir;
    {
        let mut g = lock();
        if let Some(pos) = g.lru.iter().position(|(k, _)| *k == key) {
            let entry = g.lru.remove(pos);
            let arc = Arc::clone(&entry.1);
            g.lru.push(entry);
            g.stats.hits += 1;
            return Ok(arc);
        }
        disk_dir = g.disk_dir.clone();
    }
    if let Some(dir) = &disk_dir {
        if let Some(tcc) = load_file(&dir.join(file_name(key)), key, mask_dim) {
            let arc = Arc::new(tcc);
            let mut g = lock();
            g.stats.disk_hits += 1;
            insert_locked(&mut g, key, Arc::clone(&arc));
            return Ok(arc);
        }
    }
    let built = build()?;
    let stored = disk_dir
        .as_deref()
        .is_some_and(|dir| store_file(dir, key, &built, mask_dim));
    let arc = Arc::new(built);
    let mut g = lock();
    g.stats.misses += 1;
    if stored {
        g.stats.disk_stores += 1;
    }
    insert_locked(&mut g, key, Arc::clone(&arc));
    Ok(arc)
}

fn insert_locked(g: &mut Inner, key: u64, arc: Arc<TccKernels>) {
    if let Some(pos) = g.lru.iter().position(|(k, _)| *k == key) {
        // Lost a race with a concurrent builder of the same key; replace
        // (the bundles are value-identical) instead of double-inserting.
        g.lru.remove(pos);
    }
    g.lru.push((key, arc));
    while g.lru.len() > g.cap {
        g.lru.remove(0);
        g.stats.evictions += 1;
    }
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

/// FNV-1a (the journal's hash idiom in `bismo-bench`).
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

struct Hasher(u64);

impl Hasher {
    fn new() -> Self {
        Hasher(FNV_OFFSET)
    }
    fn u8(&mut self, v: u8) {
        self.0 = fnv1a_update(self.0, &[v]);
    }
    fn u64(&mut self, v: u64) {
        self.0 = fnv1a_update(self.0, &v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Cache key over the exact inputs of the TCC build: the optical
/// configuration, the pupil (defocus/aberration state included), the
/// effective source points **with weights**, the truncation rank, and the
/// eigensolver route. `f64`s are hashed by bit pattern, so any numeric
/// change — however small — is a different key.
pub(crate) fn fingerprint(
    cfg: &OpticalConfig,
    pupil: &Pupil,
    points: &[SourcePoint],
    source: &Source,
    q: usize,
) -> u64 {
    let mut h = Hasher::new();
    h.u64(FORMAT_VERSION);
    h.f64(cfg.wavelength_nm());
    h.f64(cfg.na());
    h.usize(cfg.mask_dim());
    h.f64(cfg.pixel_nm());
    h.usize(cfg.source_dim());
    h.f64(cfg.sigma_out());
    h.f64(cfg.sigma_in());
    h.f64(pupil.cutoff());
    h.usize(pupil.dim());
    h.f64(pupil.defocus_nm());
    h.u8(u8::from(pupil.is_real()));
    h.f64(source.freq_scale());
    h.usize(source.dim());
    h.usize(points.len());
    for p in points {
        h.usize(p.index);
        h.f64(p.weight);
    }
    h.usize(q);
    h.u8(u8::from(points.len() <= DENSE_EIG_LIMIT));
    h.finish()
}

// ---------------------------------------------------------------------------
// Disk tier: versioned little-endian binary files
// ---------------------------------------------------------------------------
//
// File layout (all integers little-endian):
//
//   magic      8 bytes   b"BSMOTCC1" (format version baked in)
//   key        u64       fingerprint, must match the requested key
//   payload    u64       payload byte length
//   checksum   u64       FNV-1a over the payload bytes
//   --- payload ---
//   mask_dim   u64       grid the support flats address
//   truncation u64
//   support_n  u64
//   kernel_n   u64
//   support    support_n × u32 flat row-major indices
//   kernels    kernel_n × { kappa f64-bits, support_n × (re, im) f64-bits }
//
// Every read is bounds-checked and cross-checked against the header; any
// inconsistency makes the loader return `None` (a cache miss).

fn file_name(key: u64) -> String {
    format!("tcc-{key:016x}.bin")
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    push_u64(buf, v.to_bits());
}

fn encode_payload(tcc: &TccKernels, mask_dim: usize) -> Vec<u8> {
    let sup = tcc.support.len();
    let cap = 32 + 4 * sup + tcc.kernels.len() * (8 + 16 * sup);
    let mut buf = Vec::with_capacity(cap);
    push_u64(&mut buf, mask_dim as u64);
    push_u64(&mut buf, tcc.truncation as u64);
    push_u64(&mut buf, sup as u64);
    push_u64(&mut buf, tcc.kernels.len() as u64);
    for &(row, col) in &tcc.support {
        push_u32(&mut buf, (row * mask_dim + col) as u32);
    }
    for k in &tcc.kernels {
        push_f64(&mut buf, k.kappa);
        for z in &k.phi {
            push_f64(&mut buf, z.re);
            push_f64(&mut buf, z.im);
        }
    }
    buf
}

/// Bounds-checked reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

fn decode_payload(payload: &[u8], expect_mask_dim: usize) -> Option<TccKernels> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let mask_dim = usize::try_from(c.u64()?).ok()?;
    if mask_dim != expect_mask_dim {
        return None;
    }
    let truncation = usize::try_from(c.u64()?).ok()?;
    let support_n = usize::try_from(c.u64()?).ok()?;
    let kernel_n = usize::try_from(c.u64()?).ok()?;
    // The declared sizes must account for exactly the remaining bytes; a
    // torn or padded file fails here before any allocation is sized by it.
    let body = support_n
        .checked_mul(4)?
        .checked_add(kernel_n.checked_mul(support_n.checked_mul(16)?.checked_add(8)?)?)?;
    if payload.len() != 32 + body {
        return None;
    }
    let n2 = mask_dim.checked_mul(mask_dim)?;
    let mut support = Vec::with_capacity(support_n);
    for _ in 0..support_n {
        let flat = c.u32()? as usize;
        if flat >= n2 {
            return None;
        }
        support.push((flat / mask_dim, flat % mask_dim));
    }
    let mut kernels = Vec::with_capacity(kernel_n);
    for _ in 0..kernel_n {
        let kappa = c.f64()?;
        let mut phi = Vec::with_capacity(support_n);
        for _ in 0..support_n {
            let re = c.f64()?;
            let im = c.f64()?;
            phi.push(Complex64 { re, im });
        }
        kernels.push(SocsKernel { kappa, phi });
    }
    Some(TccKernels {
        support,
        kernels,
        truncation,
    })
}

/// Loads and validates one cache file. Any I/O error, header mismatch,
/// checksum failure, or malformed payload is a miss (`None`) — the cache
/// never turns a bad file into a build error or bad kernels.
fn load_file(path: &Path, key: u64, mask_dim: usize) -> Option<TccKernels> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let mut c = Cursor {
        buf: &bytes[8..HEADER_LEN],
        pos: 0,
    };
    let file_key = c.u64()?;
    let payload_len = usize::try_from(c.u64()?).ok()?;
    let checksum = c.u64()?;
    let payload = &bytes[HEADER_LEN..];
    if file_key != key || payload.len() != payload_len || fnv1a(payload) != checksum {
        return None;
    }
    decode_payload(payload, mask_dim)
}

/// Best-effort persist: serialize, write to a process-unique temp sibling,
/// atomically rename into place (the journal's idiom — readers never see a
/// partial file). Returns whether the bundle landed on disk.
fn store_file(dir: &Path, key: u64, tcc: &TccKernels, mask_dim: usize) -> bool {
    let payload = encode_payload(tcc, mask_dim);
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(MAGIC);
    push_u64(&mut bytes, key);
    push_u64(&mut bytes, payload.len() as u64);
    push_u64(&mut bytes, fnv1a(&payload));
    bytes.extend_from_slice(&payload);

    let path = dir.join(file_name(key));
    let tmp = dir.join(format!("{}.tmp-{}", file_name(key), std::process::id()));
    if std::fs::write(&tmp, &bytes).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    if std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismo_optics::SourceShape;

    fn sample(mask_dim: usize) -> TccKernels {
        TccKernels {
            support: vec![(0, 1), (2, 3), (mask_dim - 1, mask_dim - 1)],
            kernels: vec![
                SocsKernel {
                    kappa: 0.75,
                    phi: vec![
                        Complex64::new(1.0, -2.0),
                        Complex64::new(0.5, 0.25),
                        Complex64::new(-1e-300, 3e12),
                    ],
                },
                SocsKernel {
                    kappa: 1e-13,
                    phi: vec![Complex64::ZERO, Complex64::I, Complex64::ONE],
                },
            ],
            truncation: 7,
        }
    }

    fn assert_same(a: &TccKernels, b: &TccKernels) {
        assert_eq!(a.support, b.support);
        assert_eq!(a.truncation, b.truncation);
        assert_eq!(a.kernels.len(), b.kernels.len());
        for (x, y) in a.kernels.iter().zip(&b.kernels) {
            assert_eq!(x.kappa.to_bits(), y.kappa.to_bits());
            assert_eq!(x.phi.len(), y.phi.len());
            for (p, q) in x.phi.iter().zip(&y.phi) {
                assert_eq!(p.re.to_bits(), q.re.to_bits());
                assert_eq!(p.im.to_bits(), q.im.to_bits());
            }
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bismo-kc-unit-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn payload_roundtrip_is_bit_exact() {
        let tcc = sample(64);
        let payload = encode_payload(&tcc, 64);
        let back = decode_payload(&payload, 64).expect("roundtrip");
        assert_same(&tcc, &back);
        // A different grid is a miss, not a mis-addressed support.
        assert!(decode_payload(&payload, 128).is_none());
    }

    #[test]
    fn store_then_load_roundtrips_without_temp_litter() {
        let dir = tmpdir("roundtrip");
        let tcc = sample(64);
        let key = 0xdead_beef_1234_5678;
        assert!(store_file(&dir, key, &tcc, 64));
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec![file_name(key)], "temp sibling must be gone");
        let back = load_file(&dir.join(file_name(key)), key, 64).expect("load");
        assert_same(&tcc, &back);
        // Wrong key: miss, even though the file parses.
        assert!(load_file(&dir.join(file_name(key)), key ^ 1, 64).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_read_as_misses() {
        let dir = tmpdir("corrupt");
        let tcc = sample(64);
        let key = 0x0123_4567_89ab_cdef;
        assert!(store_file(&dir, key, &tcc, 64));
        let path = dir.join(file_name(key));
        let pristine = std::fs::read(&path).unwrap();

        // Truncations at every interesting boundary.
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(load_file(&path, key, 64).is_none(), "cut at {cut}");
        }
        // A single flipped payload bit trips the checksum.
        let mut flipped = pristine.clone();
        flipped[HEADER_LEN + 9] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(load_file(&path, key, 64).is_none());
        // Wrong magic (e.g. a future format version).
        let mut remagic = pristine.clone();
        remagic[7] = b'9';
        std::fs::write(&path, &remagic).unwrap();
        assert!(load_file(&path, key, 64).is_none());
        // Garbage and missing files.
        std::fs::write(&path, b"not a cache file at all").unwrap();
        assert!(load_file(&path, key, 64).is_none());
        std::fs::remove_file(&path).unwrap();
        assert!(load_file(&path, key, 64).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn declared_sizes_must_match_actual_bytes() {
        let tcc = sample(64);
        let mut payload = encode_payload(&tcc, 64);
        // Inflate the declared kernel count without adding bytes.
        payload[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_payload(&payload, 64).is_none());
        // Out-of-grid support flat.
        let mut payload = encode_payload(&tcc, 64);
        payload[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_payload(&payload, 64).is_none());
    }

    #[test]
    fn fingerprint_separates_build_inputs() {
        let cfg = OpticalConfig::test_small();
        let pupil = Pupil::new(&cfg);
        let src = Source::from_shape(
            &cfg,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        let pts = src.effective_points(1e-12);
        let base = fingerprint(&cfg, &pupil, &pts, &src, 12);
        assert_eq!(base, fingerprint(&cfg, &pupil, &pts, &src, 12));
        assert_ne!(base, fingerprint(&cfg, &pupil, &pts, &src, 13));
        let defocused = Pupil::new(&cfg).with_defocus(50.0);
        assert_ne!(base, fingerprint(&cfg, &defocused, &pts, &src, 12));
        // An ULP-sized weight change is a different illumination.
        let mut weights = src.weights().to_vec();
        let nz = weights.iter().position(|&w| w > 0.0).unwrap();
        weights[nz] = f64::from_bits(weights[nz].to_bits() + 1);
        let tweaked = Source::from_weights(&cfg, weights);
        let tpts = tweaked.effective_points(1e-12);
        assert_ne!(base, fingerprint(&cfg, &pupil, &tpts, &tweaked, 12));
    }
}
