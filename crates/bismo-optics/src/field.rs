//! Real-valued square fields (masks, aerial images, resist images, parameter
//! grids) shared by every crate in the workspace.

use std::ops::{Index, IndexMut};

/// A square, row-major `f64` field.
///
/// This is the common currency of the workspace: masks, aerial-image
/// intensities, resist images, loss gradients and optimization parameters are
/// all `RealField`s.
///
/// # Examples
///
/// ```
/// use bismo_optics::RealField;
///
/// let mut f = RealField::zeros(4);
/// f[(1, 2)] = 3.0;
/// assert_eq!(f[(1, 2)], 3.0);
/// assert_eq!(f.sum(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RealField {
    dim: usize,
    data: Vec<f64>,
}

impl RealField {
    /// Creates a `dim × dim` field of zeros.
    pub fn zeros(dim: usize) -> Self {
        RealField {
            dim,
            data: vec![0.0; dim * dim],
        }
    }

    /// Creates a field filled with `value`.
    pub fn filled(dim: usize, value: f64) -> Self {
        RealField {
            dim,
            data: vec![value; dim * dim],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dim * dim`.
    pub fn from_vec(dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), dim * dim, "field buffer size mismatch");
        RealField { dim, data }
    }

    /// Builds a field by evaluating `f(row, col)` at every pixel.
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(dim * dim);
        for r in 0..dim {
            for c in 0..dim {
                data.push(f(r, c));
            }
        }
        RealField { dim, data }
    }

    /// Side length of the field.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of pixels (`dim²`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for the degenerate zero-dimension field.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the field and returns the underlying buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Sum of all pixels.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Minimum pixel value (`+∞` for an empty field).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum pixel value (`-∞` for an empty field).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Squared Euclidean norm `Σ v²`.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Applies `f` to every pixel in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new field with `f` applied to every pixel.
    #[must_use]
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Pointwise `self ← self + alpha · other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn axpy(&mut self, alpha: f64, other: &RealField) {
        assert_eq!(self.dim, other.dim, "field dimension mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Pointwise product into a new field.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn hadamard(&self, other: &RealField) -> RealField {
        assert_eq!(self.dim, other.dim, "field dimension mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        RealField {
            dim: self.dim,
            data,
        }
    }

    /// Inner product `Σ selfᵢ · otherᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &RealField) -> f64 {
        assert_eq!(self.dim, other.dim, "field dimension mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Downsamples by an integer `factor` through non-overlapping block
    /// means: pixel `(r, c)` of the result averages the `factor × factor`
    /// block at `(r·factor, c·factor)`. This is the target-downsampling
    /// used to build coarse-level multigrid problems (DESIGN.md §11):
    /// unlike spectral restriction it cannot ring, so a binary target maps
    /// to values in `[0, 1]` with fractional pixels only along edges.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is nonzero and divides the field dimension.
    #[must_use]
    pub fn block_mean(&self, factor: usize) -> RealField {
        assert!(
            factor != 0 && self.dim.is_multiple_of(factor),
            "block_mean factor {factor} must divide field dim {}",
            self.dim
        );
        let out_dim = self.dim / factor;
        let inv = 1.0 / (factor * factor) as f64;
        RealField::from_fn(out_dim, |r, c| {
            let mut acc = 0.0;
            for dr in 0..factor {
                let row = (r * factor + dr) * self.dim + c * factor;
                for dc in 0..factor {
                    acc += self.data[row + dc];
                }
            }
            acc * inv
        })
    }

    /// Squared L2 distance `‖self − other‖²` — the paper's L2 metric
    /// (Definition 1) when applied to resist vs. target.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sq_distance(&self, other: &RealField) -> f64 {
        assert_eq!(self.dim, other.dim, "field dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

impl Index<(usize, usize)> for RealField {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.dim + c]
    }
}

impl IndexMut<(usize, usize)> for RealField {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.dim + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(RealField::zeros(3).sum(), 0.0);
        assert_eq!(RealField::filled(3, 2.0).sum(), 18.0);
        let f = RealField::from_fn(2, |r, c| (r * 2 + c) as f64);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "field buffer size mismatch")]
    fn from_vec_validates_length() {
        let _ = RealField::from_vec(2, vec![0.0; 3]);
    }

    #[test]
    fn indexing_is_row_major() {
        let mut f = RealField::zeros(3);
        f[(2, 1)] = 5.0;
        assert_eq!(f.as_slice()[7], 5.0);
    }

    #[test]
    fn algebra_helpers() {
        let a = RealField::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = RealField::from_vec(2, vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.dot(&b), 4.0 + 6.0 + 6.0 + 4.0);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.sq_distance(&b), 9.0 + 1.0 + 1.0 + 9.0);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn min_max_norm() {
        let f = RealField::from_vec(2, vec![-1.0, 0.5, 2.0, -3.0]);
        assert_eq!(f.min(), -3.0);
        assert_eq!(f.max(), 2.0);
        assert_eq!(f.norm_sqr(), 1.0 + 0.25 + 4.0 + 9.0);
    }

    #[test]
    fn map_preserves_dim() {
        let f = RealField::filled(4, 1.0).map(|v| v * 3.0);
        assert_eq!(f.dim(), 4);
        assert_eq!(f.sum(), 48.0);
    }

    #[test]
    #[should_panic(expected = "field dimension mismatch")]
    fn dot_panics_on_dim_mismatch() {
        let _ = RealField::zeros(2).dot(&RealField::zeros(3));
    }

    #[test]
    fn block_mean_averages_blocks() {
        let f = RealField::from_fn(4, |r, c| (r * 4 + c) as f64);
        let d = f.block_mean(2);
        assert_eq!(d.dim(), 2);
        // Top-left block: (0 + 1 + 4 + 5) / 4.
        assert_eq!(d.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        // factor == dim collapses to the global mean; factor == 1 is id.
        assert_eq!(f.block_mean(4).as_slice(), &[7.5]);
        assert_eq!(f.block_mean(1), f);
    }

    #[test]
    #[should_panic(expected = "must divide field dim")]
    fn block_mean_rejects_non_divisor() {
        let _ = RealField::zeros(4).block_mean(3);
    }
}
