//! Optical system configuration.
//!
//! Carries the physical constants of the projection system (paper §4:
//! λ = 193 nm, NA = 1.35, annular σ_o = 0.95 / σ_i = 0.63) together with the
//! discretization (mask grid `N_m`, source grid `N_j`, pixel pitch). The
//! paper runs 2048×2048-pixel tiles; on a CPU-only reproduction the default
//! is scaled to 256×256 with the pixel pitch enlarged so the physical tile
//! stays 2×2 µm (see DESIGN.md §3 for why this preserves the experiments).

/// Error raised when an [`OpticalConfig`] is physically or numerically
/// inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    fn new(msg: impl Into<String>) -> Self {
        ConfigError { msg: msg.into() }
    }
}

/// Physical and discretization parameters of the lithography system.
///
/// Construct via [`OpticalConfig::builder`] (validating) or use the
/// presets [`OpticalConfig::scaled_default`] / [`OpticalConfig::test_small`].
///
/// # Examples
///
/// ```
/// use bismo_optics::OpticalConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::builder()
///     .mask_dim(128)
///     .pixel_nm(16.0)
///     .source_dim(11)
///     .build()?;
/// assert!(cfg.pupil_radius_bins() > 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpticalConfig {
    wavelength_nm: f64,
    na: f64,
    mask_dim: usize,
    pixel_nm: f64,
    source_dim: usize,
    sigma_out: f64,
    sigma_in: f64,
}

impl OpticalConfig {
    /// Starts a validating builder pre-loaded with the paper's physics
    /// (λ = 193 nm, NA = 1.35, σ_o = 0.95, σ_i = 0.63) and the scaled default
    /// grids.
    pub fn builder() -> OpticalConfigBuilder {
        OpticalConfigBuilder::default()
    }

    /// The scaled default used by the benchmark harness: 256×256 mask at
    /// 8 nm pitch (2×2 µm tile), 15×15 source grid.
    pub fn scaled_default() -> Self {
        OpticalConfig::builder()
            .build()
            // PANIC-OK: preset constants validated by test; failure is a build bug, not runtime input.
            .expect("scaled default config is valid by construction")
    }

    /// A small configuration for fast unit tests: 64×64 mask at 8 nm pitch
    /// (512 nm tile, pupil radius ≈ 3.6 bins so the Hopkins TCC stays tiny),
    /// 7×7 source grid.
    pub fn test_small() -> Self {
        OpticalConfig::builder()
            .mask_dim(64)
            .pixel_nm(8.0)
            .source_dim(7)
            .build()
            // PANIC-OK: preset constants validated by test; failure is a build bug, not runtime input.
            .expect("test config is valid by construction")
    }

    /// Illumination wavelength in nanometres.
    #[inline]
    pub fn wavelength_nm(&self) -> f64 {
        self.wavelength_nm
    }

    /// Numerical aperture of the projection system.
    #[inline]
    pub fn na(&self) -> f64 {
        self.na
    }

    /// Mask grid dimension `N_m` (mask is `N_m × N_m` pixels).
    #[inline]
    pub fn mask_dim(&self) -> usize {
        self.mask_dim
    }

    /// Mask pixel pitch in nanometres.
    #[inline]
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// Source grid dimension `N_j` (source is `N_j × N_j` points).
    #[inline]
    pub fn source_dim(&self) -> usize {
        self.source_dim
    }

    /// Outer partial-coherence radius σ_o of the illumination template.
    #[inline]
    pub fn sigma_out(&self) -> f64 {
        self.sigma_out
    }

    /// Inner partial-coherence radius σ_i of the illumination template.
    #[inline]
    pub fn sigma_in(&self) -> f64 {
        self.sigma_in
    }

    /// Physical tile side length in nanometres.
    #[inline]
    pub fn tile_nm(&self) -> f64 {
        self.mask_dim as f64 * self.pixel_nm
    }

    /// Frequency-grid step `1 / (N_m · pixel)` in 1/nm.
    #[inline]
    pub fn freq_step(&self) -> f64 {
        1.0 / self.tile_nm()
    }

    /// Pupil cut-off frequency `NA / λ` in 1/nm (paper Eq. 5).
    #[inline]
    pub fn pupil_cutoff(&self) -> f64 {
        self.na / self.wavelength_nm
    }

    /// Pupil radius measured in frequency bins of the mask grid.
    #[inline]
    pub fn pupil_radius_bins(&self) -> f64 {
        self.pupil_cutoff() / self.freq_step()
    }

    /// Maximum source-point frequency (σ = 1 ring) in 1/nm.
    ///
    /// Source coordinates are pupil-normalized: a point at radius σ
    /// illuminates with spatial frequency `σ · NA / λ`.
    #[inline]
    pub fn source_freq_scale(&self) -> f64 {
        self.pupil_cutoff()
    }
}

impl Default for OpticalConfig {
    fn default() -> Self {
        OpticalConfig::scaled_default()
    }
}

/// Builder for [`OpticalConfig`]; see [`OpticalConfig::builder`].
#[derive(Debug, Clone)]
pub struct OpticalConfigBuilder {
    wavelength_nm: f64,
    na: f64,
    mask_dim: usize,
    pixel_nm: f64,
    source_dim: usize,
    sigma_out: f64,
    sigma_in: f64,
}

impl Default for OpticalConfigBuilder {
    fn default() -> Self {
        OpticalConfigBuilder {
            wavelength_nm: 193.0,
            na: 1.35,
            mask_dim: 256,
            pixel_nm: 8.0,
            source_dim: 15,
            sigma_out: 0.95,
            sigma_in: 0.63,
        }
    }
}

impl OpticalConfigBuilder {
    /// Sets the illumination wavelength in nanometres.
    pub fn wavelength_nm(mut self, v: f64) -> Self {
        self.wavelength_nm = v;
        self
    }

    /// Sets the numerical aperture.
    pub fn na(mut self, v: f64) -> Self {
        self.na = v;
        self
    }

    /// Sets the mask grid dimension (must be a power of two for the FFT).
    pub fn mask_dim(mut self, v: usize) -> Self {
        self.mask_dim = v;
        self
    }

    /// Sets the mask pixel pitch in nanometres.
    pub fn pixel_nm(mut self, v: f64) -> Self {
        self.pixel_nm = v;
        self
    }

    /// Sets the source grid dimension (odd values center a point on-axis).
    pub fn source_dim(mut self, v: usize) -> Self {
        self.source_dim = v;
        self
    }

    /// Sets the outer partial-coherence radius σ_o.
    pub fn sigma_out(mut self, v: f64) -> Self {
        self.sigma_out = v;
        self
    }

    /// Sets the inner partial-coherence radius σ_i.
    pub fn sigma_in(mut self, v: f64) -> Self {
        self.sigma_in = v;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when any parameter is non-physical (non-positive
    /// wavelength/NA/pitch, σ ordering violated) or numerically unusable
    /// (mask dimension not a power of two, pupil radius below one frequency
    /// bin — which would make the system image nothing).
    pub fn build(self) -> Result<OpticalConfig, ConfigError> {
        if self.wavelength_nm <= 0.0 {
            return Err(ConfigError::new("wavelength must be positive"));
        }
        if self.na <= 0.0 {
            return Err(ConfigError::new("numerical aperture must be positive"));
        }
        if self.pixel_nm <= 0.0 {
            return Err(ConfigError::new("pixel pitch must be positive"));
        }
        if self.mask_dim == 0 || !self.mask_dim.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "mask dimension {} must be a nonzero power of two",
                self.mask_dim
            )));
        }
        if self.source_dim < 3 {
            return Err(ConfigError::new("source grid must be at least 3×3"));
        }
        if !(0.0..=1.0).contains(&self.sigma_in)
            || !(0.0..=1.0).contains(&self.sigma_out)
            || self.sigma_in >= self.sigma_out
        {
            return Err(ConfigError::new(
                "require 0 ≤ σ_i < σ_o ≤ 1 for the illumination template",
            ));
        }
        let cfg = OpticalConfig {
            wavelength_nm: self.wavelength_nm,
            na: self.na,
            mask_dim: self.mask_dim,
            pixel_nm: self.pixel_nm,
            source_dim: self.source_dim,
            sigma_out: self.sigma_out,
            sigma_in: self.sigma_in,
        };
        if cfg.pupil_radius_bins() < 1.0 {
            return Err(ConfigError::new(format!(
                "pupil radius {:.3} bins < 1: tile too small or NA too low",
                cfg.pupil_radius_bins()
            )));
        }
        // The Nyquist frequency must exceed the widest doubly-shifted pupil
        // excursion, or shifted pupils alias off the grid.
        if cfg.pupil_radius_bins() * 2.0 >= cfg.mask_dim as f64 / 2.0 {
            return Err(ConfigError::new(
                "pixel pitch too coarse: shifted pupil would alias past Nyquist",
            ));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_default_is_consistent() {
        let cfg = OpticalConfig::scaled_default();
        assert_eq!(cfg.mask_dim(), 256);
        assert_eq!(cfg.source_dim(), 15);
        assert!((cfg.tile_nm() - 2048.0).abs() < 1e-9);
        // NA/λ = 1.35/193 ≈ 6.995e-3; bins = 6.995e-3 * 2048 ≈ 14.3.
        assert!((cfg.pupil_radius_bins() - 14.325).abs() < 0.1);
    }

    #[test]
    fn test_small_preset_is_valid() {
        let cfg = OpticalConfig::test_small();
        assert_eq!(cfg.mask_dim(), 64);
        assert!(cfg.pupil_radius_bins() >= 1.0);
    }

    #[test]
    fn rejects_non_power_of_two_mask() {
        assert!(OpticalConfig::builder().mask_dim(100).build().is_err());
    }

    #[test]
    fn rejects_bad_sigma_ordering() {
        assert!(OpticalConfig::builder()
            .sigma_in(0.9)
            .sigma_out(0.5)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_negative_physics() {
        assert!(OpticalConfig::builder()
            .wavelength_nm(-1.0)
            .build()
            .is_err());
        assert!(OpticalConfig::builder().na(0.0).build().is_err());
        assert!(OpticalConfig::builder().pixel_nm(0.0).build().is_err());
    }

    #[test]
    fn rejects_undersampled_pupil() {
        // 8×8 tile at 1 nm: freq step huge, pupil < 1 bin.
        assert!(OpticalConfig::builder()
            .mask_dim(8)
            .pixel_nm(1.0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_aliasing_pitch() {
        // Very coarse pitch pushes the pupil past Nyquist/2.
        assert!(OpticalConfig::builder()
            .mask_dim(64)
            .pixel_nm(200.0)
            .build()
            .is_err());
    }

    #[test]
    fn derived_quantities_scale_with_pitch() {
        let a = OpticalConfig::builder()
            .mask_dim(128)
            .pixel_nm(16.0)
            .build()
            .unwrap();
        let b = OpticalConfig::builder()
            .mask_dim(256)
            .pixel_nm(8.0)
            .build()
            .unwrap();
        // Same physical tile ⇒ same frequency step and pupil bins.
        assert!((a.freq_step() - b.freq_step()).abs() < 1e-15);
        assert!((a.pupil_radius_bins() - b.pupil_radius_bins()).abs() < 1e-9);
    }
}
