//! Precomputed shifted pupils `H(f + f_σ, g + g_σ)` for every point of the
//! source grid.
//!
//! The Abbe engine needs the shifted pupil of source point σ on every
//! optimizer iteration, three times per iteration (forward, mask-adjoint and
//! source-gradient passes) — yet the source *grid* never moves during
//! optimization; only the weights `j_σ` change. A [`ShiftedPupilTable`]
//! therefore evaluates each shifted pupil exactly once per
//! `(Pupil, source grid)` pair and stores it sparsely: the passband of a
//! shifted pupil covers only ~π·r² of the N² frequency bins (r = pupil
//! radius in bins), so applying a cached pupil is a zero-fill plus a sparse
//! scatter instead of N² analytic evaluations.
//!
//! The cache key is the pair (pupil cutoff + defocus phase, source grid
//! geometry): rebuilding is only needed when the projection pupil or the
//! optical configuration changes — never per iteration (see DESIGN.md §6).
//!
//! The table is agnostic to how the mask spectrum was produced: the opt-in
//! real-input FFT path (`Fft2Plan::forward_real`, DESIGN.md §10) emits the
//! **full** corner-origin spectrum — Hermitian symmetry is used inside the
//! transform and then unfolded — so the lit-bin indices here address the
//! same dense N² layout regardless of which spectrum path the imager rides.

use crate::config::OpticalConfig;
use crate::pupil::Pupil;
use bismo_fft::Complex64;

/// One cached shifted pupil: the lit frequency bins of
/// `H(f + f_σ, g + g_σ)` on the mask grid, in ascending flat-index order.
///
/// For an in-focus (purely real) pupil the value at every lit bin is exactly
/// 1, so `values` is empty and the indices alone carry the whole function;
/// with an aberrated pupil `values[i]` is the complex transmission at
/// `indices[i]`.
#[derive(Debug, Clone, Copy)]
pub struct ShiftedPupilEntry<'a> {
    /// Flat (row-major) mask-grid frequency bins inside the shifted pupil.
    pub indices: &'a [u32],
    /// Complex pupil values aligned with `indices`; empty means all-ones.
    pub values: &'a [Complex64],
}

impl ShiftedPupilEntry<'_> {
    /// Pupil value at position `pos` of this entry's lit-bin list.
    #[inline]
    pub fn value_at(&self, pos: usize) -> Complex64 {
        if self.values.is_empty() {
            Complex64::ONE
        } else {
            self.values[pos]
        }
    }

    /// Writes `H_σ ⊙ spec` into `out`: zero-fill plus a sparse scatter over
    /// the ~π·r² lit bins (instead of N² analytic pupil evaluations). This
    /// is the forward-imaging kernel of the Abbe engine.
    ///
    /// # Panics
    ///
    /// Panics if a lit-bin index exceeds either buffer (i.e. the buffers are
    /// not on this table's mask grid).
    pub fn apply(&self, spec: &[Complex64], out: &mut [Complex64]) {
        out.fill(Complex64::ZERO);
        if self.values.is_empty() {
            for &k in self.indices {
                let k = k as usize;
                out[k] = spec[k];
            }
        } else {
            for (&k, &v) in self.indices.iter().zip(self.values) {
                let k = k as usize;
                out[k] = spec[k] * v;
            }
        }
    }

    /// Batched [`ShiftedPupilEntry::apply`]: `specs` and `out` hold `B`
    /// contiguously stacked `n2`-element fields, and the sparse index list
    /// is walked **once**, applying each lit bin to every batch entry in an
    /// inner loop (the pupil value is loaded once per bin, not once per
    /// entry). Per-entry results are bit-identical to `B` separate `apply`
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths differ or are not a whole number of
    /// `n2`-element fields.
    pub fn apply_batch(&self, specs: &[Complex64], out: &mut [Complex64], n2: usize) {
        assert_eq!(specs.len(), out.len(), "batch buffer length mismatch");
        assert_eq!(
            out.len() % n2,
            0,
            "batch buffer is not a whole number of fields"
        );
        let batch = out.len() / n2;
        out.fill(Complex64::ZERO);
        if self.values.is_empty() {
            for &k in self.indices {
                let k = k as usize;
                for b in 0..batch {
                    out[b * n2 + k] = specs[b * n2 + k];
                }
            }
        } else {
            for (&k, &v) in self.indices.iter().zip(self.values) {
                let k = k as usize;
                for b in 0..batch {
                    out[b * n2 + k] = specs[b * n2 + k] * v;
                }
            }
        }
    }

    /// Accumulates `w · H̄_σ ⊙ back` into `acc` over the lit bins only —
    /// the frequency-domain half of the Abbe mask adjoint.
    ///
    /// # Panics
    ///
    /// Panics if a lit-bin index exceeds either buffer.
    pub fn accumulate(&self, acc: &mut [Complex64], back: &[Complex64], w: f64) {
        if self.values.is_empty() {
            for &k in self.indices {
                let k = k as usize;
                acc[k] += back[k].scale(w);
            }
        } else {
            for (&k, &v) in self.indices.iter().zip(self.values) {
                let k = k as usize;
                acc[k] += back[k] * v.conj().scale(w);
            }
        }
    }

    /// Batched [`ShiftedPupilEntry::accumulate`]: one walk of the sparse
    /// index list, accumulating every batch entry per bin. The conjugated,
    /// weighted pupil value is computed once per bin and reused across the
    /// batch, so per-entry results are bit-identical to `B` separate
    /// `accumulate` calls.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths differ or are not a whole number of
    /// `n2`-element fields.
    pub fn accumulate_batch(&self, acc: &mut [Complex64], back: &[Complex64], w: f64, n2: usize) {
        assert_eq!(acc.len(), back.len(), "batch buffer length mismatch");
        assert_eq!(
            acc.len() % n2,
            0,
            "batch buffer is not a whole number of fields"
        );
        let batch = acc.len() / n2;
        if self.values.is_empty() {
            for &k in self.indices {
                let k = k as usize;
                for b in 0..batch {
                    acc[b * n2 + k] += back[b * n2 + k].scale(w);
                }
            }
        } else {
            for (&k, &v) in self.indices.iter().zip(self.values) {
                let k = k as usize;
                let vw = v.conj().scale(w);
                for b in 0..batch {
                    acc[b * n2 + k] += back[b * n2 + k] * vw;
                }
            }
        }
    }
}

/// Shifted pupils for all `N_j × N_j` source-grid points, evaluated once and
/// shared (behind an `Arc`) by every imaging pass and worker thread.
///
/// # Examples
///
/// ```
/// use bismo_optics::{OpticalConfig, Pupil, ShiftedPupilTable};
///
/// let cfg = OpticalConfig::test_small();
/// let table = ShiftedPupilTable::new(&cfg, &Pupil::new(&cfg));
/// assert_eq!(table.source_dim(), cfg.source_dim());
/// // The center grid point carries the unshifted pupil.
/// let nj = table.source_dim();
/// let center = table.entry((nj / 2) * nj + nj / 2);
/// assert_eq!(center.indices.len(), Pupil::new(&cfg).support_len());
/// ```
#[derive(Debug, Clone)]
pub struct ShiftedPupilTable {
    mask_dim: usize,
    source_dim: usize,
    real: bool,
    /// Concatenated lit-bin lists of all grid points.
    indices: Vec<u32>,
    /// Concatenated complex values (empty for a real pupil).
    values: Vec<Complex64>,
    /// Start offsets into `indices`/`values` per grid point
    /// (length `source_dim² + 1`).
    starts: Vec<usize>,
}

impl ShiftedPupilTable {
    /// Evaluates `pupil` at every source-grid shift of `cfg`.
    ///
    /// The shift frequencies use exactly the same arithmetic as
    /// [`crate::Source::sigma_coords`] and `cfg.source_freq_scale()`, so
    /// cached values are bit-identical to on-the-fly evaluation.
    pub fn new(cfg: &OpticalConfig, pupil: &Pupil) -> Self {
        ShiftedPupilTable::build(cfg, pupil, None)
    }

    /// Like [`ShiftedPupilTable::new`] but evaluating only the listed grid
    /// indices; entries for unlisted points are empty. Used when the caller
    /// knows which source points are lit (e.g. a Hopkins TCC build over the
    /// effective points of a frozen source) and the full grid would be
    /// wasted work.
    pub fn for_points(cfg: &OpticalConfig, pupil: &Pupil, grid_indices: &[usize]) -> Self {
        ShiftedPupilTable::build(cfg, pupil, Some(grid_indices))
    }

    fn build(cfg: &OpticalConfig, pupil: &Pupil, selection: Option<&[usize]>) -> Self {
        let n = cfg.mask_dim();
        let nj = cfg.source_dim();
        let real = pupil.is_real();
        let half = (nj - 1) as f64 / 2.0;
        let scale = cfg.source_freq_scale();
        let selected: Option<Vec<bool>> = selection.map(|list| {
            let mut mask = vec![false; nj * nj];
            for &idx in list {
                mask[idx] = true;
            }
            mask
        });

        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut starts = Vec::with_capacity(nj * nj + 1);
        starts.push(0);
        for row in 0..nj {
            for col in 0..nj {
                let skip = selected.as_ref().is_some_and(|mask| !mask[row * nj + col]);
                if !skip {
                    let shift_f = (col as f64 - half) / half * scale;
                    let shift_g = (row as f64 - half) / half * scale;
                    for r in 0..n {
                        for c in 0..n {
                            if real {
                                if pupil.shifted_at(r, c, shift_f, shift_g) > 0.0 {
                                    indices.push((r * n + c) as u32);
                                }
                            } else {
                                let h = pupil.shifted_complex(r, c, shift_f, shift_g);
                                if h.norm_sqr() > 0.0 {
                                    indices.push((r * n + c) as u32);
                                    values.push(h);
                                }
                            }
                        }
                    }
                }
                starts.push(indices.len());
            }
        }
        ShiftedPupilTable {
            mask_dim: n,
            source_dim: nj,
            real,
            indices,
            values,
            starts,
        }
    }

    /// Mask grid dimension the pupils are sampled on.
    #[inline]
    pub fn mask_dim(&self) -> usize {
        self.mask_dim
    }

    /// Source grid dimension `N_j` the shifts are taken from.
    #[inline]
    pub fn source_dim(&self) -> usize {
        self.source_dim
    }

    /// Whether the underlying pupil is purely real (all cached values are 1).
    #[inline]
    pub fn is_real(&self) -> bool {
        self.real
    }

    /// The cached shifted pupil of source-grid point `grid_index`
    /// (row-major flat index into the `N_j × N_j` grid).
    ///
    /// # Panics
    ///
    /// Panics if `grid_index >= source_dim²`.
    #[inline]
    pub fn entry(&self, grid_index: usize) -> ShiftedPupilEntry<'_> {
        let lo = self.starts[grid_index];
        let hi = self.starts[grid_index + 1];
        ShiftedPupilEntry {
            indices: &self.indices[lo..hi],
            values: if self.real { &[] } else { &self.values[lo..hi] },
        }
    }

    /// Total number of cached lit bins across all grid points (a memory /
    /// work proxy used by benches and tests).
    #[inline]
    pub fn total_lit_bins(&self) -> usize {
        self.indices.len()
    }

    /// Applies the shifted pupil of source-grid point `grid_index` to a
    /// batch of stacked spectra in one table walk — see
    /// [`ShiftedPupilEntry::apply_batch`]. This is the per-source-point
    /// kernel of fused multi-dose / multi-clip imaging: the sparse table is
    /// traversed once and every batch entry rides along.
    ///
    /// # Panics
    ///
    /// Panics if `grid_index >= source_dim²` or the buffers are not stacked
    /// fields of this table's mask grid.
    #[inline]
    pub fn apply_batch(&self, grid_index: usize, specs: &[Complex64], out: &mut [Complex64]) {
        let n2 = self.mask_dim * self.mask_dim;
        self.entry(grid_index).apply_batch(specs, out, n2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;

    #[test]
    fn entries_match_analytic_shifted_pupil() {
        let cfg = OpticalConfig::test_small();
        let pupil = Pupil::new(&cfg);
        let table = ShiftedPupilTable::new(&cfg, &pupil);
        assert!(table.is_real());
        let n = cfg.mask_dim();
        let src = Source::dark(&cfg);
        let nj = cfg.source_dim();
        for &(row, col) in &[(0usize, 0usize), (nj / 2, nj / 2), (nj - 1, 2)] {
            let (sx, sy) = src.sigma_coords(row, col);
            let (sf, sg) = (sx * cfg.source_freq_scale(), sy * cfg.source_freq_scale());
            let entry = table.entry(row * nj + col);
            let mut pos = 0usize;
            for r in 0..n {
                for c in 0..n {
                    let lit = pupil.shifted_at(r, c, sf, sg) > 0.0;
                    let cached =
                        pos < entry.indices.len() && entry.indices[pos] as usize == r * n + c;
                    assert_eq!(lit, cached, "bin ({r},{c}) of grid point ({row},{col})");
                    if cached {
                        assert_eq!(entry.value_at(pos), Complex64::ONE);
                        pos += 1;
                    }
                }
            }
            assert_eq!(pos, entry.indices.len());
        }
    }

    #[test]
    fn defocused_entries_store_complex_values() {
        let cfg = OpticalConfig::test_small();
        let pupil = Pupil::new(&cfg).with_defocus(120.0);
        let table = ShiftedPupilTable::new(&cfg, &pupil);
        assert!(!table.is_real());
        let n = cfg.mask_dim();
        let nj = cfg.source_dim();
        let src = Source::dark(&cfg);
        let (row, col) = (nj / 2, nj / 2 + 1);
        let (sx, sy) = src.sigma_coords(row, col);
        let (sf, sg) = (sx * cfg.source_freq_scale(), sy * cfg.source_freq_scale());
        let entry = table.entry(row * nj + col);
        assert!(!entry.indices.is_empty());
        for (pos, &flat) in entry.indices.iter().enumerate() {
            let (r, c) = (flat as usize / n, flat as usize % n);
            let expected = pupil.shifted_complex(r, c, sf, sg);
            let got = entry.value_at(pos);
            assert_eq!(got.re, expected.re);
            assert_eq!(got.im, expected.im);
        }
    }

    #[test]
    fn for_points_matches_full_table_on_selected_entries() {
        let cfg = OpticalConfig::test_small();
        let pupil = Pupil::new(&cfg);
        let full = ShiftedPupilTable::new(&cfg, &pupil);
        let nj = cfg.source_dim();
        let picks = [0usize, nj + 2, nj * nj / 2, nj * nj - 1];
        let partial = ShiftedPupilTable::for_points(&cfg, &pupil, &picks);
        for idx in 0..nj * nj {
            let got = partial.entry(idx);
            if picks.contains(&idx) {
                assert_eq!(got.indices, full.entry(idx).indices, "entry {idx}");
            } else {
                assert!(got.indices.is_empty(), "unselected entry {idx} not empty");
            }
        }
        assert!(partial.total_lit_bins() < full.total_lit_bins());
    }

    #[test]
    fn batch_apply_and_accumulate_match_per_entry_bitwise() {
        // One table walk over B stacked fields must equal B independent
        // walks bit-for-bit, for both the real (index-only) and the
        // aberrated (complex-valued) table variants.
        let cfg = OpticalConfig::test_small();
        let n2 = cfg.mask_dim() * cfg.mask_dim();
        let nj = cfg.source_dim();
        let batch = 3usize;
        let mut s = 7u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let specs: Vec<Complex64> = (0..batch * n2)
            .map(|_| Complex64::new(next(), next()))
            .collect();
        let back: Vec<Complex64> = (0..batch * n2)
            .map(|_| Complex64::new(next(), next()))
            .collect();

        for table in [
            ShiftedPupilTable::new(&cfg, &Pupil::new(&cfg)),
            ShiftedPupilTable::new(&cfg, &Pupil::new(&cfg).with_defocus(120.0)),
        ] {
            for &idx in &[0usize, nj * nj / 2, nj * nj - 1] {
                let entry = table.entry(idx);
                let mut batched = vec![Complex64::ZERO; batch * n2];
                table.apply_batch(idx, &specs, &mut batched);
                let mut acc_batched = vec![Complex64::ZERO; batch * n2];
                entry.accumulate_batch(&mut acc_batched, &back, 0.37, n2);
                for b in 0..batch {
                    let mut single = vec![Complex64::ZERO; n2];
                    entry.apply(&specs[b * n2..(b + 1) * n2], &mut single);
                    assert_eq!(&batched[b * n2..(b + 1) * n2], &single[..], "entry {idx}");
                    let mut acc_single = vec![Complex64::ZERO; n2];
                    entry.accumulate(&mut acc_single, &back[b * n2..(b + 1) * n2], 0.37);
                    assert_eq!(
                        &acc_batched[b * n2..(b + 1) * n2],
                        &acc_single[..],
                        "entry {idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn corner_shifts_keep_a_nonempty_passband() {
        // Even the extreme σ = (±1, ±1) shifts leave part of the pupil on
        // the grid for valid configs (the mask grid resolves 2·NA/λ).
        let cfg = OpticalConfig::test_small();
        let table = ShiftedPupilTable::new(&cfg, &Pupil::new(&cfg));
        let nj = cfg.source_dim();
        for idx in [0, nj - 1, nj * nj - nj, nj * nj - 1] {
            assert!(!table.entry(idx).indices.is_empty(), "grid point {idx}");
        }
    }
}
