//! # bismo-optics
//!
//! Optical substrate of the BiSMO workspace (reproduction of *"Efficient
//! Bilevel Source Mask Optimization"*, DAC 2024): the physical configuration
//! of the projection system, the ideal low-pass pupil `H` (paper Eq. 5),
//! pixelated/parametric illumination sources (§2.1, §3.1), and the
//! [`RealField`] grid type every other crate trades in.
//!
//! ## Examples
//!
//! ```
//! use bismo_optics::{OpticalConfig, Pupil, Source, SourceShape};
//!
//! let cfg = OpticalConfig::scaled_default();
//! let pupil = Pupil::new(&cfg);
//! let source = Source::from_shape(
//!     &cfg,
//!     SourceShape::Annular { sigma_in: cfg.sigma_in(), sigma_out: cfg.sigma_out() },
//! );
//! // Every effective source point lies inside the pupil's NA.
//! for p in source.effective_points(0.0) {
//!     assert_eq!(pupil.value(p.freq_f, p.freq_g), 1.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod field;
mod pupil;
mod shifted;
mod source;

pub use config::{ConfigError, OpticalConfig, OpticalConfigBuilder};
pub use engine::ImagingCore;
pub use field::RealField;
pub use pupil::Pupil;
pub use shifted::{ShiftedPupilEntry, ShiftedPupilTable};
pub use source::{Source, SourcePoint, SourceShape};
