//! Illumination source models.
//!
//! The source is an `N_j × N_j` grid of point emitters in pupil-normalized
//! coordinates `σ ∈ [-1, 1]²`; a point at radius σ illuminates the mask with
//! spatial frequency `σ · NA/λ` (paper §2.1). Parametric templates (annular,
//! quasar, dipole, conventional) provide the initial shapes of §3.1/Table 1;
//! freeform optimization then treats every grid weight as a parameter.

use crate::config::OpticalConfig;

/// Parametric source template used for initialization (paper §3.1:
/// "the shape of initial source pattern J₀ is derived from parametric
/// templates like annular, quasar, or dipole").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceShape {
    /// Filled disk of radius σ_o (conventional illumination).
    Conventional {
        /// Outer radius in pupil-normalized units.
        sigma_out: f64,
    },
    /// Ring between σ_i and σ_o.
    Annular {
        /// Inner radius.
        sigma_in: f64,
        /// Outer radius.
        sigma_out: f64,
    },
    /// Four 45°-wide pole segments of an annulus, centered on the diagonals
    /// (standard quasar / C-quad illumination).
    Quasar {
        /// Inner radius.
        sigma_in: f64,
        /// Outer radius.
        sigma_out: f64,
        /// Half-opening angle of each pole in radians.
        half_angle: f64,
    },
    /// Two pole segments on the x-axis (dipole-X).
    Dipole {
        /// Inner radius.
        sigma_in: f64,
        /// Outer radius.
        sigma_out: f64,
        /// Half-opening angle of each pole in radians.
        half_angle: f64,
    },
}

impl SourceShape {
    /// Weight of the template at pupil-normalized coordinates `(sx, sy)`.
    pub fn weight_at(&self, sx: f64, sy: f64) -> f64 {
        let r = (sx * sx + sy * sy).sqrt();
        match *self {
            SourceShape::Conventional { sigma_out } => {
                if r <= sigma_out {
                    1.0
                } else {
                    0.0
                }
            }
            SourceShape::Annular {
                sigma_in,
                sigma_out,
            } => {
                if r >= sigma_in && r <= sigma_out {
                    1.0
                } else {
                    0.0
                }
            }
            SourceShape::Quasar {
                sigma_in,
                sigma_out,
                half_angle,
            } => {
                if r < sigma_in || r > sigma_out {
                    return 0.0;
                }
                let theta = sy.atan2(sx);
                // Poles centered at ±45°, ±135°.
                let centers = [
                    std::f64::consts::FRAC_PI_4,
                    3.0 * std::f64::consts::FRAC_PI_4,
                    -std::f64::consts::FRAC_PI_4,
                    -3.0 * std::f64::consts::FRAC_PI_4,
                ];
                if centers
                    .iter()
                    .any(|c| angular_distance(theta, *c) <= half_angle)
                {
                    1.0
                } else {
                    0.0
                }
            }
            SourceShape::Dipole {
                sigma_in,
                sigma_out,
                half_angle,
            } => {
                if r < sigma_in || r > sigma_out {
                    return 0.0;
                }
                let theta = sy.atan2(sx);
                if angular_distance(theta, 0.0) <= half_angle
                    || angular_distance(theta, std::f64::consts::PI) <= half_angle
                {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

fn angular_distance(a: f64, b: f64) -> f64 {
    let mut d = (a - b).rem_euclid(2.0 * std::f64::consts::PI);
    if d > std::f64::consts::PI {
        d = 2.0 * std::f64::consts::PI - d;
    }
    d
}

/// One effective source point: a pair of illumination spatial frequencies
/// and its (grayscale) magnitude `j_σ ∈ [0, 1]` (paper Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcePoint {
    /// Horizontal spatial frequency in 1/nm.
    pub freq_f: f64,
    /// Vertical spatial frequency in 1/nm.
    pub freq_g: f64,
    /// Magnitude `j_σ`.
    pub weight: f64,
    /// Flat index into the source grid this point came from.
    pub index: usize,
}

/// Pixelated freeform illumination source on an `N_j × N_j` grid.
///
/// # Examples
///
/// ```
/// use bismo_optics::{OpticalConfig, Source, SourceShape};
///
/// let cfg = OpticalConfig::test_small();
/// let src = Source::from_shape(
///     &cfg,
///     SourceShape::Annular { sigma_in: 0.63, sigma_out: 0.95 },
/// );
/// assert!(src.total_weight() > 0.0);
/// assert!(src.effective_points(0.0).iter().all(|p| p.weight > 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Source {
    dim: usize,
    freq_scale: f64,
    weights: Vec<f64>,
}

impl Source {
    /// Creates an all-dark source on `cfg`'s grid.
    pub fn dark(cfg: &OpticalConfig) -> Self {
        Source {
            dim: cfg.source_dim(),
            freq_scale: cfg.source_freq_scale(),
            weights: vec![0.0; cfg.source_dim() * cfg.source_dim()],
        }
    }

    /// Rasterizes a parametric template onto the source grid.
    pub fn from_shape(cfg: &OpticalConfig, shape: SourceShape) -> Self {
        let mut src = Source::dark(cfg);
        let n = src.dim;
        for row in 0..n {
            for col in 0..n {
                let (sx, sy) = src.sigma_coords(row, col);
                src.weights[row * n + col] = shape.weight_at(sx, sy);
            }
        }
        src
    }

    /// Builds a source from explicit weights (row-major, `N_j × N_j`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` does not match `cfg`'s source grid.
    pub fn from_weights(cfg: &OpticalConfig, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            cfg.source_dim() * cfg.source_dim(),
            "source weight buffer mismatch"
        );
        Source {
            dim: cfg.source_dim(),
            freq_scale: cfg.source_freq_scale(),
            weights,
        }
    }

    /// Source grid dimension `N_j`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Frequency scale (NA/λ) mapping σ-coordinates to illumination
    /// frequencies — inherited from the `OpticalConfig` this source was
    /// built under. Imaging engines use it to reject sources from a
    /// mismatched configuration.
    #[inline]
    pub fn freq_scale(&self) -> f64 {
        self.freq_scale
    }

    /// Immutable view of the grid weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable view of the grid weights.
    #[inline]
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// Pupil-normalized σ-coordinates of grid cell `(row, col)`, spanning
    /// `[-1, 1]` inclusive on both axes.
    #[inline]
    pub fn sigma_coords(&self, row: usize, col: usize) -> (f64, f64) {
        let half = (self.dim - 1) as f64 / 2.0;
        let sx = (col as f64 - half) / half;
        let sy = (row as f64 - half) / half;
        (sx, sy)
    }

    /// Total source power `Σ j_σ`.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Number of source points with weight above `min_weight`.
    pub fn effective_count(&self, min_weight: f64) -> usize {
        self.weights.iter().filter(|w| **w > min_weight).count()
    }

    /// Enumerates the effective source points (weight > `min_weight`) with
    /// their physical illumination frequencies — the `{(f_σ, g_σ; j_σ)}` set
    /// of paper Eq. 2.
    pub fn effective_points(&self, min_weight: f64) -> Vec<SourcePoint> {
        let mut out = Vec::new();
        for row in 0..self.dim {
            for col in 0..self.dim {
                let w = self.weights[row * self.dim + col];
                if w > min_weight {
                    let (sx, sy) = self.sigma_coords(row, col);
                    out.push(SourcePoint {
                        freq_f: sx * self.freq_scale,
                        freq_g: sy * self.freq_scale,
                        weight: w,
                        index: row * self.dim + col,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OpticalConfig {
        OpticalConfig::test_small()
    }

    #[test]
    fn annular_respects_radii() {
        let src = Source::from_shape(
            &cfg(),
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        let n = src.dim();
        for row in 0..n {
            for col in 0..n {
                let (sx, sy) = src.sigma_coords(row, col);
                let r = (sx * sx + sy * sy).sqrt();
                let w = src.weights()[row * n + col];
                if (0.63..=0.95).contains(&r) {
                    assert_eq!(w, 1.0, "({row},{col}) r={r}");
                } else {
                    assert_eq!(w, 0.0, "({row},{col}) r={r}");
                }
            }
        }
    }

    #[test]
    fn conventional_contains_center() {
        let src = Source::from_shape(&cfg(), SourceShape::Conventional { sigma_out: 0.5 });
        let n = src.dim();
        let c = n / 2; // odd dim ⇒ exact center at σ = 0
        assert_eq!(src.weights()[c * n + c], 1.0);
    }

    #[test]
    fn annular_excludes_center() {
        let src = Source::from_shape(
            &cfg(),
            SourceShape::Annular {
                sigma_in: 0.3,
                sigma_out: 0.9,
            },
        );
        let n = src.dim();
        let c = n / 2;
        assert_eq!(src.weights()[c * n + c], 0.0);
    }

    #[test]
    fn dipole_is_x_axis_symmetric_and_off_y_axis() {
        let src = Source::from_shape(
            &cfg(),
            SourceShape::Dipole {
                sigma_in: 0.5,
                sigma_out: 1.0,
                half_angle: 0.4,
            },
        );
        let n = src.dim();
        let c = n / 2;
        // Points on the x-axis extremes are lit; y-axis extremes are dark.
        assert_eq!(src.weights()[c * n], 1.0, "(-1, 0) pole");
        assert_eq!(src.weights()[c * n + (n - 1)], 1.0, "(1, 0) pole");
        assert_eq!(src.weights()[c], 0.0, "(0, -1)");
        assert_eq!(src.weights()[(n - 1) * n + c], 0.0, "(0, 1)");
    }

    #[test]
    fn quasar_lights_diagonals_only() {
        let src = Source::from_shape(
            &cfg(),
            SourceShape::Quasar {
                sigma_in: 0.5,
                sigma_out: 1.5, // generous so corners stay inside
                half_angle: 0.3,
            },
        );
        let n = src.dim();
        assert_eq!(src.weights()[0], 1.0, "corner (-1,-1)");
        assert_eq!(src.weights()[n - 1], 1.0, "corner (1,-1)");
        let c = n / 2;
        assert_eq!(src.weights()[c * n], 0.0, "x axis");
    }

    #[test]
    fn effective_points_frequencies_are_bounded_by_na_over_lambda() {
        let c = cfg();
        let src = Source::from_shape(
            &c,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        let cutoff = c.pupil_cutoff();
        for p in src.effective_points(0.0) {
            let r = (p.freq_f * p.freq_f + p.freq_g * p.freq_g).sqrt();
            assert!(r <= cutoff * (1.0 + 1e-12));
        }
    }

    #[test]
    fn effective_count_matches_total_for_binary_source() {
        let src = Source::from_shape(
            &cfg(),
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        assert_eq!(
            src.effective_count(0.0) as f64,
            src.total_weight(),
            "binary template: count == power"
        );
    }

    #[test]
    fn sigma_coords_span_unit_square() {
        let src = Source::dark(&cfg());
        let n = src.dim();
        assert_eq!(src.sigma_coords(0, 0), (-1.0, -1.0));
        assert_eq!(src.sigma_coords(n - 1, n - 1), (1.0, 1.0));
        let c = n / 2;
        assert_eq!(src.sigma_coords(c, c), (0.0, 0.0));
    }
}
