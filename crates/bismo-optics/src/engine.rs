//! The [`ImagingCore`]: immutable, `Arc`-shareable per-configuration imaging
//! state (pupil, shifted-pupil table, FFT plan).
//!
//! Building an imaging engine is dominated by evaluating the
//! [`ShiftedPupilTable`] — work that depends only on the `(Pupil, source
//! grid)` pair, never on the mask, the source weights or the optimizer
//! state. Harnesses that sweep many (method, clip) cells over one
//! [`OpticalConfig`] therefore build a single `ImagingCore` up front and
//! hand an `Arc` of it to every engine they construct; workers then share
//! the cached tables read-only instead of re-deriving them per cell (see
//! DESIGN.md §7).
//!
//! Everything inside is immutable after construction, so an
//! `Arc<ImagingCore>` is freely shared across worker threads.

use std::sync::Arc;

use bismo_fft::{Fft2Plan, FftError};

use crate::config::OpticalConfig;
use crate::pupil::Pupil;
use crate::shifted::ShiftedPupilTable;

/// Immutable imaging state for one `(OpticalConfig, Pupil)` pair: the
/// analytic pupil, its precomputed [`ShiftedPupilTable`] and the mask-grid
/// FFT plan.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bismo_optics::{ImagingCore, OpticalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let core = Arc::new(ImagingCore::new(&cfg)?);
/// // The expensive table is built once and shared by reference.
/// assert_eq!(core.shifted().source_dim(), cfg.source_dim());
/// let clone = Arc::clone(&core); // cheap: no re-evaluation
/// assert_eq!(clone.shifted().total_lit_bins(), core.shifted().total_lit_bins());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ImagingCore {
    cfg: OpticalConfig,
    pupil: Pupil,
    plan: Fft2Plan,
    shifted: Arc<ShiftedPupilTable>,
}

impl ImagingCore {
    /// Builds the core for `cfg` with the in-focus pupil, evaluating the
    /// shifted pupil of every source-grid point once.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask dimension is not FFT-compatible (the
    /// config builder validates this, so only hand-rolled configs fail).
    pub fn new(cfg: &OpticalConfig) -> Result<Self, FftError> {
        ImagingCore::with_pupil(cfg, Pupil::new(cfg))
    }

    /// Like [`ImagingCore::new`] but against an explicit (possibly
    /// defocused, hence complex) pupil.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ImagingCore::new`].
    pub fn with_pupil(cfg: &OpticalConfig, pupil: Pupil) -> Result<Self, FftError> {
        let n = cfg.mask_dim();
        let shifted = Arc::new(ShiftedPupilTable::new(cfg, &pupil));
        Ok(ImagingCore {
            cfg: cfg.clone(),
            pupil,
            plan: Fft2Plan::new(n, n)?,
            shifted,
        })
    }

    /// A new core with `z_nm` of defocus applied to the pupil. The shifted
    /// pupils are re-evaluated (the table's cache key is the `(Pupil,
    /// source grid)` pair); the FFT plan is reused.
    #[must_use]
    pub fn with_defocus(&self, z_nm: f64) -> Self {
        let pupil = self.pupil.clone().with_defocus(z_nm);
        let shifted = Arc::new(ShiftedPupilTable::new(&self.cfg, &pupil));
        ImagingCore {
            cfg: self.cfg.clone(),
            pupil,
            plan: self.plan.clone(),
            shifted,
        }
    }

    /// The optical configuration this core was built for.
    #[inline]
    pub fn config(&self) -> &OpticalConfig {
        &self.cfg
    }

    /// The (possibly aberrated) projection pupil.
    #[inline]
    pub fn pupil(&self) -> &Pupil {
        &self.pupil
    }

    /// The mask-grid FFT plan.
    #[inline]
    pub fn plan(&self) -> &Fft2Plan {
        &self.plan
    }

    /// The precomputed shifted pupils of every source-grid point.
    #[inline]
    pub fn shifted(&self) -> &Arc<ShiftedPupilTable> {
        &self.shifted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_matches_direct_construction() {
        let cfg = OpticalConfig::test_small();
        let core = ImagingCore::new(&cfg).unwrap();
        let direct = ShiftedPupilTable::new(&cfg, &Pupil::new(&cfg));
        assert_eq!(core.shifted().total_lit_bins(), direct.total_lit_bins());
        let nj = cfg.source_dim();
        for idx in [0, nj * nj / 2, nj * nj - 1] {
            assert_eq!(core.shifted().entry(idx).indices, direct.entry(idx).indices);
        }
    }

    #[test]
    fn defocus_rebuilds_table_and_keeps_grid() {
        let cfg = OpticalConfig::test_small();
        let core = ImagingCore::new(&cfg).unwrap();
        assert!(core.shifted().is_real());
        let blurred = core.with_defocus(120.0);
        assert!(!blurred.shifted().is_real());
        assert_eq!(blurred.config(), core.config());
        assert_eq!(blurred.shifted().source_dim(), core.shifted().source_dim());
        // The original is untouched (value semantics on rebuild).
        assert!(core.shifted().is_real());
    }

    #[test]
    fn arc_sharing_is_cheap_and_identical() {
        let cfg = OpticalConfig::test_small();
        let core = std::sync::Arc::new(ImagingCore::new(&cfg).unwrap());
        let other = std::sync::Arc::clone(&core);
        assert!(std::sync::Arc::ptr_eq(core.shifted(), other.shifted()));
    }
}
