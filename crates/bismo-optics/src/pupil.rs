//! The projection-system transfer function `H` (paper Eq. 5).
//!
//! `H(f, g)` is an ideal low-pass filter cutting off at `NA/λ`. The Abbe
//! engine needs `H` evaluated at *shifted* frequencies `(f + f_σ, g + g_σ)`
//! for every source point σ; because `H` is analytic we evaluate the shifted
//! pupil exactly rather than resampling a stored array, so source points are
//! never quantized to the mask frequency grid.

use crate::config::OpticalConfig;
use bismo_fft::{signed_freq, Complex64};

/// Ideal low-pass pupil for a given optical configuration.
///
/// # Examples
///
/// ```
/// use bismo_optics::{OpticalConfig, Pupil};
///
/// let cfg = OpticalConfig::test_small();
/// let pupil = Pupil::new(&cfg);
/// // DC always passes; a frequency beyond NA/λ does not.
/// assert_eq!(pupil.value(0.0, 0.0), 1.0);
/// assert_eq!(pupil.value(2.0 * cfg.pupil_cutoff(), 0.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pupil {
    cutoff: f64,
    freq_step: f64,
    dim: usize,
    wavelength_nm: f64,
    defocus_nm: f64,
}

impl Pupil {
    /// Builds the in-focus pupil for `cfg`'s projection system and mask
    /// grid.
    pub fn new(cfg: &OpticalConfig) -> Self {
        Pupil {
            cutoff: cfg.pupil_cutoff(),
            freq_step: cfg.freq_step(),
            dim: cfg.mask_dim(),
            wavelength_nm: cfg.wavelength_nm(),
            defocus_nm: 0.0,
        }
    }

    /// Adds a defocus aberration of `z` nanometres: inside the passband the
    /// pupil picks up the paraxial phase `exp(−iπλz(f²+g²))`, turning the
    /// transfer function complex. Used for focus-axis process-window
    /// evaluation (the paper's PVB covers the dose axis only).
    #[must_use]
    pub fn with_defocus(mut self, z_nm: f64) -> Self {
        self.defocus_nm = z_nm;
        self
    }

    /// Configured defocus in nanometres.
    #[inline]
    pub fn defocus_nm(&self) -> f64 {
        self.defocus_nm
    }

    /// Whether the pupil is purely real (no aberration): the imaging
    /// engines take a cheaper path in that case.
    #[inline]
    pub fn is_real(&self) -> bool {
        // FLOAT-EQ-OK: defocus_nm is exactly 0.0 for the focused configuration as constructed; selects the no-defocus fast path.
        self.defocus_nm == 0.0
    }

    /// Complex pupil value at a physical frequency: the binary passband of
    /// Eq. 5 times the paraxial defocus phase.
    #[inline]
    pub fn value_complex(&self, f: f64, g: f64) -> Complex64 {
        if f * f + g * g > self.cutoff * self.cutoff {
            return Complex64::ZERO;
        }
        // FLOAT-EQ-OK: defocus_nm is exactly 0.0 for the focused configuration as constructed; selects the no-defocus fast path.
        if self.defocus_nm == 0.0 {
            return Complex64::ONE;
        }
        let phase = -std::f64::consts::PI * self.wavelength_nm * self.defocus_nm * (f * f + g * g);
        Complex64::cis(phase)
    }

    /// Complex pupil at mask-grid bin `(row, col)` shifted by a source
    /// point's frequency.
    #[inline]
    pub fn shifted_complex(&self, row: usize, col: usize, shift_f: f64, shift_g: f64) -> Complex64 {
        let g = signed_freq(row, self.dim) as f64 * self.freq_step + shift_g;
        let f = signed_freq(col, self.dim) as f64 * self.freq_step + shift_f;
        self.value_complex(f, g)
    }

    /// Cut-off frequency `NA/λ` in 1/nm.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Mask grid dimension this pupil is sampled against.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Evaluates `H` at a physical frequency (1/nm): 1 inside the numerical
    /// aperture, 0 outside (Eq. 5).
    #[inline]
    pub fn value(&self, f: f64, g: f64) -> f64 {
        if f * f + g * g <= self.cutoff * self.cutoff {
            1.0
        } else {
            0.0
        }
    }

    /// Evaluates the pupil at mask-grid frequency bin `(row, col)` (corner
    /// origin, standard DFT layout) shifted by a source-point frequency
    /// `(shift_f, shift_g)` in 1/nm: `H(f_col + shift_f, g_row + shift_g)`.
    #[inline]
    pub fn shifted_at(&self, row: usize, col: usize, shift_f: f64, shift_g: f64) -> f64 {
        let g = signed_freq(row, self.dim) as f64 * self.freq_step + shift_g;
        let f = signed_freq(col, self.dim) as f64 * self.freq_step + shift_f;
        self.value(f, g)
    }

    /// Evaluates the unshifted pupil at bin `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.shifted_at(row, col, 0.0, 0.0)
    }

    /// Number of frequency bins inside the (unshifted) pupil; the
    /// band-limited support size the Hopkins TCC is assembled over.
    pub fn support_len(&self) -> usize {
        self.support().len()
    }

    /// Indices `(row, col)` of all bins inside the unshifted pupil, in
    /// deterministic row-major order.
    pub fn support(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for row in 0..self.dim {
            for col in 0..self.dim {
                if self.at(row, col) > 0.0 {
                    out.push((row, col));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_passes_and_high_freq_blocked() {
        let cfg = OpticalConfig::test_small();
        let p = Pupil::new(&cfg);
        assert_eq!(p.at(0, 0), 1.0);
        // Nyquist bin is far outside the pupil for valid configs.
        assert_eq!(p.at(cfg.mask_dim() / 2, cfg.mask_dim() / 2), 0.0);
    }

    #[test]
    fn pupil_is_radially_symmetric() {
        let cfg = OpticalConfig::test_small();
        let p = Pupil::new(&cfg);
        let n = cfg.mask_dim();
        for row in 0..n {
            for col in 0..n {
                let mirrored_row = if row == 0 { 0 } else { n - row };
                let mirrored_col = if col == 0 { 0 } else { n - col };
                assert_eq!(p.at(row, col), p.at(mirrored_row, mirrored_col));
            }
        }
    }

    #[test]
    fn support_count_matches_circle_area() {
        let cfg = OpticalConfig::scaled_default();
        let p = Pupil::new(&cfg);
        let r = cfg.pupil_radius_bins();
        let expected = std::f64::consts::PI * r * r;
        let got = p.support_len() as f64;
        // Pixelated circle: within 15% of the ideal area.
        assert!(
            (got - expected).abs() / expected < 0.15,
            "support {got} vs area {expected}"
        );
    }

    #[test]
    fn shift_moves_the_passband() {
        let cfg = OpticalConfig::test_small();
        let p = Pupil::new(&cfg);
        // Shifting by exactly the cutoff pushes DC to the pupil edge
        // (still passing), and 2× cutoff pushes it out.
        assert_eq!(p.shifted_at(0, 0, p.cutoff(), 0.0), 1.0);
        assert_eq!(p.shifted_at(0, 0, 2.0 * p.cutoff(), 0.0), 0.0);
    }

    #[test]
    fn in_focus_complex_value_matches_real_value() {
        let cfg = OpticalConfig::test_small();
        let p = Pupil::new(&cfg);
        assert!(p.is_real());
        for row in [0usize, 3, 17, 40] {
            for col in [0usize, 2, 9, 63] {
                let c = p.shifted_complex(row, col, 0.0, 0.0);
                assert_eq!(c.re, p.at(row, col));
                assert_eq!(c.im, 0.0);
            }
        }
    }

    #[test]
    fn defocus_preserves_magnitude_inside_passband() {
        let cfg = OpticalConfig::test_small();
        let p = Pupil::new(&cfg).with_defocus(80.0);
        assert!(!p.is_real());
        let n = cfg.mask_dim();
        for row in 0..n {
            for col in 0..n {
                let z = p.shifted_complex(row, col, 0.0, 0.0);
                let flat = p.at(row, col);
                // Pure-phase aberration: |H_z| equals the in-focus pupil.
                assert!((z.abs() - flat).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn defocus_phase_is_quadratic_in_radius() {
        let cfg = OpticalConfig::test_small();
        let z_nm = 50.0;
        let p = Pupil::new(&cfg).with_defocus(z_nm);
        let f = 0.5 * p.cutoff();
        let expected = -std::f64::consts::PI * cfg.wavelength_nm() * z_nm * (f * f);
        let got = p.value_complex(f, 0.0).arg();
        assert!((got - expected).abs() < 1e-12);
        // DC picks up no phase.
        assert_eq!(p.value_complex(0.0, 0.0), bismo_fft::Complex64::ONE);
    }

    #[test]
    fn shifted_pupil_matches_manual_evaluation() {
        let cfg = OpticalConfig::test_small();
        let p = Pupil::new(&cfg);
        let shift = 0.4 * p.cutoff();
        for row in [0usize, 1, 5, 32, 63] {
            for col in [0usize, 2, 7, 32, 63] {
                let g = bismo_fft::signed_freq(row, 64) as f64 * cfg.freq_step() + 0.0;
                let f = bismo_fft::signed_freq(col, 64) as f64 * cfg.freq_step() + shift;
                assert_eq!(p.shifted_at(row, col, shift, 0.0), p.value(f, g));
            }
        }
    }
}
