//! Evaluation metrics of paper §2.2: squared L2 error (Definition 1),
//! process-variation band (Definition 2) and edge placement error
//! (Definition 3).
//!
//! All areas are reported in nm² (the paper's unit). The resist images the
//! metrics consume are **binary prints** (hard threshold), not the smooth
//! sigmoid images the loss uses — matching how the ICCAD-2013 contest
//! metrics are defined.

use bismo_litho::{FieldBatch, LithoError};
use bismo_optics::RealField;

use crate::problem::SmoProblem;

/// Squared L2 error between a binary print and the binary target, in nm²
/// (Definition 1: `‖Z − Z_t‖²`; for 0/1 images this is the differing-pixel
/// area).
///
/// # Panics
///
/// Panics if the fields' dimensions differ.
pub fn l2_area_nm2(print: &RealField, target: &RealField, pixel_nm: f64) -> f64 {
    xor_area_nm2(print, target, pixel_nm)
}

/// XOR area between two binary images in nm² — the PVB when applied to the
/// min/max dose prints (Definition 2).
///
/// # Panics
///
/// Panics if the fields' dimensions differ.
pub fn xor_area_nm2(a: &RealField, b: &RealField, pixel_nm: f64) -> f64 {
    assert_eq!(a.dim(), b.dim(), "field dimension mismatch");
    let differing = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| (**x >= 0.5) != (**y >= 0.5))
        .count();
    differing as f64 * pixel_nm * pixel_nm
}

/// Pixels excluded at each end of an edge run before sampling, so
/// measurement sites sit on edge interiors, not corners (matching how
/// contest-style EPE checkers place their measurement sites).
const CORNER_MARGIN_PX: usize = 3;

/// Collects maximal runs of consecutive values from a sorted list.
fn runs(sorted: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut iter = sorted.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let (mut start, mut prev) = (first, first);
    for v in iter {
        if v == prev + 1 {
            prev = v;
        } else {
            out.push((start, prev));
            start = v;
            prev = v;
        }
    }
    out.push((start, prev));
    out
}

/// Counts edge-placement-error violations (Definition 3).
///
/// Measurement sites are sampled every `stride_px` pixels along the
/// *interiors* of target edge runs (a [`CORNER_MARGIN_PX`]-pixel margin is
/// excluded at run ends, matching contest-style EPE site placement). At each
/// site the printed contour is located along the edge normal within a
/// ±`search_px` window; the site is a violation when the displacement
/// exceeds `threshold_nm`, or when no printed edge exists in the window.
///
/// # Panics
///
/// Panics if the fields' dimensions differ.
pub fn epe_violations(
    print: &RealField,
    target: &RealField,
    pixel_nm: f64,
    threshold_nm: f64,
    stride_px: usize,
    search_px: usize,
) -> usize {
    assert_eq!(print.dim(), target.dim(), "field dimension mismatch");
    let n = target.dim();
    let bin = |f: &RealField, r: usize, c: usize| f[(r, c)] >= 0.5;
    let stride = stride_px.max(1);
    let mut violations = 0;

    let mut check_site = |found: Option<usize>| match found.map(|d| d as f64 * pixel_nm) {
        Some(d) if d <= threshold_nm => {}
        _ => violations += 1,
    };

    // Vertical target edges: between (r, c) and (r, c+1), runs along r.
    for c in 0..n - 1 {
        let rows: Vec<usize> = (0..n)
            .filter(|&r| bin(target, r, c) != bin(target, r, c + 1))
            .collect();
        for (lo, hi) in runs(&rows) {
            if hi - lo < 2 * CORNER_MARGIN_PX {
                continue;
            }
            let mut r = lo + CORNER_MARGIN_PX;
            while r <= hi - CORNER_MARGIN_PX {
                let mut found: Option<usize> = None;
                for d in 0..=search_px {
                    let left = c.saturating_sub(d);
                    let right = (c + d).min(n - 2);
                    if (left < n - 1 && bin(print, r, left) != bin(print, r, left + 1))
                        || bin(print, r, right) != bin(print, r, right + 1)
                    {
                        found = Some(d);
                        break;
                    }
                }
                check_site(found);
                r += stride;
            }
        }
    }
    // Horizontal target edges: between (r, c) and (r+1, c), runs along c.
    for r in 0..n - 1 {
        let cols: Vec<usize> = (0..n)
            .filter(|&c| bin(target, r, c) != bin(target, r + 1, c))
            .collect();
        for (lo, hi) in runs(&cols) {
            if hi - lo < 2 * CORNER_MARGIN_PX {
                continue;
            }
            let mut c = lo + CORNER_MARGIN_PX;
            while c <= hi - CORNER_MARGIN_PX {
                let mut found: Option<usize> = None;
                for d in 0..=search_px {
                    let up = r.saturating_sub(d);
                    let down = (r + d).min(n - 2);
                    if (up < n - 1 && bin(print, up, c) != bin(print, up + 1, c))
                        || bin(print, down, c) != bin(print, down + 1, c)
                    {
                        found = Some(d);
                        break;
                    }
                }
                check_site(found);
                c += stride;
            }
        }
    }
    violations
}

/// The full metric triple of Table 3/4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSet {
    /// Squared L2 error in nm² (Definition 1).
    pub l2_nm2: f64,
    /// Process-variation band in nm² (Definition 2).
    pub pvb_nm2: f64,
    /// EPE violation count (Definition 3).
    pub epe: usize,
}

/// EPE measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpeSpec {
    /// Violation threshold in nm (scaled from the contest's 5 nm at 1 nm
    /// pixels; see DESIGN.md §3).
    pub threshold_nm: f64,
    /// Sampling stride along contours, in pixels.
    pub stride_px: usize,
    /// Normal-direction search window, in pixels.
    pub search_px: usize,
}

impl Default for EpeSpec {
    fn default() -> Self {
        EpeSpec {
            threshold_nm: 10.0,
            stride_px: 4,
            search_px: 8,
        }
    }
}

/// Stacks the nominal and min/max-dose masks of one parameter set into
/// three consecutive entries of `masks`, starting at entry `base`.
fn stack_dose_masks(masks: &mut FieldBatch, base: usize, mask: &RealField, d_min: f64, d_max: f64) {
    masks.set_entry(base, mask);
    for (offset, dose) in [(1usize, d_min), (2usize, d_max)] {
        let entry = masks.entry_mut(base + offset);
        for (o, &v) in entry.iter_mut().zip(mask.as_slice()) {
            *o = dose * v;
        }
    }
}

/// Reduces three consecutive printed dose corners of `images` to the §2.2
/// metric triple against `target`.
fn metrics_from_prints(
    problem: &SmoProblem,
    images: &FieldBatch,
    base: usize,
    target: &RealField,
    spec: EpeSpec,
) -> MetricSet {
    let pixel = problem.optical().pixel_nm();
    let resist = problem.resist();
    let nominal = resist.print(&images.entry_field(base));
    let z_min = resist.print(&images.entry_field(base + 1));
    let z_max = resist.print(&images.entry_field(base + 2));
    MetricSet {
        l2_nm2: l2_area_nm2(&nominal, target, pixel),
        pvb_nm2: xor_area_nm2(&z_min, &z_max, pixel),
        epe: epe_violations(
            &nominal,
            target,
            pixel,
            spec.threshold_nm,
            spec.stride_px,
            spec.search_px,
        ),
    }
}

/// Measures L2, PVB and EPE for the given SMO parameters: images the mask
/// through the problem's Abbe engine at nominal and corner doses — fused
/// into **one** batched imaging call (DESIGN.md §9) — hard-thresholds the
/// prints, and applies Definitions 1–3.
///
/// # Errors
///
/// Propagates imaging failures.
pub fn measure(
    problem: &SmoProblem,
    theta_j: &[f64],
    theta_m: &RealField,
    spec: EpeSpec,
) -> Result<MetricSet, LithoError> {
    let source = problem.source(theta_j);
    let mask = problem.mask(theta_m);
    let n = problem.optical().mask_dim();
    let dose = problem.settings().dose;

    let mut masks = FieldBatch::zeros(n, 3);
    stack_dose_masks(&mut masks, 0, &mask, dose.min(), dose.max());
    let images = problem.abbe().intensity_batch(&source, &masks)?;
    Ok(metrics_from_prints(
        problem,
        &images,
        0,
        problem.target(),
        spec,
    ))
}

/// Batched [`measure`] over a whole cell of runs **sharing one
/// illumination**: stacks all three dose-corner masks of every parameter
/// set into a single `3·k`-entry batch and images them through one backend
/// call, amortizing the per-call source traversal across the cell (the
/// suite runner uses this for methods that never touch the source, where
/// every clip of a (suite, method) cell ends at the same template
/// illumination).
///
/// `cells` pairs each parameter set with the problem (and hence target) it
/// was optimized against; every problem must share the first one's grids.
/// Results are bit-identical to calling [`measure`] per cell.
///
/// Falls back to per-cell [`measure`] when the activated sources differ
/// (batched imaging is only fused under a single source), so callers can
/// use it unconditionally.
///
/// # Errors
///
/// Propagates imaging failures.
pub fn measure_batch(
    cells: &[(&SmoProblem, &[f64], &RealField)],
    spec: EpeSpec,
) -> Result<Vec<MetricSet>, LithoError> {
    let Some(&(first, first_tj, _)) = cells.first() else {
        return Ok(Vec::new());
    };
    let shared_source = first.source(first_tj);
    let fused = cells.iter().all(|(problem, theta_j, _)| {
        // The fused path images every cell through the FIRST problem's
        // engine, so the engines must be interchangeable: the same shared
        // `ImagingCore` (pupil — including defocus — shifted-pupil table,
        // FFT plan; pointer identity is the conservative test and is what
        // engine cloning produces), and the same scheduling knobs (thread
        // count and forward-pass skip threshold both change floating-point
        // summation order).
        std::sync::Arc::ptr_eq(problem.abbe().core(), first.abbe().core())
            && problem.settings().dose == first.settings().dose
            && problem.abbe().threads() == first.abbe().threads()
            && problem.abbe().min_weight() == first.abbe().min_weight()
            && problem.source(theta_j).weights() == shared_source.weights()
    });
    if !fused {
        return cells
            .iter()
            .map(|(problem, theta_j, theta_m)| measure(problem, theta_j, theta_m, spec))
            .collect();
    }

    let n = first.optical().mask_dim();
    let dose = first.settings().dose;
    let mut masks = FieldBatch::zeros(n, 3 * cells.len());
    for (i, (problem, _, theta_m)) in cells.iter().enumerate() {
        stack_dose_masks(
            &mut masks,
            3 * i,
            &problem.mask(theta_m),
            dose.min(),
            dose.max(),
        );
    }
    let images = first.abbe().intensity_batch(&shared_source, &masks)?;
    Ok(cells
        .iter()
        .enumerate()
        .map(|(i, (problem, _, _))| {
            metrics_from_prints(problem, &images, 3 * i, problem.target(), spec)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(n: usize, r0: usize, r1: usize, c0: usize, c1: usize) -> RealField {
        RealField::from_fn(n, |r, c| {
            if (r0..r1).contains(&r) && (c0..c1).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn identical_images_have_zero_l2() {
        let a = rect(32, 8, 24, 8, 24);
        assert_eq!(l2_area_nm2(&a, &a, 8.0), 0.0);
    }

    #[test]
    fn l2_counts_differing_area() {
        let a = rect(32, 8, 24, 8, 24);
        let b = rect(32, 8, 24, 8, 25); // one extra column of 16 pixels
        assert_eq!(l2_area_nm2(&a, &b, 2.0), 16.0 * 4.0);
    }

    #[test]
    fn xor_is_symmetric() {
        let a = rect(32, 8, 24, 8, 24);
        let b = rect(32, 10, 20, 6, 28);
        assert_eq!(xor_area_nm2(&a, &b, 1.0), xor_area_nm2(&b, &a, 1.0));
    }

    #[test]
    fn perfect_print_has_zero_epe() {
        let t = rect(64, 16, 48, 16, 48);
        let v = epe_violations(&t, &t, 8.0, 10.0, 1, 8);
        assert_eq!(v, 0);
    }

    #[test]
    fn shifted_print_beyond_threshold_violates() {
        let t = rect(64, 16, 48, 16, 48);
        // Print shifted 3 px right: 3 px × 8 nm = 24 nm > 10 nm threshold on
        // the vertical edges.
        let p = rect(64, 16, 48, 19, 51);
        let v = epe_violations(&p, &t, 8.0, 10.0, 1, 8);
        assert!(v > 0);
    }

    #[test]
    fn small_shift_within_threshold_is_clean() {
        let t = rect(64, 16, 48, 16, 48);
        let p = rect(64, 16, 48, 17, 49); // 1 px = 8 nm ≤ 10 nm
        let v = epe_violations(&p, &t, 8.0, 10.0, 1, 8);
        assert_eq!(v, 0);
    }

    #[test]
    fn vanished_print_violates_everywhere_sampled() {
        let t = rect(64, 16, 48, 16, 48);
        let p = RealField::zeros(64);
        let v = epe_violations(&p, &t, 8.0, 10.0, 4, 8);
        assert!(v > 10, "expected many violations, got {v}");
    }

    #[test]
    fn default_epe_spec_is_sane() {
        let s = EpeSpec::default();
        assert!(s.threshold_nm > 0.0 && s.stride_px >= 1 && s.search_px >= 1);
    }
}
