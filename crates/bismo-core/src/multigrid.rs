//! Coarse-to-fine multigrid optimization (DESIGN.md §11): the
//! [`MultigridSolver`] wraps any registered base [`Solver`] in a level
//! schedule — optimize θ_M on a coarse grid first, spectrally prolong the
//! *logit-space* parameters to seed the next finer grid, and polish on the
//! session's full-resolution problem.
//!
//! Each level halves the mask dimension while doubling the pixel pitch, so
//! the physical tile — and with it the frequency step and the pupil
//! geometry — is invariant across levels (`OpticalConfig` validation bounds
//! the coarsest feasible grid: the doubly-shifted pupil must stay inside
//! Nyquist). Targets are downsampled by block means
//! ([`RealField::block_mean`]); θ_M moves between grids through the
//! spectral [`GridTransfer`] operators of `bismo-fft`. Prolongation happens
//! in logit space — *before* the `sigmoid(α_m θ)` activation — so a pixel
//! driven to saturation on the coarse grid stays saturated after the
//! transfer instead of being washed out by interpolating through the
//! sigmoid's flat tails.
//!
//! The wrapper is registered for every base method under the `<name>@mg`
//! suffix (e.g. `BiSMO-CG@mg`); the flat paths are untouched, so the golden
//! suite stays bit-identical.

use bismo_fft::GridTransfer;
use bismo_litho::LithoError;
use bismo_optics::{OpticalConfig, RealField};

use crate::problem::{LossValue, SmoProblem};
use crate::registry::SolverRegistry;
use crate::solver::{Solver, SolverConfig, SolverState, StepOutcome, StopReason};

/// One entry of the level schedule, coarsest first. The finest level has no
/// config of its own — it runs on the session's problem.
struct Level {
    dim: usize,
    optical: Option<OpticalConfig>,
}

/// A level schedule around a registered base solver: runs the base method
/// level by level (coarse → fine), carrying θ_J through unchanged (the
/// source grid is level-independent) and prolonging θ_M spectrally in logit
/// space. One [`MultigridSolver::step`] call is one inner-solver step; the
/// per-level records are re-stamped into the session's state so the run
/// reports a single stitched [`crate::ConvergenceTrace`] under the
/// session's clock.
///
/// Constructed through [`SolverRegistry`] under a `<base>@mg` name; the
/// level schedule and per-level problems are built lazily at the first step
/// (registry ctors stay cheap and infallible).
pub struct MultigridSolver {
    name: &'static str,
    base: &'static str,
    config: SolverConfig,
    /// Level schedule, coarsest first; `None` until the first step.
    levels: Option<Vec<Level>>,
    current: usize,
    /// Problem for the current level; `None` on the finest level (the
    /// session's problem is used directly).
    level_problem: Option<SmoProblem>,
    inner: Option<Box<dyn Solver>>,
    inner_state: Option<SolverState>,
    level_steps: usize,
    finished: Option<StopReason>,
}

impl MultigridSolver {
    /// Wraps the registered base method `base` under the registry name
    /// `name` (the `<base>@mg` form). Cheap and infallible; all heavy work
    /// happens lazily at the first step.
    pub(crate) fn new(name: &'static str, base: &'static str, config: &SolverConfig) -> Self {
        MultigridSolver {
            name,
            base,
            config: config.clone(),
            levels: None,
            current: 0,
            level_problem: None,
            inner: None,
            inner_state: None,
            level_steps: 0,
            finished: None,
        }
    }

    fn make_inner(&self, problem: &SmoProblem) -> Box<dyn Solver> {
        SolverRegistry::builtin()
            .create(self.base, problem, &self.config)
            // PANIC-OK: the name was produced by enumerating the registry roster itself; lookup cannot miss.
            .expect("base method comes from the static roster")
    }

    /// Builds the level schedule for `fine`: halve the mask grid (doubling
    /// the pitch so the physical tile is invariant) until either the
    /// configured level count is reached or `OpticalConfig` validation
    /// rejects the grid (shifted pupil past Nyquist). Requesting more
    /// levels than are feasible silently clamps — the schedule is a
    /// performance knob, not a correctness contract.
    fn plan_levels(fine: &OpticalConfig, want: usize) -> Vec<Level> {
        let mut levels = vec![Level {
            dim: fine.mask_dim(),
            optical: None,
        }];
        for k in 1..want.max(1) {
            let dim = fine.mask_dim() >> k;
            if dim == 0 {
                break;
            }
            let built = OpticalConfig::builder()
                .wavelength_nm(fine.wavelength_nm())
                .na(fine.na())
                .mask_dim(dim)
                .pixel_nm(fine.pixel_nm() * (1usize << k) as f64)
                .source_dim(fine.source_dim())
                .sigma_in(fine.sigma_in())
                .sigma_out(fine.sigma_out())
                .build();
            match built {
                Ok(cfg) => levels.push(Level {
                    dim,
                    optical: Some(cfg),
                }),
                Err(_) => break,
            }
        }
        levels.reverse();
        levels
    }

    /// Enters level `self.current` with the given parameters (θ_M already
    /// at the level's dimension): builds the level problem (coarse levels
    /// only) and a fresh inner solver + state.
    fn enter_level(
        &mut self,
        session_problem: &SmoProblem,
        theta_j: Vec<f64>,
        theta_m: RealField,
    ) -> Result<(), LithoError> {
        // PANIC-OK: state-machine invariant — `plan` runs at the first step, before any path that reads the schedule (§11).
        let levels = self.levels.as_ref().expect("schedule planned");
        let level = &levels[self.current];
        self.level_problem = match &level.optical {
            Some(optical) => {
                let factor = session_problem.optical().mask_dim() / level.dim;
                let target = session_problem.target().block_mean(factor);
                Some(SmoProblem::new(
                    optical.clone(),
                    session_problem.settings().clone(),
                    target,
                )?)
            }
            None => None,
        };
        let problem = self.level_problem.as_ref().unwrap_or(session_problem);
        self.inner = Some(self.make_inner(problem));
        self.inner_state = Some(SolverState::new(theta_j, theta_m));
        self.level_steps = 0;
        Ok(())
    }

    /// Step budget for the current level: coarse levels get
    /// `mg.coarse_steps`; the finest level gets `mg.fine_steps`, where 0
    /// means "no extra cap" (the base method's own budgets apply).
    fn level_budget(&self) -> usize {
        // PANIC-OK: state-machine invariant — `plan` runs at the first step, before any path that reads the schedule (§11).
        let levels = self.levels.as_ref().expect("schedule planned");
        if self.current + 1 == levels.len() {
            match self.config.mg.fine_steps {
                0 => usize::MAX,
                n => n,
            }
        } else {
            self.config.mg.coarse_steps.max(1)
        }
    }
}

impl Solver for MultigridSolver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, problem: &SmoProblem) -> bool {
        // Capability is the base method's; a probe construction is cheap.
        self.make_inner(problem).supports(problem)
    }

    fn step(
        &mut self,
        problem: &SmoProblem,
        state: &mut SolverState,
    ) -> Result<StepOutcome, LithoError> {
        if let Some(reason) = self.finished {
            return Ok(StepOutcome::Done(reason));
        }
        if self.levels.is_none() {
            let levels = Self::plan_levels(problem.optical(), self.config.mg.levels);
            let coarsest = levels[0].dim;
            self.levels = Some(levels);
            // Seed the coarsest level from the session's (possibly custom)
            // initialization: θ_J passes through, θ_M restricts spectrally
            // in logit space.
            let transfer = GridTransfer::new(problem.optical().mask_dim(), coarsest)
                // PANIC-OK: level dims were validated as powers of two at plan time; transfer construction between them cannot fail.
                .expect("level dims are validated powers of two");
            let theta_m =
                RealField::from_vec(coarsest, transfer.restrict2(state.theta_m.as_slice())?);
            self.enter_level(problem, state.theta_j.clone(), theta_m)?;
        }

        let level_problem_ref = self.level_problem.as_ref().unwrap_or(problem);
        // PANIC-OK: state-machine invariant — `enter_level` precedes every step/leave on this path (§11).
        let inner = self.inner.as_mut().expect("entered a level");
        // PANIC-OK: state-machine invariant — `enter_level` precedes every step/leave on this path (§11).
        let inner_state = self.inner_state.as_mut().expect("entered a level");
        let before = inner_state.trace.len();
        let outcome = inner.step(level_problem_ref, inner_state)?;
        self.level_steps += 1;

        // Stitch the level's new records into the session trace, re-stamped
        // with the session's step index and pausable clock.
        for i in before..inner_state.trace.len() {
            let rec = inner_state.trace.records()[i];
            state.record(LossValue {
                total: rec.loss,
                l2: rec.l2,
                pvb: rec.pvb,
            });
        }

        // PANIC-OK: state-machine invariant — `plan` runs at the first step, before any path that reads the schedule (§11).
        let levels_len = self.levels.as_ref().expect("schedule planned").len();
        let at_finest = self.current + 1 == levels_len;
        if at_finest {
            // Keep the observable session state current: θ dims match the
            // session's at the finest level, so this is a pure copy.
            state
                .theta_m
                .as_mut_slice()
                .copy_from_slice(inner_state.theta_m.as_slice());
            state.theta_j.copy_from_slice(&inner_state.theta_j);
        }

        let level_done =
            !matches!(outcome, StepOutcome::Running) || self.level_steps >= self.level_budget();
        if !level_done {
            return Ok(StepOutcome::Running);
        }
        if at_finest {
            let reason = match outcome {
                StepOutcome::Done(reason) => reason,
                StepOutcome::Running => StopReason::Exhausted,
            };
            self.finished = Some(reason);
            return Ok(StepOutcome::Done(reason));
        }

        // Promote to the next finer level: prolong θ_M in logit space.
        // PANIC-OK: state-machine invariant — `plan` runs at the first step, before any path that reads the schedule (§11).
        let next_dim = self.levels.as_ref().expect("schedule planned")[self.current + 1].dim;
        // PANIC-OK: state-machine invariant — `enter_level` precedes every step/leave on this path (§11).
        let inner_state = self.inner_state.take().expect("entered a level");
        let transfer = GridTransfer::new(next_dim, inner_state.theta_m.dim())
            // PANIC-OK: level dims were validated as powers of two at plan time; transfer construction between them cannot fail.
            .expect("level dims are validated powers of two");
        let theta_m =
            RealField::from_vec(next_dim, transfer.prolong2(inner_state.theta_m.as_slice())?);
        self.current += 1;
        self.enter_level(problem, inner_state.theta_j, theta_m)?;
        Ok(StepOutcome::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SmoSettings;
    use crate::solver::MgSection;
    use bismo_optics::OpticalConfig;

    fn problem() -> SmoProblem {
        // test_small: 64² at 8 nm, 512 nm tile; coarser levels keep the
        // tile (and so the pupil geometry) invariant.
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap()
    }

    fn mg_config(levels: usize, coarse: usize, fine: usize) -> SolverConfig {
        let mut cfg = SolverConfig::default();
        cfg.mo.steps = 200;
        cfg.mg = MgSection {
            levels,
            coarse_steps: coarse,
            fine_steps: fine,
        };
        cfg
    }

    #[test]
    fn schedule_clamps_to_feasible_levels() {
        let fine = OpticalConfig::test_small();
        // Ask for far more levels than the pupil constraint admits: 8² at
        // 64 nm would push the doubly-shifted pupil past Nyquist, so the
        // schedule bottoms out at 16².
        let levels = MultigridSolver::plan_levels(&fine, 6);
        let dims: Vec<usize> = levels.iter().map(|l| l.dim).collect();
        assert_eq!(dims, vec![16, 32, 64], "coarsest first, finest last");
        assert!(levels.last().unwrap().optical.is_none());
        // A single level degenerates to the flat method.
        assert_eq!(MultigridSolver::plan_levels(&fine, 1).len(), 1);
    }

    #[test]
    fn stitched_trace_spans_all_levels_and_loss_improves() {
        let p = problem();
        let cfg = mg_config(2, 6, 4);
        let mut session = SolverRegistry::builtin()
            .session("Abbe-MO@mg", &p, &cfg)
            .unwrap();
        session.run().unwrap();
        let trace = session.trace();
        // 6 coarse + 4 fine records, step indices stitched 0..10.
        assert_eq!(trace.len(), 10);
        let steps: Vec<usize> = trace.records().iter().map(|r| r.step).collect();
        assert_eq!(steps, (0..10).collect::<Vec<_>>());
        assert!(
            trace.final_loss().unwrap() < trace.records()[0].loss,
            "multigrid run should reduce the (stitched) loss"
        );
        // Final θ_M is at the session's full resolution.
        assert_eq!(session.theta_m().dim(), p.optical().mask_dim());
    }

    #[test]
    fn single_level_schedule_matches_flat_method_bitwise() {
        // With levels = 1 and no fine cap, @mg is the base method: same
        // problem, same init, same per-step arithmetic — bit-identical.
        let p = problem();
        let mut cfg = mg_config(1, 10, 0);
        cfg.mo.steps = 5;
        let flat = SolverRegistry::builtin().run("Abbe-MO", &p, &cfg).unwrap();
        let mg = SolverRegistry::builtin()
            .run("Abbe-MO@mg", &p, &cfg)
            .unwrap();
        assert_eq!(flat.trace.len(), mg.trace.len());
        for (a, b) in flat.trace.records().iter().zip(mg.trace.records()) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        }
        let flat_bits: Vec<u64> = flat
            .theta_m
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let mg_bits: Vec<u64> = mg.theta_m.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(flat_bits, mg_bits);
    }

    #[test]
    fn done_is_terminal_and_leaves_state_untouched() {
        let p = problem();
        let cfg = mg_config(2, 2, 2);
        let reg = SolverRegistry::builtin();
        let mut solver = reg.create("Abbe-MO@mg", &p, &cfg).unwrap();
        let mut state = SolverState::new(
            p.init_theta_j(bismo_optics::SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            }),
            p.init_theta_m(),
        );
        let mut last = StepOutcome::Running;
        for _ in 0..16 {
            last = solver.step(&p, &mut state).unwrap();
            if !matches!(last, StepOutcome::Running) {
                break;
            }
        }
        assert!(matches!(last, StepOutcome::Done(_)));
        let len = state.trace.len();
        let bits: Vec<u64> = state
            .theta_m
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for _ in 0..2 {
            assert_eq!(solver.step(&p, &mut state).unwrap(), last);
        }
        assert_eq!(state.trace.len(), len, "no records after Done");
        let after: Vec<u64> = state
            .theta_m
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits, after, "state must not move after Done");
    }

    #[test]
    fn prolonged_saturation_survives_in_logit_space() {
        // A coarse θ_M saturated at ±m₀·3 prolongs to fine values near the
        // same rails (spectral interpolation of a smooth plateau), so the
        // activated mask stays saturated — the rationale for transferring
        // logits, not masks.
        let coarse = RealField::filled(32, 3.0);
        let t = GridTransfer::new(64, 32).unwrap();
        let fine = t.prolong2(coarse.as_slice()).unwrap();
        for &v in &fine {
            assert!((v - 3.0).abs() < 1e-10);
        }
    }
}
