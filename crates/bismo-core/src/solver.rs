//! The step-based solver abstraction every optimization method implements
//! (DESIGN.md §8).
//!
//! A [`Solver`] advances one *observable unit of work* per [`Solver::step`]
//! call — exactly the work between two [`crate::StepRecord`]s of the
//! historical monolithic drivers (one mask update for the MO methods, one
//! inner source *or* mask update for AM-SMO, one outer iteration for
//! BiSMO). The driving [`crate::Session`] owns the parameter blocks and the
//! [`ConvergenceTrace`] in a [`SolverState`], so runs can be paused,
//! observed, budgeted and resumed between any two steps with results
//! bit-identical to an uninterrupted run (enforced by
//! `tests/solver_golden.rs`).
//!
//! Configuration is a single layered [`SolverConfig`]: shared knobs (step
//! size, optimizer families, stop rule) plus one section per method family,
//! replacing the historical `MoConfig`/`AmSmoConfig`/`BismoConfig` trio.
//! Selected fields are overridable from the environment with the same
//! fail-fast contract as `BISMO_SCALE`/`BISMO_JOBS`: a typo panics with the
//! valid values listed instead of silently running a different experiment.

use std::time::Instant;

use bismo_litho::LithoError;
use bismo_opt::OptimizerKind;
use bismo_optics::RealField;

use crate::problem::{LossValue, SmoProblem};
use crate::trace::{ConvergenceTrace, StepRecord, StopRule};

/// Why a solver declared itself done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The solver's stop rule fired (plateau detected).
    Converged,
    /// The configured step budget was spent.
    Exhausted,
}

/// Result of one [`Solver::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Work remains; call `step` again to continue.
    Running,
    /// The run is complete; further `step` calls must keep returning
    /// `Done` without touching the state.
    Done(StopReason),
}

/// The mutable run state a [`crate::Session`] owns and threads through its
/// solver: both parameter blocks, the convergence trace, and the run clock.
///
/// The clock is *pausable*: a session that stops (observer request or
/// wall-clock budget) pauses it, so idle time between a pause and the
/// matching resume never inflates `elapsed_s` — the turnaround times of
/// Tables 3/4 measure optimization, not how long a checkpoint sat on disk.
#[derive(Debug)]
pub struct SolverState {
    /// Source parameters θ_J (empty for mask-only problems driven outside a
    /// session, e.g. the legacy Hopkins loop).
    pub theta_j: Vec<f64>,
    /// Mask parameters θ_M.
    pub theta_m: RealField,
    /// Every loss recorded so far, one record per completed step.
    pub trace: ConvergenceTrace,
    /// Start of the current running stretch (`None` while paused).
    running_since: Option<Instant>,
    /// Run time accumulated over previous running stretches.
    accumulated: std::time::Duration,
}

impl SolverState {
    /// Fresh state starting the run clock now.
    pub fn new(theta_j: Vec<f64>, theta_m: RealField) -> SolverState {
        SolverState {
            theta_j,
            theta_m,
            trace: ConvergenceTrace::new(),
            running_since: Some(Instant::now()),
            accumulated: std::time::Duration::ZERO,
        }
    }

    /// Run-clock seconds: time spent running, excluding paused stretches.
    pub fn elapsed_s(&self) -> f64 {
        let running = self
            .running_since
            .map_or(std::time::Duration::ZERO, |s| s.elapsed());
        (self.accumulated + running).as_secs_f64()
    }

    /// Pauses the run clock (idempotent).
    pub fn pause_clock(&mut self) {
        if let Some(since) = self.running_since.take() {
            self.accumulated += since.elapsed();
        }
    }

    /// Resumes a paused run clock (idempotent).
    pub fn resume_clock(&mut self) {
        if self.running_since.is_none() {
            self.running_since = Some(Instant::now());
        }
    }

    /// Appends a trace record for `loss` at the current step index (the
    /// historical drivers' convention: the step field counts records).
    pub fn record(&mut self, loss: LossValue) {
        let step = self.trace.len();
        let elapsed_s = self.elapsed_s();
        self.trace.push(StepRecord {
            step,
            loss: loss.total,
            l2: loss.l2,
            pvb: loss.pvb,
            elapsed_s,
        });
    }
}

/// A step-based optimization driver over the unified Abbe SMO problem.
///
/// Implementations own all method-internal mutable state (optimizer
/// moments, warm starts, phase machines, lazily-built Hopkins problems);
/// everything observable lives in the [`SolverState`] the session passes
/// in. One `step` call performs the work between two trace records of the
/// corresponding historical driver and pushes exactly the records that
/// driver would have pushed (0 when only bookkeeping remained).
pub trait Solver: Send {
    /// Stable method name — the paper's column label, and the key under
    /// which [`crate::SolverRegistry`] constructs this solver.
    fn name(&self) -> &'static str;

    /// Whether this solver can run on `problem` (capability query; e.g.
    /// source-optimizing methods need a backend with source gradients).
    /// [`crate::Session`] checks this at construction.
    fn supports(&self, problem: &SmoProblem) -> bool {
        let _ = problem;
        true
    }

    /// Advances the run by one unit of work.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures; the session marks itself failed and the
    /// state must be considered poisoned.
    fn step(
        &mut self,
        problem: &SmoProblem,
        state: &mut SolverState,
    ) -> Result<StepOutcome, LithoError>;
}

/// Mask-only section of [`SolverConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoSection {
    /// Maximum number of mask updates.
    pub steps: usize,
}

/// Alternating-minimization section of [`SolverConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmSection {
    /// Number of alternating rounds `k`.
    pub rounds: usize,
    /// SO updates per round (cap when `phase_stop` is set).
    pub so_steps: usize,
    /// MO updates per round (cap when `phase_stop` is set).
    pub mo_steps: usize,
    /// Optional per-phase convergence rule (Algorithm 1's "while not
    /// converged" inner loops).
    pub phase_stop: Option<StopRule>,
    /// SOCS truncation rank for the hybrid's Hopkins MO phase.
    pub hybrid_q: usize,
}

/// BiSMO section of [`SolverConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BismoSection {
    /// Outer (mask) updates.
    pub outer_steps: usize,
    /// Inner SO unroll length `T` (Algorithm 2 line 2).
    pub unroll_t: usize,
    /// Inner step size `ξ_J`.
    pub xi_j: f64,
    /// Outer step size `ξ_M`.
    pub xi_m: f64,
    /// Base step for the finite-difference curvature products.
    pub hvp_eps: f64,
    /// Krylov/Neumann depth `K` for the CG and Neumann hypergradients
    /// (paper: 5). Env-overridable via `BISMO_HYPERGRAD_K`.
    pub k: usize,
}

impl BismoSection {
    /// The paper's §4 default depth `K`.
    pub const DEFAULT_K: usize = 5;
}

/// Multigrid section of [`SolverConfig`], consumed by the
/// [`crate::MultigridSolver`] wrapper behind the registry's `<method>@mg`
/// names (DESIGN.md §11). Flat methods ignore it entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgSection {
    /// Number of grid levels including the finest (1 degenerates to the
    /// flat method). Requests beyond what the pupil constraint admits are
    /// clamped, not errors — the schedule is a performance knob.
    pub levels: usize,
    /// Step cap per coarse level (the inner solver may stop earlier on its
    /// own plateau rule).
    pub coarse_steps: usize,
    /// Extra step cap on the finest level; 0 means "no extra cap" — the
    /// base method's own budgets apply.
    pub fine_steps: usize,
}

/// One layered configuration for every solver in the registry: shared knobs
/// first, per-method-family sections after. Replaces the historical
/// `MoConfig` / `AmSmoConfig` / `BismoConfig` trio (still accepted by the
/// deprecated `run_*` shims).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Shared step size ξ for the MO and AM families (BiSMO carries its own
    /// ξ_J/ξ_M in [`BismoSection`]). Paper: 0.1.
    pub lr: f64,
    /// Optimizer family for mask updates. Env-overridable (together with
    /// `kind_j`) via `BISMO_OPTIMIZER`.
    pub kind_m: OptimizerKind,
    /// Optimizer family for source updates.
    pub kind_j: OptimizerKind,
    /// Optional plateau-based early stopping shared by every method (AM
    /// checks it at round boundaries, everything else per step).
    pub stop: Option<StopRule>,
    /// Mask-only budgets.
    pub mo: MoSection,
    /// Alternating-minimization budgets.
    pub am: AmSection,
    /// BiSMO hyperparameters.
    pub bismo: BismoSection,
    /// Multigrid level schedule for the `<method>@mg` wrappers.
    pub mg: MgSection,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            lr: 0.1,
            kind_m: OptimizerKind::Adam,
            kind_j: OptimizerKind::Adam,
            stop: None,
            mo: MoSection { steps: 100 },
            am: AmSection {
                rounds: 5,
                so_steps: 10,
                mo_steps: 10,
                phase_stop: None,
                hybrid_q: 24,
            },
            bismo: BismoSection {
                outer_steps: 100,
                unroll_t: 3,
                xi_j: 0.1,
                xi_m: 0.1,
                hvp_eps: 1e-2,
                k: BismoSection::DEFAULT_K,
            },
            mg: MgSection {
                levels: 3,
                coarse_steps: 50,
                fine_steps: 0,
            },
        }
    }
}

impl SolverConfig {
    /// Applies environment overrides read through `get` (injectable for
    /// tests). Recognized variables:
    ///
    /// * `BISMO_HYPERGRAD_K` — Krylov/Neumann depth for BiSMO-CG/NMN;
    /// * `BISMO_OPTIMIZER` — optimizer family name (`sgd` / `momentum` /
    ///   `adam`) for **both** parameter blocks.
    ///
    /// Unset or empty variables leave the corresponding field untouched.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending variable and value — the same
    /// fail-fast contract as `BISMO_SCALE`: a typo must not silently run a
    /// different experiment.
    pub fn apply_env(mut self, get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        if let Some(raw) = get("BISMO_HYPERGRAD_K") {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                self.bismo.k = trimmed.parse::<usize>().map_err(|_| {
                    format!(
                        "unrecognized BISMO_HYPERGRAD_K value {raw:?}; expected a \
                         non-negative integer Krylov/Neumann depth (or unset for \
                         the paper default {})",
                        BismoSection::DEFAULT_K
                    )
                })?;
            }
        }
        if let Some(raw) = get("BISMO_OPTIMIZER") {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                let kind = OptimizerKind::from_name(trimmed)
                    .map_err(|e| format!("unrecognized BISMO_OPTIMIZER value: {e}"))?;
                self.kind_m = kind;
                self.kind_j = kind;
            }
        }
        Ok(self)
    }

    /// Defaults with process-environment overrides applied.
    ///
    /// # Panics
    ///
    /// Fails fast on an unrecognized override value (see
    /// [`SolverConfig::apply_env`]).
    pub fn from_env() -> SolverConfig {
        // ENV-OK: keys are the BISMO_HYPERGRAD_K / BISMO_OPTIMIZER literals apply_env passes in; values are strict-parsed, typos abort.
        match SolverConfig::default().apply_env(|key| std::env::var(key).ok()) {
            Ok(cfg) => cfg,
            // PANIC-OK: fail-fast env-knob contract (§7) — a malformed knob aborts listing the valid values instead of silently defaulting.
            Err(msg) => panic!("{msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn defaults_mirror_the_legacy_config_structs() {
        let cfg = SolverConfig::default();
        assert_eq!(cfg.lr, 0.1);
        assert_eq!(cfg.mo.steps, 100);
        assert_eq!(
            (cfg.am.rounds, cfg.am.so_steps, cfg.am.mo_steps),
            (5, 10, 10)
        );
        assert_eq!(cfg.bismo.outer_steps, 100);
        assert_eq!(cfg.bismo.unroll_t, 3);
        assert_eq!(cfg.bismo.k, 5);
        assert_eq!(cfg.stop, None);
    }

    #[test]
    fn env_overrides_parse_and_fail_fast() {
        let cfg = SolverConfig::default()
            .apply_env(env(&[
                ("BISMO_HYPERGRAD_K", " 9 "),
                ("BISMO_OPTIMIZER", "SGD"),
            ]))
            .unwrap();
        assert_eq!(cfg.bismo.k, 9);
        assert_eq!(cfg.kind_m, OptimizerKind::Sgd);
        assert_eq!(cfg.kind_j, OptimizerKind::Sgd);

        // Empty and unset leave defaults.
        let cfg = SolverConfig::default()
            .apply_env(env(&[("BISMO_HYPERGRAD_K", "")]))
            .unwrap();
        assert_eq!(cfg.bismo.k, BismoSection::DEFAULT_K);

        // Typos are errors, not silent defaults.
        let err = SolverConfig::default()
            .apply_env(env(&[("BISMO_HYPERGRAD_K", "five")]))
            .unwrap_err();
        assert!(
            err.contains("five") && err.contains("BISMO_HYPERGRAD_K"),
            "{err}"
        );
        let err = SolverConfig::default()
            .apply_env(env(&[("BISMO_OPTIMIZER", "adamw")]))
            .unwrap_err();
        assert!(err.contains("adamw"), "{err}");
    }

    #[test]
    fn state_records_sequential_step_indices() {
        let mut state = SolverState::new(vec![0.0], RealField::zeros(4));
        for i in 0..3 {
            state.record(LossValue {
                total: 1.0 / (i + 1) as f64,
                l2: 0.0,
                pvb: 0.0,
            });
        }
        let steps: Vec<usize> = state.trace.records().iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![0, 1, 2]);
        assert!(state.elapsed_s() >= 0.0);
    }
}
