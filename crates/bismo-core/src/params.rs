//! Parameterization of source and mask (paper Table 1).
//!
//! Both the binary mask and the grayscale source are produced from
//! unconstrained real parameters through scaled sigmoids:
//!
//! * `M = sigmoid(α_m · θ_M)`, initialized at `θ_M = ±m_0` from the target
//!   pattern (which also seeds SRAF generation during MO);
//! * `J = sigmoid(α_j · θ_J)`, initialized at `θ_J = ±j_0` from a parametric
//!   template.

use bismo_litho::sigmoid;
use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};

/// How source parameters map to grayscale weights.
///
/// The paper (§3.1) considers the cosine map as an alternative to the
/// sigmoid but rejects it: "its use may lead to training instability due to
/// gradient issues". Both are provided so the instability can be reproduced
/// (see the `ablation` harness binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceActivationKind {
    /// `J = sigmoid(α_j · θ_J)` — the paper's choice.
    #[default]
    Sigmoid,
    /// `J = (1 − cos(α_j · θ_J)) / 2` — periodic, with vanishing gradients
    /// at both rails.
    Cosine,
}

/// Sigmoid steepnesses and initialization magnitudes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activation {
    /// Mask sigmoid steepness α_m (paper: 9).
    pub alpha_m: f64,
    /// Mask parameter init magnitude m₀ (paper: 1).
    pub m0: f64,
    /// Source sigmoid steepness α_j (paper: 2).
    pub alpha_j: f64,
    /// Source parameter init magnitude j₀ (paper: 5).
    pub j0: f64,
    /// Source activation family (paper default: sigmoid).
    pub source_kind: SourceActivationKind,
}

impl Default for Activation {
    fn default() -> Self {
        Activation {
            alpha_m: 9.0,
            m0: 1.0,
            alpha_j: 2.0,
            j0: 5.0,
            source_kind: SourceActivationKind::Sigmoid,
        }
    }
}

impl Activation {
    /// Mask from parameters: `M = sigmoid(α_m · θ_M)`.
    #[must_use]
    pub fn mask(&self, theta_m: &RealField) -> RealField {
        let a = self.alpha_m;
        theta_m.map(|t| sigmoid(a * t))
    }

    /// Pointwise `∂M/∂θ_M = α_m · M (1 − M)` from an already-activated mask.
    #[must_use]
    pub fn mask_grad(&self, mask: &RealField) -> RealField {
        let a = self.alpha_m;
        mask.map(|m| a * m * (1.0 - m))
    }

    /// Switches the source activation to the cosine alternative of §3.1.
    #[must_use]
    pub fn with_cosine_source(mut self) -> Self {
        self.source_kind = SourceActivationKind::Cosine;
        self
    }

    /// Source weights from parameters (`J = sigmoid(α_j θ)` or the cosine
    /// alternative, per [`Activation::source_kind`]).
    pub fn source_weights(&self, theta_j: &[f64]) -> Vec<f64> {
        match self.source_kind {
            SourceActivationKind::Sigmoid => {
                theta_j.iter().map(|&t| sigmoid(self.alpha_j * t)).collect()
            }
            SourceActivationKind::Cosine => theta_j
                .iter()
                .map(|&t| 0.5 * (1.0 - (self.alpha_j * t).cos()))
                .collect(),
        }
    }

    /// Pointwise source-activation derivative `∂J/∂θ_J`.
    ///
    /// For the sigmoid this is `α_j · J (1 − J)` recoverable from the
    /// weights alone; the cosine family needs the raw parameters, so both
    /// are taken (`theta_j` is ignored for the sigmoid).
    pub fn source_grad_full(&self, theta_j: &[f64], weights: &[f64]) -> Vec<f64> {
        match self.source_kind {
            SourceActivationKind::Sigmoid => weights
                .iter()
                .map(|&j| self.alpha_j * j * (1.0 - j))
                .collect(),
            SourceActivationKind::Cosine => theta_j
                .iter()
                .map(|&t| 0.5 * self.alpha_j * (self.alpha_j * t).sin())
                .collect(),
        }
    }

    /// Sigmoid-family source derivative from activated weights; kept for
    /// callers that never switch activations.
    ///
    /// # Panics
    ///
    /// Panics if the activation was switched to the cosine family (use
    /// [`Activation::source_grad_full`] there).
    pub fn source_grad(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.source_kind,
            SourceActivationKind::Sigmoid,
            "cosine activation needs source_grad_full"
        );
        weights
            .iter()
            .map(|&j| self.alpha_j * j * (1.0 - j))
            .collect()
    }

    /// Initializes mask parameters from a binary target pattern:
    /// `θ_M = +m₀` where the target is bright, `−m₀` elsewhere (Table 1; the
    /// paper notes this initialization "also facilitates SRAF generation").
    #[must_use]
    pub fn init_theta_m(&self, target: &RealField) -> RealField {
        let m0 = self.m0;
        target.map(|z| if z >= 0.5 { m0 } else { -m0 })
    }

    /// Initializes source parameters from a parametric template:
    /// `θ_J = +j₀` on lit template cells, `−j₀` on dark ones (sigmoid
    /// family); the cosine family initializes at the activation's rails
    /// (`π/α_j` lit, `0` dark).
    pub fn init_theta_j(&self, cfg: &OpticalConfig, shape: SourceShape) -> Vec<f64> {
        let template = Source::from_shape(cfg, shape);
        let (lit, dark) = match self.source_kind {
            SourceActivationKind::Sigmoid => (self.j0, -self.j0),
            SourceActivationKind::Cosine => (std::f64::consts::PI / self.alpha_j, 0.0),
        };
        template
            .weights()
            .iter()
            .map(|&w| if w >= 0.5 { lit } else { dark })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table1() {
        let a = Activation::default();
        assert_eq!(a.alpha_m, 9.0);
        assert_eq!(a.m0, 1.0);
        assert_eq!(a.alpha_j, 2.0);
        assert_eq!(a.j0, 5.0);
    }

    #[test]
    fn initialized_mask_is_nearly_binary() {
        let a = Activation::default();
        let target = RealField::from_vec(2, vec![1.0, 0.0, 0.0, 1.0]);
        let theta = a.init_theta_m(&target);
        let mask = a.mask(&theta);
        // sigmoid(±9) ≈ 0.99988 / 0.00012.
        assert!(mask.as_slice()[0] > 0.999);
        assert!(mask.as_slice()[1] < 0.001);
    }

    #[test]
    fn initialized_source_is_grayscale_but_contrasted() {
        let a = Activation::default();
        let cfg = OpticalConfig::test_small();
        let theta = a.init_theta_j(
            &cfg,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        let weights = a.source_weights(&theta);
        // sigmoid(±10) — lit cells ~1, dark cells ~4.5e-5 (grayscale, not 0).
        let lit: Vec<f64> = weights.iter().copied().filter(|w| *w > 0.5).collect();
        let dark: Vec<f64> = weights.iter().copied().filter(|w| *w <= 0.5).collect();
        assert!(!lit.is_empty() && !dark.is_empty());
        assert!(lit.iter().all(|w| *w > 0.999));
        assert!(dark.iter().all(|w| *w > 0.0 && *w < 1e-3));
    }

    #[test]
    fn mask_grad_matches_finite_difference() {
        let a = Activation::default();
        let eps = 1e-7;
        for &t in &[-1.0, -0.1, 0.0, 0.3, 1.0] {
            let f = RealField::filled(1, t);
            let m = a.mask(&f);
            let analytic = a.mask_grad(&m).as_slice()[0];
            let up = sigmoid(a.alpha_m * (t + eps));
            let dn = sigmoid(a.alpha_m * (t - eps));
            let numeric = (up - dn) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-5 * numeric.abs().max(1e-6));
        }
    }

    #[test]
    fn cosine_activation_hits_rails_at_init() {
        let a = Activation::default().with_cosine_source();
        let cfg = OpticalConfig::test_small();
        let theta = a.init_theta_j(
            &cfg,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        );
        let w = a.source_weights(&theta);
        for (t, j) in theta.iter().zip(&w) {
            if *t == 0.0 {
                assert!(j.abs() < 1e-12);
            } else {
                assert!((j - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cosine_grad_matches_finite_difference() {
        let a = Activation::default().with_cosine_source();
        let eps = 1e-7;
        let thetas = [-1.2, -0.4, 0.0, 0.7, 1.5];
        let weights = a.source_weights(&thetas);
        let grads = a.source_grad_full(&thetas, &weights);
        for (i, &t) in thetas.iter().enumerate() {
            let up = 0.5 * (1.0 - (a.alpha_j * (t + eps)).cos());
            let dn = 0.5 * (1.0 - (a.alpha_j * (t - eps)).cos());
            let numeric = (up - dn) / (2.0 * eps);
            assert!((grads[i] - numeric).abs() < 1e-5 * numeric.abs().max(1e-6));
        }
    }

    #[test]
    fn cosine_gradient_vanishes_at_rails() {
        // The paper's instability argument: at fully-on/off cells the
        // cosine derivative is exactly zero, freezing those parameters.
        let a = Activation::default().with_cosine_source();
        let rails = [0.0, std::f64::consts::PI / a.alpha_j];
        let w = a.source_weights(&rails);
        let g = a.source_grad_full(&rails, &w);
        assert!(g[0].abs() < 1e-12 && g[1].abs() < 1e-12);
        // Whereas the sigmoid keeps a nonzero pull everywhere.
        let s = Activation::default();
        let w2 = s.source_weights(&[5.0]);
        assert!(s.source_grad(&w2)[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "cosine activation needs source_grad_full")]
    fn sigmoid_only_helper_rejects_cosine() {
        let a = Activation::default().with_cosine_source();
        let _ = a.source_grad(&[0.5]);
    }

    #[test]
    fn source_grad_matches_finite_difference() {
        let a = Activation::default();
        let eps = 1e-7;
        let thetas = [-2.0, -0.5, 0.0, 0.5, 2.0];
        let weights = a.source_weights(&thetas);
        let grads = a.source_grad(&weights);
        for (i, &t) in thetas.iter().enumerate() {
            let up = sigmoid(a.alpha_j * (t + eps));
            let dn = sigmoid(a.alpha_j * (t - eps));
            let numeric = (up - dn) / (2.0 * eps);
            assert!((grads[i] - numeric).abs() < 1e-5 * numeric.abs().max(1e-9));
        }
    }
}
