//! Mask regularization terms used across the ILT literature the paper
//! builds on (MOSAIC [2] and its descendants): a **discreteness** penalty
//! pushing the grayscale mask toward binary values, and a **total-variation
//! (TV)** penalty suppressing ragged, hard-to-manufacture contours.
//!
//! Both are optional (`SmoSettings::regularizers`, zero-weighted by
//! default, which reproduces the paper's plain objective) and enter the
//! loss as `+ w_d·R_disc(M) + w_tv·R_tv(M)` with analytic gradients chained
//! through the Table 1 mask activation like every other term.

use bismo_optics::RealField;

/// Weights of the optional mask regularization terms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Regularizers {
    /// Weight of the discreteness penalty `mean(4·M·(1−M))`.
    pub discreteness: f64,
    /// Weight of the total-variation penalty
    /// `mean((∂_x M)² + (∂_y M)²)` (forward differences, replicated edge).
    pub tv: f64,
}

impl Regularizers {
    /// No regularization — the paper's objective.
    pub const NONE: Regularizers = Regularizers {
        discreteness: 0.0,
        tv: 0.0,
    };

    /// Returns `true` when both weights are zero (lets the evaluator skip
    /// the extra passes entirely).
    pub fn is_none(&self) -> bool {
        // FLOAT-EQ-OK: a disabled regularizer weight is exactly 0.0 (the NONE default); the comparison gates work, not numerics.
        self.discreteness == 0.0 && self.tv == 0.0
    }
}

/// Discreteness penalty value: `mean(4·M·(1−M))` — 0 on a binary mask,
/// maximal (1) on an all-gray mask.
pub fn discreteness_value(mask: &RealField) -> f64 {
    let n = mask.len() as f64;
    mask.as_slice()
        .iter()
        .map(|&m| 4.0 * m * (1.0 - m))
        .sum::<f64>()
        / n
}

/// Gradient of [`discreteness_value`] with respect to the mask:
/// `4·(1 − 2M)/N²`.
#[must_use]
pub fn discreteness_grad(mask: &RealField) -> RealField {
    let n = mask.len() as f64;
    mask.map(|m| 4.0 * (1.0 - 2.0 * m) / n)
}

/// Total-variation penalty value with forward differences and replicated
/// edges: `mean(Σ (M[r][c+1]−M[r][c])² + (M[r+1][c]−M[r][c])²)`.
pub fn tv_value(mask: &RealField) -> f64 {
    let d = mask.dim();
    let mut acc = 0.0;
    for r in 0..d {
        for c in 0..d {
            let m = mask[(r, c)];
            if c + 1 < d {
                let dx = mask[(r, c + 1)] - m;
                acc += dx * dx;
            }
            if r + 1 < d {
                let dy = mask[(r + 1, c)] - m;
                acc += dy * dy;
            }
        }
    }
    acc / mask.len() as f64
}

/// Gradient of [`tv_value`] with respect to the mask (the discrete
/// anisotropic-quadratic TV gradient; boundary terms handled by omission,
/// matching the value's definition).
#[must_use]
pub fn tv_grad(mask: &RealField) -> RealField {
    let d = mask.dim();
    let n = mask.len() as f64;
    let mut grad = RealField::zeros(d);
    for r in 0..d {
        for c in 0..d {
            let m = mask[(r, c)];
            let mut g = 0.0;
            if c + 1 < d {
                g -= 2.0 * (mask[(r, c + 1)] - m);
            }
            if c > 0 {
                g += 2.0 * (m - mask[(r, c - 1)]);
            }
            if r + 1 < d {
                g -= 2.0 * (mask[(r + 1, c)] - m);
            }
            if r > 0 {
                g += 2.0 * (m - mask[(r - 1, c)]);
            }
            grad[(r, c)] = g / n;
        }
    }
    grad
}

/// Combined regularization value for a mask under the given weights.
pub fn value(reg: &Regularizers, mask: &RealField) -> f64 {
    if reg.is_none() {
        return 0.0;
    }
    reg.discreteness * discreteness_value(mask) + reg.tv * tv_value(mask)
}

/// Combined regularization gradient with respect to the mask.
#[must_use]
pub fn grad(reg: &Regularizers, mask: &RealField) -> RealField {
    let mut out = RealField::zeros(mask.dim());
    // FLOAT-EQ-OK: a disabled regularizer weight is exactly 0.0 (the NONE default); the comparison gates work, not numerics.
    if reg.discreteness != 0.0 {
        out.axpy(reg.discreteness, &discreteness_grad(mask));
    }
    // FLOAT-EQ-OK: a disabled regularizer weight is exactly 0.0 (the NONE default); the comparison gates work, not numerics.
    if reg.tv != 0.0 {
        out.axpy(reg.tv, &tv_grad(mask));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gray_mask() -> RealField {
        RealField::from_fn(8, |r, c| ((r * 5 + c * 3) % 10) as f64 / 10.0)
    }

    #[test]
    fn binary_mask_has_zero_discreteness() {
        let m = RealField::from_fn(8, |r, c| ((r + c) % 2) as f64);
        assert_eq!(discreteness_value(&m), 0.0);
        // And the all-gray mask maxes it at 1.
        let g = RealField::filled(8, 0.5);
        assert!((discreteness_value(&g) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn constant_mask_has_zero_tv() {
        assert_eq!(tv_value(&RealField::filled(8, 0.7)), 0.0);
        // A checkerboard maximizes neighbor differences.
        let cb = RealField::from_fn(8, |r, c| ((r + c) % 2) as f64);
        assert!(tv_value(&cb) > 1.0);
    }

    #[test]
    fn discreteness_grad_matches_finite_difference() {
        let m = gray_mask();
        let g = discreteness_grad(&m);
        let eps = 1e-6;
        for &(r, c) in &[(0usize, 0usize), (3, 5), (7, 7)] {
            let mut up = m.clone();
            up[(r, c)] += eps;
            let mut dn = m.clone();
            dn[(r, c)] -= eps;
            let numeric = (discreteness_value(&up) - discreteness_value(&dn)) / (2.0 * eps);
            assert!((numeric - g[(r, c)]).abs() < 1e-9, "({r},{c})");
        }
    }

    #[test]
    fn tv_grad_matches_finite_difference() {
        let m = gray_mask();
        let g = tv_grad(&m);
        let eps = 1e-6;
        for &(r, c) in &[(0usize, 0usize), (0, 4), (3, 5), (7, 0), (7, 7)] {
            let mut up = m.clone();
            up[(r, c)] += eps;
            let mut dn = m.clone();
            dn[(r, c)] -= eps;
            let numeric = (tv_value(&up) - tv_value(&dn)) / (2.0 * eps);
            assert!(
                (numeric - g[(r, c)]).abs() < 1e-9,
                "({r},{c}): {numeric} vs {}",
                g[(r, c)]
            );
        }
    }

    #[test]
    fn combined_value_and_grad_respect_weights() {
        let m = gray_mask();
        let reg = Regularizers {
            discreteness: 2.0,
            tv: 3.0,
        };
        let v = value(&reg, &m);
        assert!((v - (2.0 * discreteness_value(&m) + 3.0 * tv_value(&m))).abs() < 1e-12);
        let g = grad(&reg, &m);
        let expect = {
            let mut e = RealField::zeros(m.dim());
            e.axpy(2.0, &discreteness_grad(&m));
            e.axpy(3.0, &tv_grad(&m));
            e
        };
        assert_eq!(g, expect);
        assert_eq!(value(&Regularizers::NONE, &m), 0.0);
    }

    #[test]
    fn tv_descent_smooths_a_noisy_mask() {
        let mut m = gray_mask();
        let v0 = tv_value(&m);
        for _ in 0..50 {
            let g = tv_grad(&m);
            m.axpy(-0.5, &g);
        }
        assert!(tv_value(&m) < v0 * 0.9);
    }
}
