//! The unified Abbe-based SMO objective (paper §3.1, Eq. 7–10) and its
//! Hopkins mask-only counterpart for the baselines.
//!
//! The loss is `L_smo = γ·L2 + η·L_pvb` where `L2` is the mean squared error
//! of the nominal resist image against the target (the paper states "we
//! employ the mean squared loss") and `L_pvb` adds the min/max dose corners
//! (Eq. 8). SO and MO share the same objective (Eq. 9: `L_smo ≜ L_so ≜
//! L_mo`), so one evaluation type serves both levels of the bilevel program.

use bismo_litho::{AbbeImager, DoseCorners, HopkinsImager, LithoError, ResistModel};
use bismo_optics::{OpticalConfig, RealField, Source, SourceShape};

use crate::params::Activation;
use crate::regularizer::{self, Regularizers};

/// Hyperparameters of the SMO objective (paper §4 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SmoSettings {
    /// L2 weight γ (paper: 1000).
    pub gamma: f64,
    /// PVB weight η (paper: 3000).
    pub eta: f64,
    /// Sigmoid parameterization of Table 1.
    pub activation: Activation,
    /// Resist sigmoid steepness β (paper: 30).
    pub resist_beta: f64,
    /// Resist intensity threshold `I_tr`.
    pub resist_threshold: f64,
    /// Dose process corners (paper: ±2%).
    pub dose: DoseCorners,
    /// Worker threads for the Abbe engine (source-point parallelism).
    pub threads: usize,
    /// Optional mask regularization (zero-weighted by default — the
    /// paper's plain objective).
    pub regularizers: Regularizers,
}

impl Default for SmoSettings {
    fn default() -> Self {
        SmoSettings {
            gamma: 1000.0,
            eta: 3000.0,
            activation: Activation::default(),
            resist_beta: 30.0,
            resist_threshold: 0.225,
            dose: DoseCorners::PAPER,
            threads: 1,
            regularizers: Regularizers::NONE,
        }
    }
}

impl SmoSettings {
    /// Settings with the process-window term disabled (η = 0); used by the
    /// NILT-proxy baseline and by fast tests.
    #[must_use]
    pub fn without_pvb(mut self) -> Self {
        self.eta = 0.0;
        self
    }
}

/// Decomposed loss value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossValue {
    /// Total weighted loss `γ·l2 + η·pvb`.
    pub total: f64,
    /// Raw nominal mean-squared term.
    pub l2: f64,
    /// Raw process-variation term (sum of both corners).
    pub pvb: f64,
}

/// Which gradients an evaluation should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradRequest {
    /// Compute `∂L/∂θ_M`.
    pub mask: bool,
    /// Compute `∂L/∂θ_J`.
    pub source: bool,
}

impl GradRequest {
    /// Both gradients.
    pub const BOTH: GradRequest = GradRequest {
        mask: true,
        source: true,
    };
    /// Mask gradient only (upper level / MO).
    pub const MASK: GradRequest = GradRequest {
        mask: true,
        source: false,
    };
    /// Source gradient only (lower level / SO).
    pub const SOURCE: GradRequest = GradRequest {
        mask: false,
        source: true,
    };
}

/// Result of a loss-and-gradients evaluation.
#[derive(Debug, Clone)]
pub struct SmoEval {
    /// Loss at the evaluated parameters.
    pub loss: LossValue,
    /// `∂L/∂θ_M` if requested.
    pub grad_theta_m: Option<RealField>,
    /// `∂L/∂θ_J` if requested (row-major source grid).
    pub grad_theta_j: Option<Vec<f64>>,
}

/// The Abbe-based unified SMO problem: target pattern + objective + engine.
///
/// # Examples
///
/// ```
/// use bismo_core::{SmoProblem, SmoSettings};
/// use bismo_optics::{OpticalConfig, RealField, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
///     if (24..40).contains(&r) && (20..44).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), target)?;
/// let theta_m = problem.init_theta_m();
/// let theta_j = problem.init_theta_j(SourceShape::Annular {
///     sigma_in: cfg.sigma_in(),
///     sigma_out: cfg.sigma_out(),
/// });
/// let loss = problem.loss(&theta_j, &theta_m)?;
/// assert!(loss.total.is_finite() && loss.total > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmoProblem {
    optical: OpticalConfig,
    settings: SmoSettings,
    abbe: AbbeImager,
    resist: ResistModel,
    target: RealField,
}

impl SmoProblem {
    /// Creates a problem for `target` under `optical` and `settings`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] if the target does not match the mask
    /// grid.
    pub fn new(
        optical: OpticalConfig,
        settings: SmoSettings,
        target: RealField,
    ) -> Result<Self, LithoError> {
        if target.dim() != optical.mask_dim() {
            return Err(LithoError::Shape(format!(
                "target is {}×{0}, config expects {1}×{1}",
                target.dim(),
                optical.mask_dim()
            )));
        }
        let abbe = AbbeImager::new(&optical)?.with_threads(settings.threads);
        let resist = ResistModel::new(settings.resist_beta, settings.resist_threshold);
        Ok(SmoProblem {
            optical,
            settings,
            abbe,
            resist,
            target,
        })
    }

    /// The optical configuration.
    #[inline]
    pub fn optical(&self) -> &OpticalConfig {
        &self.optical
    }

    /// Objective hyperparameters.
    #[inline]
    pub fn settings(&self) -> &SmoSettings {
        &self.settings
    }

    /// The target pattern `Z_t`.
    #[inline]
    pub fn target(&self) -> &RealField {
        &self.target
    }

    /// The underlying Abbe engine (exposed for metrics and harnesses).
    #[inline]
    pub fn abbe(&self) -> &AbbeImager {
        &self.abbe
    }

    /// The resist model.
    #[inline]
    pub fn resist(&self) -> &ResistModel {
        &self.resist
    }

    /// Initial mask parameters from the target (Table 1).
    #[must_use]
    pub fn init_theta_m(&self) -> RealField {
        self.settings.activation.init_theta_m(&self.target)
    }

    /// Initial source parameters from a template (Table 1).
    pub fn init_theta_j(&self, shape: SourceShape) -> Vec<f64> {
        self.settings.activation.init_theta_j(&self.optical, shape)
    }

    /// Activated mask `M = sigmoid(α_m θ_M)`.
    #[must_use]
    pub fn mask(&self, theta_m: &RealField) -> RealField {
        self.settings.activation.mask(theta_m)
    }

    /// Activated source `J = sigmoid(α_j θ_J)`.
    pub fn source(&self, theta_j: &[f64]) -> Source {
        Source::from_weights(
            &self.optical,
            self.settings.activation.source_weights(theta_j),
        )
    }

    /// Nominal-dose resist image for the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn resist_nominal(
        &self,
        theta_j: &[f64],
        theta_m: &RealField,
    ) -> Result<RealField, LithoError> {
        let source = self.source(theta_j);
        let mask = self.mask(theta_m);
        Ok(self.resist.develop(&self.abbe.intensity(&source, &mask)?))
    }

    /// The dose passes the objective runs: `(term weight, dose factor)`.
    fn passes(&self) -> Vec<(f64, f64, bool)> {
        let mut passes = vec![(self.settings.gamma, 1.0, true)];
        if self.settings.eta > 0.0 {
            passes.push((self.settings.eta, self.settings.dose.min, false));
            passes.push((self.settings.eta, self.settings.dose.max, false));
        }
        passes
    }

    /// Evaluates `L_smo(θ_J, θ_M)` (Eq. 9).
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn loss(&self, theta_j: &[f64], theta_m: &RealField) -> Result<LossValue, LithoError> {
        let source = self.source(theta_j);
        let mask = self.mask(theta_m);
        let npix = (self.optical.mask_dim() * self.optical.mask_dim()) as f64;
        let mut l2 = 0.0;
        let mut pvb = 0.0;
        for (_, dose, nominal) in self.passes() {
            let m_d = if dose == 1.0 {
                mask.clone()
            } else {
                mask.map(|v| dose * v)
            };
            let z = self.resist.develop(&self.abbe.intensity(&source, &m_d)?);
            let mse = z.sq_distance(&self.target) / npix;
            if nominal {
                l2 += mse;
            } else {
                pvb += mse;
            }
        }
        let reg = regularizer::value(&self.settings.regularizers, &mask);
        Ok(LossValue {
            total: self.settings.gamma * l2 + self.settings.eta * pvb + reg,
            l2,
            pvb,
        })
    }

    /// Evaluates the loss and the requested parameter gradients.
    ///
    /// The full chain per dose pass `d` is
    /// `θ → (J, M) → M_d = d·M → I → Z → mse`, with
    /// `G_I = (2w/N²)·(Z − Z_t)·β Z(1−Z)` fed into the Abbe adjoints and the
    /// Table 1 activation derivatives applied last.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn eval(
        &self,
        theta_j: &[f64],
        theta_m: &RealField,
        request: GradRequest,
    ) -> Result<SmoEval, LithoError> {
        let act = self.settings.activation;
        let source = self.source(theta_j);
        let mask = self.mask(theta_m);
        let n = self.optical.mask_dim();
        let npix = (n * n) as f64;

        let mut l2 = 0.0;
        let mut pvb = 0.0;
        let mut grad_mask_total: Option<RealField> = request.mask.then(|| RealField::zeros(n));
        let mut grad_source_total: Option<Vec<f64>> =
            request.source.then(|| vec![0.0; theta_j.len()]);

        for (weight, dose, nominal) in self.passes() {
            let m_d = if dose == 1.0 {
                mask.clone()
            } else {
                mask.map(|v| dose * v)
            };
            let intensity = self.abbe.intensity(&source, &m_d)?;
            let z = self.resist.develop(&intensity);
            let mse = z.sq_distance(&self.target) / npix;
            if nominal {
                l2 += mse;
            } else {
                pvb += mse;
            }

            // G_I = ∂(weight·mse)/∂I = (2·weight/N²)·(Z−Z_t)·βZ(1−Z).
            let dz = self.resist.develop_grad_from_resist(&z);
            let mut g_i = RealField::zeros(n);
            {
                let gs = g_i.as_mut_slice();
                let zs = z.as_slice();
                let ts = self.target.as_slice();
                let ds = dz.as_slice();
                for i in 0..gs.len() {
                    gs[i] = 2.0 * weight / npix * (zs[i] - ts[i]) * ds[i];
                }
            }

            match (request.mask, request.source) {
                (true, true) => {
                    let (gm, gj) = self.abbe.gradients(&source, &m_d, &g_i, &intensity)?;
                    grad_mask_total.as_mut().expect("requested").axpy(dose, &gm);
                    let total = grad_source_total.as_mut().expect("requested");
                    for (t, g) in total.iter_mut().zip(&gj) {
                        *t += g;
                    }
                }
                (true, false) => {
                    let gm = self.abbe.grad_mask(&source, &m_d, &g_i)?;
                    grad_mask_total.as_mut().expect("requested").axpy(dose, &gm);
                }
                (false, true) => {
                    let gj = self.abbe.grad_source(&source, &m_d, &g_i, &intensity)?;
                    let total = grad_source_total.as_mut().expect("requested");
                    for (t, g) in total.iter_mut().zip(&gj) {
                        *t += g;
                    }
                }
                (false, false) => {}
            }
        }

        // Mask regularization acts on M directly; fold it in before the
        // activation chain.
        let reg_value = regularizer::value(&self.settings.regularizers, &mask);
        if let Some(gm) = grad_mask_total.as_mut() {
            if !self.settings.regularizers.is_none() {
                gm.axpy(1.0, &regularizer::grad(&self.settings.regularizers, &mask));
            }
        }

        // Chain through the Table 1 activations.
        let grad_theta_m = grad_mask_total.map(|gm| gm.hadamard(&act.mask_grad(&mask)));
        let grad_theta_j = grad_source_total.map(|gj| {
            let dj = act.source_grad_full(theta_j, source.weights());
            gj.iter().zip(&dj).map(|(g, d)| g * d).collect()
        });

        Ok(SmoEval {
            loss: LossValue {
                total: self.settings.gamma * l2 + self.settings.eta * pvb + reg_value,
                l2,
                pvb,
            },
            grad_theta_m,
            grad_theta_j,
        })
    }
}

/// Hopkins-model mask-only problem for a **fixed** source: the substrate of
/// the NILT / DAC23-MILT proxies and of the hybrid AM-SMO's MO phase.
///
/// Constructing one performs the TCC build + SOCS truncation for the frozen
/// source; there is deliberately no source-gradient method (paper §2.1).
#[derive(Debug, Clone)]
pub struct HopkinsMoProblem {
    optical: OpticalConfig,
    settings: SmoSettings,
    hopkins: HopkinsImager,
    resist: ResistModel,
    target: RealField,
}

impl HopkinsMoProblem {
    /// Builds the problem, paying the TCC + SOCS cost for `source` with
    /// truncation rank `q`.
    ///
    /// # Errors
    ///
    /// Propagates TCC/eigensolver and shape failures.
    pub fn new(
        optical: OpticalConfig,
        settings: SmoSettings,
        target: RealField,
        source: &Source,
        q: usize,
    ) -> Result<Self, LithoError> {
        if target.dim() != optical.mask_dim() {
            return Err(LithoError::Shape(format!(
                "target is {}×{0}, config expects {1}×{1}",
                target.dim(),
                optical.mask_dim()
            )));
        }
        let hopkins = HopkinsImager::new(&optical, source, q)?;
        let resist = ResistModel::new(settings.resist_beta, settings.resist_threshold);
        Ok(HopkinsMoProblem {
            optical,
            settings,
            hopkins,
            resist,
            target,
        })
    }

    /// The target pattern.
    #[inline]
    pub fn target(&self) -> &RealField {
        &self.target
    }

    /// The underlying Hopkins engine.
    #[inline]
    pub fn hopkins(&self) -> &HopkinsImager {
        &self.hopkins
    }

    /// Objective hyperparameters.
    #[inline]
    pub fn settings(&self) -> &SmoSettings {
        &self.settings
    }

    /// Initial mask parameters from the target.
    #[must_use]
    pub fn init_theta_m(&self) -> RealField {
        self.settings.activation.init_theta_m(&self.target)
    }

    /// Activated mask.
    #[must_use]
    pub fn mask(&self, theta_m: &RealField) -> RealField {
        self.settings.activation.mask(theta_m)
    }

    fn passes(&self) -> Vec<(f64, f64, bool)> {
        let mut passes = vec![(self.settings.gamma, 1.0, true)];
        if self.settings.eta > 0.0 {
            passes.push((self.settings.eta, self.settings.dose.min, false));
            passes.push((self.settings.eta, self.settings.dose.max, false));
        }
        passes
    }

    /// Evaluates loss and `∂L/∂θ_M`.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn eval(&self, theta_m: &RealField) -> Result<(LossValue, RealField), LithoError> {
        let act = self.settings.activation;
        let mask = self.mask(theta_m);
        let n = self.optical.mask_dim();
        let npix = (n * n) as f64;
        let mut l2 = 0.0;
        let mut pvb = 0.0;
        let mut grad_mask_total = RealField::zeros(n);
        for (weight, dose, nominal) in self.passes() {
            let m_d = if dose == 1.0 {
                mask.clone()
            } else {
                mask.map(|v| dose * v)
            };
            let intensity = self.hopkins.intensity(&m_d)?;
            let z = self.resist.develop(&intensity);
            let mse = z.sq_distance(&self.target) / npix;
            if nominal {
                l2 += mse;
            } else {
                pvb += mse;
            }
            let dz = self.resist.develop_grad_from_resist(&z);
            let mut g_i = RealField::zeros(n);
            {
                let gs = g_i.as_mut_slice();
                let zs = z.as_slice();
                let ts = self.target.as_slice();
                let ds = dz.as_slice();
                for i in 0..gs.len() {
                    gs[i] = 2.0 * weight / npix * (zs[i] - ts[i]) * ds[i];
                }
            }
            let gm = self.hopkins.grad_mask(&m_d, &g_i)?;
            grad_mask_total.axpy(dose, &gm);
        }
        let grad_theta_m = grad_mask_total.hadamard(&act.mask_grad(&mask));
        Ok((
            LossValue {
                total: self.settings.gamma * l2 + self.settings.eta * pvb,
                l2,
                pvb,
            },
            grad_theta_m,
        ))
    }

    /// Loss only.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn loss(&self, theta_m: &RealField) -> Result<LossValue, LithoError> {
        let mask = self.mask(theta_m);
        let npix = (self.optical.mask_dim() * self.optical.mask_dim()) as f64;
        let mut l2 = 0.0;
        let mut pvb = 0.0;
        for (_, dose, nominal) in self.passes() {
            let m_d = if dose == 1.0 {
                mask.clone()
            } else {
                mask.map(|v| dose * v)
            };
            let z = self.resist.develop(&self.hopkins.intensity(&m_d)?);
            let mse = z.sq_distance(&self.target) / npix;
            if nominal {
                l2 += mse;
            } else {
                pvb += mse;
            }
        }
        Ok(LossValue {
            total: self.settings.gamma * l2 + self.settings.eta * pvb,
            l2,
            pvb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> SmoProblem {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        SmoProblem::new(cfg, SmoSettings::default(), target).unwrap()
    }

    fn annular() -> SourceShape {
        SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        }
    }

    #[test]
    fn loss_is_finite_positive_at_init() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let loss = p.loss(&tj, &tm).unwrap();
        assert!(loss.total.is_finite());
        assert!(loss.total > 0.0);
        assert!(loss.l2 >= 0.0 && loss.pvb >= 0.0);
        assert!((loss.total - (1000.0 * loss.l2 + 3000.0 * loss.pvb)).abs() < 1e-9 * loss.total);
    }

    #[test]
    fn eval_loss_matches_loss() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let l = p.loss(&tj, &tm).unwrap();
        let e = p.eval(&tj, &tm, GradRequest::BOTH).unwrap();
        assert!((l.total - e.loss.total).abs() < 1e-12 * l.total.max(1.0));
    }

    #[test]
    fn theta_m_gradient_matches_finite_difference() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let e = p.eval(&tj, &tm, GradRequest::MASK).unwrap();
        let gm = e.grad_theta_m.unwrap();
        let eps = 1e-4;
        let n = tm.dim();
        for &(r, c) in &[(32usize, 32usize), (24, 20), (10, 10), (39, 43)] {
            let mut up = tm.clone();
            up[(r, c)] += eps;
            let mut dn = tm.clone();
            dn[(r, c)] -= eps;
            let lu = p.loss(&tj, &up).unwrap().total;
            let ld = p.loss(&tj, &dn).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
                "({r},{c}) of {n}: numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
    }

    #[test]
    fn theta_j_gradient_matches_finite_difference() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let e = p.eval(&tj, &tm, GradRequest::SOURCE).unwrap();
        let gj = e.grad_theta_j.unwrap();
        let eps = 1e-4;
        let nj = p.optical().source_dim();
        for &idx in &[0usize, nj * nj / 2, nj + 2, nj * nj - 1] {
            let mut up = tj.clone();
            up[idx] += eps;
            let mut dn = tj.clone();
            dn[idx] -= eps;
            let lu = p.loss(&up, &tm).unwrap().total;
            let ld = p.loss(&dn, &tm).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gj[idx]).abs() < 1e-6 + 1e-3 * numeric.abs(),
                "τ={idx}: numeric {numeric} vs analytic {}",
                gj[idx]
            );
        }
    }

    #[test]
    fn gradient_is_a_descent_direction() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let e = p.eval(&tj, &tm, GradRequest::BOTH).unwrap();
        let gm = e.grad_theta_m.unwrap();
        let gj = e.grad_theta_j.unwrap();
        let step = 0.05;
        let mut tm2 = tm.clone();
        tm2.axpy(-step, &gm);
        let tj2: Vec<f64> = tj.iter().zip(&gj).map(|(t, g)| t - step * g).collect();
        let l0 = e.loss.total;
        let l1 = p.loss(&tj2, &tm2).unwrap().total;
        assert!(l1 < l0, "descent failed: {l0} → {l1}");
    }

    #[test]
    fn without_pvb_disables_corner_passes() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::zeros(cfg.mask_dim());
        let p = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let loss = p.loss(&tj, &tm).unwrap();
        assert_eq!(loss.pvb, 0.0);
    }

    #[test]
    fn target_shape_mismatch_is_error() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::zeros(16);
        assert!(SmoProblem::new(cfg, SmoSettings::default(), target).is_err());
    }

    #[test]
    fn regularized_theta_m_gradient_matches_finite_difference() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let mut settings = SmoSettings::default().without_pvb();
        settings.regularizers = Regularizers {
            discreteness: 5.0,
            tv: 3.0,
        };
        let p = SmoProblem::new(cfg, settings, target).unwrap();
        let tj = p.init_theta_j(annular());
        // A slightly smoothed init probes the regularizers off the rails.
        let tm = p.init_theta_m().map(|t| 0.3 * t);
        let e = p.eval(&tj, &tm, GradRequest::MASK).unwrap();
        let gm = e.grad_theta_m.unwrap();
        let eps = 1e-4;
        for &(r, c) in &[(32usize, 32usize), (24, 20), (10, 10)] {
            let mut up = tm.clone();
            up[(r, c)] += eps;
            let mut dn = tm.clone();
            dn[(r, c)] -= eps;
            let lu = p.loss(&tj, &up).unwrap().total;
            let ld = p.loss(&tj, &dn).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
        // Regularizers contribute to the loss value too.
        let plain = {
            let cfg = OpticalConfig::test_small();
            let target = p.target().clone();
            SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap()
        };
        assert!(p.loss(&tj, &tm).unwrap().total > plain.loss(&tj, &tm).unwrap().total);
    }

    #[test]
    fn hopkins_mo_gradient_matches_finite_difference() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let source = Source::from_shape(&cfg, annular());
        let p = HopkinsMoProblem::new(cfg, SmoSettings::default(), target, &source, 12).unwrap();
        let tm = p.init_theta_m();
        let (_, gm) = p.eval(&tm).unwrap();
        let eps = 1e-4;
        for &(r, c) in &[(32usize, 32usize), (24, 20), (5, 50)] {
            let mut up = tm.clone();
            up[(r, c)] += eps;
            let mut dn = tm.clone();
            dn[(r, c)] -= eps;
            let lu = p.loss(&up).unwrap().total;
            let ld = p.loss(&dn).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
    }
}
