//! The unified SMO objective (paper §3.1, Eq. 7–10) over any
//! [`ImagingBackend`].
//!
//! The loss is `L_smo = γ·L2 + η·L_pvb` where `L2` is the mean squared error
//! of the nominal resist image against the target (the paper states "we
//! employ the mean squared loss") and `L_pvb` adds the min/max dose corners
//! (Eq. 8). SO and MO share the same objective (Eq. 9: `L_smo ≜ L_so ≜
//! L_mo`), so one evaluation type serves both levels of the bilevel program.
//!
//! A single generic [`MoProblem<B>`] owns the dose-pass / resist / adjoint
//! plumbing once; the historical [`SmoProblem`] (Abbe, source-aware) and
//! [`HopkinsMoProblem`] (Hopkins, frozen source) are thin type aliases with
//! their original constructors and evaluation signatures preserved as
//! inherent methods (DESIGN.md §2).

use std::sync::Arc;

use bismo_litho::{
    AbbeImager, DoseCorners, FieldBatch, HopkinsImager, ImagingBackend, LithoError, ResistModel,
};
use bismo_optics::{ImagingCore, OpticalConfig, RealField, Source, SourceShape};

use crate::params::Activation;
use crate::regularizer::{self, Regularizers};

/// Hyperparameters of the SMO objective (paper §4 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SmoSettings {
    /// L2 weight γ (paper: 1000).
    pub gamma: f64,
    /// PVB weight η (paper: 3000).
    pub eta: f64,
    /// Sigmoid parameterization of Table 1.
    pub activation: Activation,
    /// Resist sigmoid steepness β (paper: 30).
    pub resist_beta: f64,
    /// Resist intensity threshold `I_tr`.
    pub resist_threshold: f64,
    /// Dose process corners (paper: ±2%).
    pub dose: DoseCorners,
    /// Worker threads for the Abbe engine (source-point parallelism).
    pub threads: usize,
    /// Optional mask regularization (zero-weighted by default — the
    /// paper's plain objective).
    pub regularizers: Regularizers,
}

impl Default for SmoSettings {
    fn default() -> Self {
        SmoSettings {
            gamma: 1000.0,
            eta: 3000.0,
            activation: Activation::default(),
            resist_beta: 30.0,
            resist_threshold: 0.225,
            dose: DoseCorners::PAPER,
            threads: 1,
            regularizers: Regularizers::NONE,
        }
    }
}

impl SmoSettings {
    /// Settings with the process-window term disabled (η = 0); used by the
    /// NILT-proxy baseline and by fast tests.
    #[must_use]
    pub fn without_pvb(mut self) -> Self {
        self.eta = 0.0;
        self
    }
}

/// Decomposed loss value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossValue {
    /// Total weighted loss `γ·l2 + η·pvb` (plus any mask regularization).
    pub total: f64,
    /// Raw nominal mean-squared term.
    pub l2: f64,
    /// Raw process-variation term (sum of both corners).
    pub pvb: f64,
}

/// Which gradients an evaluation should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradRequest {
    /// Compute `∂L/∂θ_M`.
    pub mask: bool,
    /// Compute `∂L/∂θ_J`.
    pub source: bool,
}

impl GradRequest {
    /// Both gradients.
    pub const BOTH: GradRequest = GradRequest {
        mask: true,
        source: true,
    };
    /// Mask gradient only (upper level / MO).
    pub const MASK: GradRequest = GradRequest {
        mask: true,
        source: false,
    };
    /// Source gradient only (lower level / SO).
    pub const SOURCE: GradRequest = GradRequest {
        mask: false,
        source: true,
    };
    /// Loss only.
    pub const NONE: GradRequest = GradRequest {
        mask: false,
        source: false,
    };
}

/// Internal result of the shared evaluation plumbing: loss plus raw
/// (pre-activation) gradients with respect to the activated mask `M` and the
/// source weights `J`.
type InnerEval = (LossValue, Option<RealField>, Option<Vec<f64>>);

/// Result of a loss-and-gradients evaluation.
#[derive(Debug, Clone)]
pub struct SmoEval {
    /// Loss at the evaluated parameters.
    pub loss: LossValue,
    /// `∂L/∂θ_M` if requested.
    pub grad_theta_m: Option<RealField>,
    /// `∂L/∂θ_J` if requested (row-major source grid).
    pub grad_theta_j: Option<Vec<f64>>,
}

/// Target pattern + objective + imaging backend: the one problem type every
/// optimization driver in the workspace runs on.
///
/// Generic code (drivers, tests, benches) is written once against
/// `MoProblem<B: ImagingBackend>`; the [`SmoProblem`] and
/// [`HopkinsMoProblem`] aliases add the backend-specific constructors and
/// parameter conventions.
#[derive(Debug, Clone)]
pub struct MoProblem<B: ImagingBackend> {
    settings: SmoSettings,
    backend: B,
    resist: ResistModel,
    target: RealField,
}

/// The Abbe-based unified SMO problem: differentiable in **both** parameter
/// blocks.
///
/// # Examples
///
/// ```
/// use bismo_core::{SmoProblem, SmoSettings};
/// use bismo_optics::{OpticalConfig, RealField, SourceShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
///     if (24..40).contains(&r) && (20..44).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let problem = SmoProblem::new(cfg.clone(), SmoSettings::default(), target)?;
/// let theta_m = problem.init_theta_m();
/// let theta_j = problem.init_theta_j(SourceShape::Annular {
///     sigma_in: cfg.sigma_in(),
///     sigma_out: cfg.sigma_out(),
/// });
/// let loss = problem.loss(&theta_j, &theta_m)?;
/// assert!(loss.total.is_finite() && loss.total > 0.0);
/// # Ok(())
/// # }
/// ```
pub type SmoProblem = MoProblem<AbbeImager>;

/// Hopkins-model mask-only problem for a **fixed** source: the substrate of
/// the NILT / DAC23-MILT proxies and of the hybrid AM-SMO's MO phase.
///
/// Constructing one performs the TCC build + SOCS truncation for the frozen
/// source; there is deliberately no source-gradient method (paper §2.1).
pub type HopkinsMoProblem = MoProblem<HopkinsImager>;

impl<B: ImagingBackend> MoProblem<B> {
    /// Wraps an already-constructed imaging backend into a problem — the
    /// generic constructor behind both aliases, also used directly by
    /// backend-generic tests and benches.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] if the target does not match the
    /// backend's mask grid.
    pub fn from_backend(
        backend: B,
        settings: SmoSettings,
        target: RealField,
    ) -> Result<Self, LithoError> {
        if target.dim() != backend.config().mask_dim() {
            return Err(LithoError::Shape(format!(
                "target is {}×{0}, config expects {1}×{1}",
                target.dim(),
                backend.config().mask_dim()
            )));
        }
        let resist = ResistModel::new(settings.resist_beta, settings.resist_threshold);
        Ok(MoProblem {
            settings,
            backend,
            resist,
            target,
        })
    }

    /// The optical configuration (borrowed from the backend — the single
    /// source of truth for the grids).
    #[inline]
    pub fn optical(&self) -> &OpticalConfig {
        self.backend.config()
    }

    /// Objective hyperparameters.
    #[inline]
    pub fn settings(&self) -> &SmoSettings {
        &self.settings
    }

    /// The target pattern `Z_t`.
    #[inline]
    pub fn target(&self) -> &RealField {
        &self.target
    }

    /// The imaging backend driving this problem.
    #[inline]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The resist model.
    #[inline]
    pub fn resist(&self) -> &ResistModel {
        &self.resist
    }

    /// Initial mask parameters from the target (Table 1).
    #[must_use]
    pub fn init_theta_m(&self) -> RealField {
        self.settings.activation.init_theta_m(&self.target)
    }

    /// Activated mask `M = sigmoid(α_m θ_M)`.
    #[must_use]
    pub fn mask(&self, theta_m: &RealField) -> RealField {
        self.settings.activation.mask(theta_m)
    }

    /// The dose passes the objective runs: `(term weight, dose factor,
    /// is-nominal)`.
    fn passes(&self) -> Vec<(f64, f64, bool)> {
        let mut passes = vec![(self.settings.gamma, 1.0, true)];
        if self.settings.eta > 0.0 {
            passes.push((self.settings.eta, self.settings.dose.min(), false));
            passes.push((self.settings.eta, self.settings.dose.max(), false));
        }
        passes
    }

    /// The shared evaluation plumbing every public entry point reduces to:
    /// runs the dose passes on the **activated** mask `M`, returning the
    /// loss plus (if requested) `∂L/∂M` (with regularizer gradient folded
    /// in) and `∂L/∂j` — both *before* the Table 1 activation chain.
    ///
    /// The dose passes are **fused** through the backend's batch axis
    /// (DESIGN.md §9): one scaled-mask batch holds the nominal and corner
    /// masks, a single [`ImagingBackend::intensity_batch`] call images all
    /// of them, and — when only the mask gradient is requested — a single
    /// [`ImagingBackend::grad_mask_batch`] call backpropagates all corner
    /// terms. The per-entry results of the batch calls are bit-identical to
    /// the historical pass-at-a-time evaluation (pinned by
    /// `tests/golden/solvers.golden`), so this is a scheduling change only.
    /// Passes needing source gradients keep the per-corner
    /// [`ImagingBackend::gradients`] call, which shares the per-point field
    /// `A_σ` between the mask and source adjoints — fusing those across
    /// corners would undo that (cheaper) sharing.
    fn eval_inner(
        &self,
        source: &Source,
        mask: &RealField,
        request: GradRequest,
    ) -> Result<InnerEval, LithoError> {
        let n = self.optical().mask_dim();
        let npix = (n * n) as f64;
        let nj2 = self.optical().source_dim() * self.optical().source_dim();

        let passes = self.passes();
        let nb = passes.len();
        let mut grad_mask_total: Option<RealField> = request.mask.then(|| RealField::zeros(n));
        let mut grad_source_total: Option<Vec<f64>> = request.source.then(|| vec![0.0; nj2]);

        // One stacked batch of dose-scaled masks, imaged in a single fused
        // backend call.
        let mut masks = FieldBatch::zeros(n, nb);
        for (b, (_, dose, _)) in passes.iter().enumerate() {
            let entry = masks.entry_mut(b);
            // FLOAT-EQ-OK: the nominal dose corner stores exactly 1.0 by DoseCorners construction; this selects it, it is not a tolerance test.
            if *dose == 1.0 {
                entry.copy_from_slice(mask.as_slice());
            } else {
                for (o, &v) in entry.iter_mut().zip(mask.as_slice()) {
                    *o = dose * v;
                }
            }
        }
        let intensities = self.backend.intensity_batch(source, &masks)?;

        // Loss terms and upstream intensity gradients, per corner in pass
        // order (identical accumulation order to the sequential passes).
        let mut l2 = 0.0;
        let mut pvb = 0.0;
        let needs_grad = request.mask || request.source;
        let mut g_batch = needs_grad.then(|| FieldBatch::zeros(n, nb));
        for (b, (weight, _, nominal)) in passes.iter().enumerate() {
            let z = self
                .resist
                .develop(&RealField::from_vec(n, intensities.entry(b).to_vec()));
            let mse = z.sq_distance(&self.target) / npix;
            if *nominal {
                l2 += mse;
            } else {
                pvb += mse;
            }
            if let Some(g_batch) = g_batch.as_mut() {
                // G_I = ∂(weight·mse)/∂I = (2·weight/N²)·(Z−Z_t)·βZ(1−Z).
                let dz = self.resist.develop_grad_from_resist(&z);
                let gs = g_batch.entry_mut(b);
                let zs = z.as_slice();
                let ts = self.target.as_slice();
                let ds = dz.as_slice();
                for i in 0..gs.len() {
                    gs[i] = 2.0 * weight / npix * (zs[i] - ts[i]) * ds[i];
                }
            }
        }

        match (request.mask, request.source) {
            (false, false) => {}
            (true, false) => {
                // The fused mask-only adjoint: all corners in one call,
                // accumulated straight from the batch entries.
                // PANIC-OK: filled whenever the request above asked for gradients; absence is a §2 backend-contract bug.
                let g_batch = g_batch.as_ref().expect("gradients requested");
                let grads = self.backend.grad_mask_batch(source, &masks, g_batch)?;
                // PANIC-OK: slot allocated above exactly when the corresponding request flag is set; absence is an internal contract bug.
                let total = grad_mask_total.as_mut().expect("requested");
                for (b, (_, dose, _)) in passes.iter().enumerate() {
                    for (t, &g) in total.as_mut_slice().iter_mut().zip(grads.entry(b)) {
                        *t += dose * g;
                    }
                }
            }
            (_, true) => {
                // Source-gradient passes stay per-corner: `gradients` shares
                // A_σ between the two adjoints, which a cross-corner fusion
                // would have to recompute.
                // PANIC-OK: filled whenever the request above asked for gradients; absence is a §2 backend-contract bug.
                let g_batch = g_batch.as_ref().expect("gradients requested");
                for (b, (_, dose, _)) in passes.iter().enumerate() {
                    let m_d = RealField::from_vec(n, masks.entry(b).to_vec());
                    let g_i = RealField::from_vec(n, g_batch.entry(b).to_vec());
                    let intensity = RealField::from_vec(n, intensities.entry(b).to_vec());
                    if request.mask {
                        let (gm, gj) = self.backend.gradients(source, &m_d, &g_i, &intensity)?;
                        grad_mask_total
                            .as_mut()
                            // PANIC-OK: slot allocated above exactly when the corresponding request flag is set; absence is an internal contract bug.
                            .expect("requested")
                            .axpy(*dose, &gm);
                        // PANIC-OK: slot allocated above exactly when the corresponding request flag is set; absence is an internal contract bug.
                        let total = grad_source_total.as_mut().expect("requested");
                        for (t, g) in total.iter_mut().zip(&gj) {
                            *t += g;
                        }
                    } else {
                        let gj = self.backend.grad_source(source, &m_d, &g_i, &intensity)?;
                        // PANIC-OK: slot allocated above exactly when the corresponding request flag is set; absence is an internal contract bug.
                        let total = grad_source_total.as_mut().expect("requested");
                        for (t, g) in total.iter_mut().zip(&gj) {
                            *t += g;
                        }
                    }
                }
            }
        }

        // Mask regularization acts on M directly; fold it in before the
        // activation chain.
        let reg_value = regularizer::value(&self.settings.regularizers, mask);
        if let Some(gm) = grad_mask_total.as_mut() {
            if !self.settings.regularizers.is_none() {
                gm.axpy(1.0, &regularizer::grad(&self.settings.regularizers, mask));
            }
        }

        Ok((
            LossValue {
                total: self.settings.gamma * l2 + self.settings.eta * pvb + reg_value,
                l2,
                pvb,
            },
            grad_mask_total,
            grad_source_total,
        ))
    }

    /// Evaluates the loss at an explicit illumination `source` — the
    /// backend-generic entry point (fixed-source backends image through
    /// their frozen source regardless; pass that same source for a
    /// consistent objective).
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn loss_at(&self, source: &Source, theta_m: &RealField) -> Result<LossValue, LithoError> {
        let mask = self.mask(theta_m);
        Ok(self.eval_inner(source, &mask, GradRequest::NONE)?.0)
    }

    /// Evaluates the loss and `∂L/∂θ_M` at an explicit illumination — the
    /// backend-generic mask-gradient path (works on every backend;
    /// source gradients additionally need
    /// [`ImagingBackend::supports_grad_source`]).
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn eval_mask_at(
        &self,
        source: &Source,
        theta_m: &RealField,
    ) -> Result<(LossValue, RealField), LithoError> {
        let mask = self.mask(theta_m);
        let (loss, gm, _) = self.eval_inner(source, &mask, GradRequest::MASK)?;
        let grad_theta_m = gm
            // PANIC-OK: the GradRequest above sets the mask flag; a backend returning None would violate the §2 backend contract (a bug, not input).
            .expect("mask gradient requested")
            .hadamard(&self.settings.activation.mask_grad(&mask));
        Ok((loss, grad_theta_m))
    }
}

impl MoProblem<AbbeImager> {
    /// Creates a problem for `target` under `optical` and `settings`,
    /// building the Abbe engine (and its shifted-pupil cache) internally.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] if the target does not match the mask
    /// grid.
    pub fn new(
        optical: OpticalConfig,
        settings: SmoSettings,
        target: RealField,
    ) -> Result<Self, LithoError> {
        let abbe = AbbeImager::new(&optical)?.with_threads(settings.threads);
        MoProblem::from_backend(abbe, settings, target)
    }

    /// Like [`SmoProblem::new`] but over an already-built shared
    /// [`ImagingCore`]: skips the shifted-pupil evaluation entirely, making
    /// problem construction cheap. Sweeps building one problem per (method,
    /// clip) cell use this so every cell shares the same caches.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Shape`] if the target does not match the core's
    /// mask grid.
    pub fn with_core(
        core: Arc<ImagingCore>,
        settings: SmoSettings,
        target: RealField,
    ) -> Result<Self, LithoError> {
        let abbe = AbbeImager::from_core(core).with_threads(settings.threads);
        MoProblem::from_backend(abbe, settings, target)
    }

    /// The underlying Abbe engine (exposed for metrics and harnesses).
    #[inline]
    pub fn abbe(&self) -> &AbbeImager {
        &self.backend
    }

    /// Initial source parameters from a template (Table 1).
    pub fn init_theta_j(&self, shape: SourceShape) -> Vec<f64> {
        self.settings.activation.init_theta_j(self.optical(), shape)
    }

    /// Activated source `J = sigmoid(α_j θ_J)`.
    pub fn source(&self, theta_j: &[f64]) -> Source {
        Source::from_weights(
            self.optical(),
            self.settings.activation.source_weights(theta_j),
        )
    }

    /// Nominal-dose resist image for the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn resist_nominal(
        &self,
        theta_j: &[f64],
        theta_m: &RealField,
    ) -> Result<RealField, LithoError> {
        let source = self.source(theta_j);
        let mask = self.mask(theta_m);
        Ok(self
            .resist
            .develop(&self.backend.intensity(&source, &mask)?))
    }

    /// Evaluates `L_smo(θ_J, θ_M)` (Eq. 9).
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn loss(&self, theta_j: &[f64], theta_m: &RealField) -> Result<LossValue, LithoError> {
        self.loss_at(&self.source(theta_j), theta_m)
    }

    /// Evaluates the loss and the requested parameter gradients.
    ///
    /// The full chain per dose pass `d` is
    /// `θ → (J, M) → M_d = d·M → I → Z → mse`, with
    /// `G_I = (2w/N²)·(Z − Z_t)·β Z(1−Z)` fed into the backend adjoints and
    /// the Table 1 activation derivatives applied last.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn eval(
        &self,
        theta_j: &[f64],
        theta_m: &RealField,
        request: GradRequest,
    ) -> Result<SmoEval, LithoError> {
        let act = self.settings.activation;
        let source = self.source(theta_j);
        let mask = self.mask(theta_m);
        let (loss, gm, gj) = self.eval_inner(&source, &mask, request)?;

        // Chain through the Table 1 activations.
        let grad_theta_m = gm.map(|g| g.hadamard(&act.mask_grad(&mask)));
        let grad_theta_j = gj.map(|g| {
            let dj = act.source_grad_full(theta_j, source.weights());
            g.iter().zip(&dj).map(|(g, d)| g * d).collect()
        });

        Ok(SmoEval {
            loss,
            grad_theta_m,
            grad_theta_j,
        })
    }
}

impl MoProblem<HopkinsImager> {
    /// Builds the problem, paying the TCC + SOCS cost for `source` with
    /// truncation rank `q`.
    ///
    /// # Errors
    ///
    /// Propagates TCC/eigensolver and shape failures.
    pub fn new(
        optical: OpticalConfig,
        settings: SmoSettings,
        target: RealField,
        source: &Source,
        q: usize,
    ) -> Result<Self, LithoError> {
        if target.dim() != optical.mask_dim() {
            return Err(LithoError::Shape(format!(
                "target is {}×{0}, config expects {1}×{1}",
                target.dim(),
                optical.mask_dim()
            )));
        }
        let hopkins = HopkinsImager::new(&optical, source, q)?;
        MoProblem::from_backend(hopkins, settings, target)
    }

    /// Like [`HopkinsMoProblem::new`] but building the TCC against a shared
    /// [`ImagingCore`], so the shifted pupils feeding the TCC come from the
    /// core's precomputed table instead of being re-evaluated per build.
    ///
    /// # Errors
    ///
    /// Propagates TCC/eigensolver and shape failures.
    pub fn with_core(
        core: &ImagingCore,
        settings: SmoSettings,
        target: RealField,
        source: &Source,
        q: usize,
    ) -> Result<Self, LithoError> {
        if target.dim() != core.config().mask_dim() {
            return Err(LithoError::Shape(format!(
                "target is {}×{0}, config expects {1}×{1}",
                target.dim(),
                core.config().mask_dim()
            )));
        }
        let hopkins = HopkinsImager::with_core(core, source, q)?;
        MoProblem::from_backend(hopkins, settings, target)
    }

    /// The underlying Hopkins engine.
    #[inline]
    pub fn hopkins(&self) -> &HopkinsImager {
        &self.backend
    }

    /// Evaluates loss and `∂L/∂θ_M` against the frozen source.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn eval(&self, theta_m: &RealField) -> Result<(LossValue, RealField), LithoError> {
        self.eval_mask_at(self.backend.source(), theta_m)
    }

    /// Loss only.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures.
    pub fn loss(&self, theta_m: &RealField) -> Result<LossValue, LithoError> {
        self.loss_at(self.backend.source(), theta_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> SmoProblem {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        SmoProblem::new(cfg, SmoSettings::default(), target).unwrap()
    }

    fn annular() -> SourceShape {
        SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        }
    }

    #[test]
    fn loss_is_finite_positive_at_init() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let loss = p.loss(&tj, &tm).unwrap();
        assert!(loss.total.is_finite());
        assert!(loss.total > 0.0);
        assert!(loss.l2 >= 0.0 && loss.pvb >= 0.0);
        assert!((loss.total - (1000.0 * loss.l2 + 3000.0 * loss.pvb)).abs() < 1e-9 * loss.total);
    }

    #[test]
    fn eval_loss_matches_loss() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let l = p.loss(&tj, &tm).unwrap();
        let e = p.eval(&tj, &tm, GradRequest::BOTH).unwrap();
        assert!((l.total - e.loss.total).abs() < 1e-12 * l.total.max(1.0));
    }

    #[test]
    fn theta_m_gradient_matches_finite_difference() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let e = p.eval(&tj, &tm, GradRequest::MASK).unwrap();
        let gm = e.grad_theta_m.unwrap();
        let eps = 1e-4;
        let n = tm.dim();
        for &(r, c) in &[(32usize, 32usize), (24, 20), (10, 10), (39, 43)] {
            let mut up = tm.clone();
            up[(r, c)] += eps;
            let mut dn = tm.clone();
            dn[(r, c)] -= eps;
            let lu = p.loss(&tj, &up).unwrap().total;
            let ld = p.loss(&tj, &dn).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
                "({r},{c}) of {n}: numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
    }

    #[test]
    fn theta_j_gradient_matches_finite_difference() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let e = p.eval(&tj, &tm, GradRequest::SOURCE).unwrap();
        let gj = e.grad_theta_j.unwrap();
        let eps = 1e-4;
        let nj = p.optical().source_dim();
        for &idx in &[0usize, nj * nj / 2, nj + 2, nj * nj - 1] {
            let mut up = tj.clone();
            up[idx] += eps;
            let mut dn = tj.clone();
            dn[idx] -= eps;
            let lu = p.loss(&up, &tm).unwrap().total;
            let ld = p.loss(&dn, &tm).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gj[idx]).abs() < 1e-6 + 1e-3 * numeric.abs(),
                "τ={idx}: numeric {numeric} vs analytic {}",
                gj[idx]
            );
        }
    }

    #[test]
    fn gradient_is_a_descent_direction() {
        let p = small_problem();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let e = p.eval(&tj, &tm, GradRequest::BOTH).unwrap();
        let gm = e.grad_theta_m.unwrap();
        let gj = e.grad_theta_j.unwrap();
        let step = 0.05;
        let mut tm2 = tm.clone();
        tm2.axpy(-step, &gm);
        let tj2: Vec<f64> = tj.iter().zip(&gj).map(|(t, g)| t - step * g).collect();
        let l0 = e.loss.total;
        let l1 = p.loss(&tj2, &tm2).unwrap().total;
        assert!(l1 < l0, "descent failed: {l0} → {l1}");
    }

    #[test]
    fn without_pvb_disables_corner_passes() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::zeros(cfg.mask_dim());
        let p = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap();
        let tm = p.init_theta_m();
        let tj = p.init_theta_j(annular());
        let loss = p.loss(&tj, &tm).unwrap();
        assert_eq!(loss.pvb, 0.0);
    }

    #[test]
    fn target_shape_mismatch_is_error() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::zeros(16);
        assert!(SmoProblem::new(cfg, SmoSettings::default(), target).is_err());
    }

    #[test]
    fn source_gradient_through_hopkins_backend_is_unsupported() {
        // The generic path surfaces the capability gap as a typed error
        // instead of silently returning zeros.
        let cfg = OpticalConfig::test_small();
        let target = RealField::zeros(cfg.mask_dim());
        let source = Source::from_shape(&cfg, annular());
        let p = HopkinsMoProblem::new(cfg, SmoSettings::default(), target, &source, 8).unwrap();
        assert!(!p.backend().supports_grad_source());
        let tm = p.init_theta_m();
        let mask = p.mask(&tm);
        let err = p
            .eval_inner(&source, &mask, GradRequest::SOURCE)
            .unwrap_err();
        assert!(matches!(err, LithoError::Unsupported(_)));
    }

    #[test]
    fn regularized_theta_m_gradient_matches_finite_difference() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let mut settings = SmoSettings::default().without_pvb();
        settings.regularizers = Regularizers {
            discreteness: 5.0,
            tv: 3.0,
        };
        let p = SmoProblem::new(cfg, settings, target).unwrap();
        let tj = p.init_theta_j(annular());
        // A slightly smoothed init probes the regularizers off the rails.
        let tm = p.init_theta_m().map(|t| 0.3 * t);
        let e = p.eval(&tj, &tm, GradRequest::MASK).unwrap();
        let gm = e.grad_theta_m.unwrap();
        let eps = 1e-4;
        for &(r, c) in &[(32usize, 32usize), (24, 20), (10, 10)] {
            let mut up = tm.clone();
            up[(r, c)] += eps;
            let mut dn = tm.clone();
            dn[(r, c)] -= eps;
            let lu = p.loss(&tj, &up).unwrap().total;
            let ld = p.loss(&tj, &dn).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
        // Regularizers contribute to the loss value too.
        let plain = {
            let cfg = OpticalConfig::test_small();
            let target = p.target().clone();
            SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap()
        };
        assert!(p.loss(&tj, &tm).unwrap().total > plain.loss(&tj, &tm).unwrap().total);
    }

    #[test]
    fn hopkins_mo_gradient_matches_finite_difference() {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let source = Source::from_shape(&cfg, annular());
        let p = HopkinsMoProblem::new(cfg, SmoSettings::default(), target, &source, 12).unwrap();
        let tm = p.init_theta_m();
        let (_, gm) = p.eval(&tm).unwrap();
        let eps = 1e-4;
        for &(r, c) in &[(32usize, 32usize), (24, 20), (5, 50)] {
            let mut up = tm.clone();
            up[(r, c)] += eps;
            let mut dn = tm.clone();
            dn[(r, c)] -= eps;
            let lu = p.loss(&up).unwrap().total;
            let ld = p.loss(&dn).unwrap().total;
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - gm[(r, c)]).abs() < 1e-5 + 1e-3 * numeric.abs(),
                "({r},{c}): numeric {numeric} vs analytic {}",
                gm[(r, c)]
            );
        }
    }
}
