//! # bismo-core
//!
//! The primary contribution of *"Efficient Bilevel Source Mask
//! Optimization"* (DAC 2024): a unified, differentiable Abbe-based SMO
//! objective and the step-based optimization drivers built on it.
//!
//! * [`SmoProblem`] — the γ·L2 + η·PVB objective (Eq. 7–10) with analytic
//!   gradients for both parameter blocks;
//! * [`Solver`] / [`Session`] / [`SolverRegistry`] — the step-based driver
//!   API (DESIGN.md §8): every method of the paper is a [`Solver`] behind a
//!   stable name, configured by one layered [`SolverConfig`], driven by a
//!   [`Session`] that owns the parameters, the [`ConvergenceTrace`], the
//!   stop rule, wall-clock budgets and per-step observers;
//! * [`AmSolver`] — the alternating-minimization baseline (Algorithm 1), in
//!   Abbe–Abbe and Abbe–Hopkins hybrid flavors;
//! * [`BismoSolver`] — bilevel SMO (Algorithm 2) with the FD,
//!   Neumann-series and conjugate-gradient hypergradients (Eq. 13/16/18);
//! * [`AbbeMoSolver`] / [`HopkinsProxySolver`] — mask-only baselines;
//! * [`measure`] — the L2/PVB/EPE metrics of §2.2.
//!
//! The historical `run_*` drivers remain as deprecated shims over the
//! session API; they produce bit-identical results (enforced by
//! `tests/solver_golden.rs`).
//!
//! ## Examples
//!
//! ```
//! use bismo_core::{Session, SessionStatus, SolverConfig, SolverRegistry, SmoProblem, SmoSettings};
//! use bismo_optics::{OpticalConfig, RealField};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = OpticalConfig::test_small();
//! let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
//!     if (24..40).contains(&r) && (20..44).contains(&c) { 1.0 } else { 0.0 }
//! });
//! let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target)?;
//!
//! // Every method is one registry name away; the config's sections carry
//! // the per-family knobs.
//! let mut config = SolverConfig::default();
//! config.bismo.outer_steps = 2;
//! let mut session = SolverRegistry::builtin().session("BiSMO-FD", &problem, &config)?;
//! session.run()?;
//! assert_eq!(session.status(), SessionStatus::Exhausted);
//! assert_eq!(session.trace().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amsmo;
mod bismo;
mod metrics;
mod mo;
mod multigrid;
mod params;
mod problem;
mod registry;
mod regularizer;
mod session;
mod solver;
mod trace;

pub use amsmo::{AmSmoConfig, AmSolver, MoModel, SmoOutcome};
pub use bismo::{BismoConfig, BismoSolver, HypergradMethod};
pub use metrics::{
    epe_violations, l2_area_nm2, measure, measure_batch, xor_area_nm2, EpeSpec, MetricSet,
};
pub use mo::{run_hopkins_mo, AbbeMoSolver, HopkinsProxySolver, MoConfig, MoOutcome};
pub use multigrid::MultigridSolver;
pub use params::{Activation, SourceActivationKind};
pub use problem::{
    GradRequest, HopkinsMoProblem, LossValue, MoProblem, SmoEval, SmoProblem, SmoSettings,
};
pub use registry::{SolverRegistry, SolverSpec};
pub use regularizer::{discreteness_grad, discreteness_value, tv_grad, tv_value, Regularizers};
pub use session::{Control, Session, SessionStatus, StepEvent};
pub use solver::{
    AmSection, BismoSection, MgSection, MoSection, Solver, SolverConfig, SolverState, StepOutcome,
    StopReason,
};
pub use trace::{ConvergenceTrace, StepRecord, StopRule};

// The deprecated shims stay exported so downstream code migrates gradually;
// the allow keeps this crate's own re-export lines clean under
// `-D warnings`.
#[allow(deprecated)]
pub use amsmo::run_am_smo;
#[allow(deprecated)]
pub use bismo::run_bismo;
#[allow(deprecated)]
pub use mo::{run_abbe_mo, run_milt_proxy, run_nilt_proxy};
