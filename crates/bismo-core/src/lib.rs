//! # bismo-core
//!
//! The primary contribution of *"Efficient Bilevel Source Mask
//! Optimization"* (DAC 2024): a unified, differentiable Abbe-based SMO
//! objective and the bilevel optimization drivers built on it.
//!
//! * [`SmoProblem`] — the γ·L2 + η·PVB objective (Eq. 7–10) with analytic
//!   gradients for both parameter blocks;
//! * [`run_am_smo`] — the alternating-minimization baseline (Algorithm 1),
//!   in Abbe–Abbe and Abbe–Hopkins hybrid flavors;
//! * [`run_bismo`] — bilevel SMO (Algorithm 2) with the FD, Neumann-series
//!   and conjugate-gradient hypergradients (Eq. 13/16/18);
//! * [`run_abbe_mo`] / [`run_hopkins_mo`] and the NILT/MILT proxies —
//!   mask-only baselines;
//! * [`measure`] — the L2/PVB/EPE metrics of §2.2.
//!
//! ## Examples
//!
//! ```
//! use bismo_core::{run_bismo, BismoConfig, HypergradMethod, SmoProblem, SmoSettings};
//! use bismo_optics::{OpticalConfig, RealField, SourceShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = OpticalConfig::test_small();
//! let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
//!     if (24..40).contains(&r) && (20..44).contains(&c) { 1.0 } else { 0.0 }
//! });
//! let problem = SmoProblem::new(cfg.clone(), SmoSettings::default().without_pvb(), target)?;
//! let theta_j = problem.init_theta_j(SourceShape::Annular {
//!     sigma_in: cfg.sigma_in(),
//!     sigma_out: cfg.sigma_out(),
//! });
//! let theta_m = problem.init_theta_m();
//! let out = run_bismo(&problem, &theta_j, &theta_m, BismoConfig {
//!     outer_steps: 2,
//!     method: HypergradMethod::FiniteDiff,
//!     ..BismoConfig::default()
//! })?;
//! assert_eq!(out.trace.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amsmo;
mod bismo;
mod metrics;
mod mo;
mod params;
mod problem;
mod regularizer;
mod trace;

pub use amsmo::{run_am_smo, AmSmoConfig, MoModel, SmoOutcome};
pub use bismo::{run_bismo, BismoConfig, HypergradMethod};
pub use metrics::{epe_violations, l2_area_nm2, measure, xor_area_nm2, EpeSpec, MetricSet};
pub use mo::{run_abbe_mo, run_hopkins_mo, run_milt_proxy, run_nilt_proxy, MoConfig, MoOutcome};
pub use params::{Activation, SourceActivationKind};
pub use problem::{
    GradRequest, HopkinsMoProblem, LossValue, MoProblem, SmoEval, SmoProblem, SmoSettings,
};
pub use regularizer::{discreteness_grad, discreteness_value, tv_grad, tv_value, Regularizers};
pub use trace::{ConvergenceTrace, StepRecord, StopRule};
