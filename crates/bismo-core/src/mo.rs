//! Mask-only optimization: the [`AbbeMoSolver`] (ours, paper §4.1) and the
//! [`HopkinsProxySolver`] standing in for the NILT [7] and DAC23-MILT [10]
//! baselines, all as step-based [`Solver`] impls (DESIGN.md §8).
//!
//! The proxies are **substitutions** (DESIGN.md §3): the published baselines
//! are a neural ILT and a GPU multi-level ILT, but both are Hopkins/SOCS
//! mask-only optimizers at heart. The NILT proxy keeps a coarse truncation
//! and no process-window term (printability-focused); the MILT proxy keeps
//! a richer truncation, the PVB term and a two-stage step-size schedule
//! standing in for the multi-level refinement.
//!
//! All three drivers reduce to one private [`MaskStepper`]: one `step` =
//! evaluate → record → plateau check → optimizer update, the exact loop
//! body of the historical `run_*` functions. The deprecated shims at the
//! bottom drive the same stepper, so legacy and session paths cannot
//! diverge.

use bismo_litho::LithoError;
use bismo_opt::{Optimizer, OptimizerKind};
use bismo_optics::{ImagingCore, RealField, Source};

use crate::problem::{GradRequest, HopkinsMoProblem, LossValue, SmoProblem, SmoSettings};
use crate::solver::{Solver, SolverConfig, SolverState, StepOutcome, StopReason};
use crate::trace::{ConvergenceTrace, StopRule};

/// SOCS truncation of the NILT proxy (coarse — printability-focused).
pub const NILT_Q: usize = 6;
/// SOCS truncation of the DAC23-MILT proxy (the paper's Q = 24).
pub const MILT_Q: usize = 24;

/// Result of a mask-only run.
#[derive(Debug, Clone)]
pub struct MoOutcome {
    /// Final mask parameters.
    pub theta_m: RealField,
    /// Loss recorded before every update.
    pub trace: ConvergenceTrace,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
}

/// Configuration for a mask-only run — the legacy input type of the
/// deprecated `run_*` shims; new code sets [`SolverConfig::lr`],
/// [`SolverConfig::kind_m`], [`SolverConfig::stop`] and the
/// [`crate::MoSection`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoConfig {
    /// Maximum number of gradient updates.
    pub steps: usize,
    /// Step size ξ_M.
    pub lr: f64,
    /// Optimizer family.
    pub kind: OptimizerKind,
    /// Optional plateau-based early stopping.
    pub stop: Option<StopRule>,
}

impl Default for MoConfig {
    fn default() -> Self {
        MoConfig {
            steps: 100,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            stop: None,
        }
    }
}

impl From<crate::amsmo::SmoOutcome> for MoOutcome {
    /// Projects a session outcome onto the mask-only result type (drops the
    /// untouched θ_J).
    fn from(out: crate::amsmo::SmoOutcome) -> MoOutcome {
        MoOutcome {
            theta_m: out.theta_m,
            trace: out.trace,
            wall_s: out.wall_s,
        }
    }
}

impl MoConfig {
    /// Lifts the legacy knobs into the layered config (shim plumbing).
    fn to_solver_config(self) -> SolverConfig {
        let mut cfg = SolverConfig {
            lr: self.lr,
            kind_m: self.kind,
            stop: self.stop,
            ..SolverConfig::default()
        };
        cfg.mo.steps = self.steps;
        cfg
    }
}

/// The shared mask-only stepping core: one call performs exactly the work
/// between two trace records of the historical drivers.
struct MaskStepper {
    opt: Box<dyn Optimizer + Send>,
    steps: usize,
    taken: usize,
    stop: Option<StopRule>,
    /// Step index at which the learning rate halves (the MILT proxy's
    /// two-level refinement schedule).
    halve_at: Option<usize>,
    /// Terminal latch: once `Done` is returned, every further call returns
    /// the same reason without touching the state (the `StepOutcome`
    /// contract).
    finished: Option<StopReason>,
}

impl MaskStepper {
    fn new(
        kind: OptimizerKind,
        lr: f64,
        len: usize,
        steps: usize,
        stop: Option<StopRule>,
        halve_at: Option<usize>,
    ) -> MaskStepper {
        MaskStepper {
            opt: kind.build(lr, len),
            steps,
            taken: 0,
            stop,
            halve_at,
            finished: None,
        }
    }

    /// `eval` receives `(θ_J, θ_M)` and returns the loss and `∂L/∂θ_M`.
    fn step<E>(&mut self, state: &mut SolverState, eval: E) -> Result<StepOutcome, LithoError>
    where
        E: FnOnce(&[f64], &RealField) -> Result<(LossValue, RealField), LithoError>,
    {
        if let Some(reason) = self.finished {
            return Ok(StepOutcome::Done(reason));
        }
        if self.taken >= self.steps {
            self.finished = Some(StopReason::Exhausted);
            return Ok(StepOutcome::Done(StopReason::Exhausted));
        }
        if self.halve_at == Some(self.taken) {
            let lr = self.opt.learning_rate() / 2.0;
            self.opt.set_learning_rate(lr);
        }
        let (loss, grad) = eval(&state.theta_j, &state.theta_m)?;
        state.record(loss);
        self.taken += 1;
        if self
            .stop
            .is_some_and(|rule| rule.plateaued(state.trace.records()))
        {
            self.finished = Some(StopReason::Converged);
            return Ok(StepOutcome::Done(StopReason::Converged));
        }
        self.opt.step(state.theta_m.as_mut_slice(), grad.as_slice());
        Ok(StepOutcome::Running)
    }
}

/// Abbe-model mask-only optimization with the source frozen at the
/// session's θ_J (our Abbe-MO column in Tables 3/4).
pub struct AbbeMoSolver {
    stepper: MaskStepper,
}

impl AbbeMoSolver {
    /// Builds the solver from the shared knobs and [`crate::MoSection`] of
    /// `config`.
    pub fn new(problem: &SmoProblem, config: &SolverConfig) -> AbbeMoSolver {
        let len = problem.optical().mask_dim() * problem.optical().mask_dim();
        AbbeMoSolver {
            stepper: MaskStepper::new(
                config.kind_m,
                config.lr,
                len,
                config.mo.steps,
                config.stop,
                None,
            ),
        }
    }
}

impl Solver for AbbeMoSolver {
    fn name(&self) -> &'static str {
        "Abbe-MO"
    }

    fn step(
        &mut self,
        problem: &SmoProblem,
        state: &mut SolverState,
    ) -> Result<StepOutcome, LithoError> {
        self.stepper.step(state, |theta_j, theta_m| {
            let eval = problem.eval(theta_j, theta_m, GradRequest::MASK)?;
            Ok((
                eval.loss,
                // PANIC-OK: the GradRequest above sets the mask flag; a backend returning None would violate the §2 backend contract (a bug, not input).
                eval.grad_theta_m.expect("mask gradient requested"),
            ))
        })
    }
}

/// Hopkins-model mask-only proxy (NILT / DAC23-MILT).
///
/// The Hopkins problem is built lazily at the first step — against the host
/// problem's shared [`ImagingCore`] and the source activated from the
/// session's θ_J — so construction through the registry stays cheap and
/// infallible, and the TCC build reuses the sweep-wide shifted-pupil table.
pub struct HopkinsProxySolver {
    name: &'static str,
    q: usize,
    strip_pvb: bool,
    hopkins: Option<HopkinsMoProblem>,
    stepper: MaskStepper,
}

impl HopkinsProxySolver {
    fn with_params(
        problem: &SmoProblem,
        config: &SolverConfig,
        name: &'static str,
        q: usize,
        strip_pvb: bool,
        schedule: bool,
    ) -> HopkinsProxySolver {
        let len = problem.optical().mask_dim() * problem.optical().mask_dim();
        HopkinsProxySolver {
            name,
            q,
            strip_pvb,
            hopkins: None,
            stepper: MaskStepper::new(
                config.kind_m,
                config.lr,
                len,
                config.mo.steps,
                config.stop,
                schedule.then_some(config.mo.steps / 2),
            ),
        }
    }

    /// NILT [7] proxy: coarse truncation (Q = 6), no process-window term.
    pub fn nilt(problem: &SmoProblem, config: &SolverConfig) -> HopkinsProxySolver {
        HopkinsProxySolver::with_params(problem, config, "NILT", NILT_Q, true, false)
    }

    /// DAC23-MILT [10] proxy: Q = 24, PVB-aware objective, two-stage
    /// step-size schedule standing in for the multi-level refinement.
    pub fn milt(problem: &SmoProblem, config: &SolverConfig) -> HopkinsProxySolver {
        HopkinsProxySolver::with_params(problem, config, "DAC23-MILT", MILT_Q, false, true)
    }
}

impl Solver for HopkinsProxySolver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn step(
        &mut self,
        problem: &SmoProblem,
        state: &mut SolverState,
    ) -> Result<StepOutcome, LithoError> {
        if self.hopkins.is_none() {
            let source = problem.source(&state.theta_j);
            let settings = if self.strip_pvb {
                problem.settings().clone().without_pvb()
            } else {
                problem.settings().clone()
            };
            self.hopkins = Some(HopkinsMoProblem::with_core(
                problem.abbe().core(),
                settings,
                problem.target().clone(),
                &source,
                self.q,
            )?);
        }
        // PANIC-OK: populated by the lazy build a few lines above in this same call.
        let hopkins = self.hopkins.as_ref().expect("built above");
        self.stepper.step(state, |_, theta_m| hopkins.eval(theta_m))
    }
}

/// Runs Hopkins-model mask-only optimization (generic SOCS ILT driver over
/// an already-built [`HopkinsMoProblem`]) — the low-level loop the proxy
/// shims and the hybrid baselines build on. Prefer the session API for the
/// named methods.
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_hopkins_mo(
    problem: &HopkinsMoProblem,
    theta_m0: &RealField,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    hopkins_mo_loop(problem, theta_m0, cfg, None)
}

/// The shared Hopkins loop: a local [`SolverState`] driven to completion by
/// a [`MaskStepper`] (identical arithmetic to the session path).
fn hopkins_mo_loop(
    problem: &HopkinsMoProblem,
    theta_m0: &RealField,
    cfg: MoConfig,
    halve_at: Option<usize>,
) -> Result<MoOutcome, LithoError> {
    let mut state = SolverState::new(Vec::new(), theta_m0.clone());
    let mut stepper = MaskStepper::new(
        cfg.kind,
        cfg.lr,
        theta_m0.len(),
        cfg.steps,
        cfg.stop,
        halve_at,
    );
    while let StepOutcome::Running = stepper.step(&mut state, |_, theta_m| problem.eval(theta_m))? {
    }
    let wall_s = state.elapsed_s();
    Ok(MoOutcome {
        theta_m: state.theta_m,
        trace: state.trace,
        wall_s,
    })
}

/// Runs Abbe-model mask-only optimization with the source frozen at
/// `theta_j`.
///
/// # Errors
///
/// Propagates imaging failures.
#[deprecated(
    note = "drive the \"Abbe-MO\" method through `Session`/`SolverRegistry` (DESIGN.md §8)"
)]
pub fn run_abbe_mo(
    problem: &SmoProblem,
    theta_j: &[f64],
    theta_m0: &RealField,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let solver = AbbeMoSolver::new(problem, &cfg.to_solver_config());
    let mut session = crate::session::Session::with_init(
        problem,
        Box::new(solver),
        theta_j.to_vec(),
        theta_m0.clone(),
    )?;
    session.run()?;
    Ok(session.into_outcome().into())
}

/// NILT [7] proxy over an explicit core/target/source triple.
///
/// # Errors
///
/// Propagates imaging failures.
#[deprecated(note = "drive the \"NILT\" method through `Session`/`SolverRegistry` (DESIGN.md §8)")]
pub fn run_nilt_proxy(
    core: &ImagingCore,
    settings: &SmoSettings,
    target: &RealField,
    source: &Source,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let problem = HopkinsMoProblem::with_core(
        core,
        settings.clone().without_pvb(),
        target.clone(),
        source,
        NILT_Q,
    )?;
    hopkins_mo_loop(&problem, &problem.init_theta_m(), cfg, None)
}

/// DAC23-MILT [10] proxy over an explicit core/target/source triple.
///
/// # Errors
///
/// Propagates imaging failures.
#[deprecated(
    note = "drive the \"DAC23-MILT\" method through `Session`/`SolverRegistry` (DESIGN.md §8)"
)]
pub fn run_milt_proxy(
    core: &ImagingCore,
    settings: &SmoSettings,
    target: &RealField,
    source: &Source,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let problem =
        HopkinsMoProblem::with_core(core, settings.clone(), target.clone(), source, MILT_Q)?;
    hopkins_mo_loop(&problem, &problem.init_theta_m(), cfg, Some(cfg.steps / 2))
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use bismo_optics::{OpticalConfig, SourceShape};

    fn fixtures() -> (OpticalConfig, RealField, SourceShape) {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        (
            cfg,
            target,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        )
    }

    fn quick(steps: usize) -> MoConfig {
        MoConfig {
            steps,
            lr: 0.2,
            kind: OptimizerKind::Adam,
            stop: None,
        }
    }

    #[test]
    fn abbe_mo_reduces_loss() {
        let (cfg, target, shape) = fixtures();
        let problem = SmoProblem::new(cfg, SmoSettings::default(), target).unwrap();
        let tj = problem.init_theta_j(shape);
        let tm0 = problem.init_theta_m();
        let out = run_abbe_mo(&problem, &tj, &tm0, quick(8)).unwrap();
        assert_eq!(out.trace.len(), 8);
        let first = out.trace.records()[0].loss;
        let last = out.trace.final_loss().unwrap();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn hopkins_mo_reduces_loss() {
        let (cfg, target, shape) = fixtures();
        let source = Source::from_shape(&cfg, shape);
        let problem =
            HopkinsMoProblem::new(cfg, SmoSettings::default(), target, &source, 12).unwrap();
        let tm0 = problem.init_theta_m();
        let out = run_hopkins_mo(&problem, &tm0, quick(8)).unwrap();
        assert!(out.trace.final_loss().unwrap() < out.trace.records()[0].loss);
    }

    #[test]
    fn proxies_run_and_record() {
        let (cfg, target, shape) = fixtures();
        let source = Source::from_shape(&cfg, shape);
        let settings = SmoSettings::default();
        let core = ImagingCore::new(&cfg).unwrap();
        let nilt = run_nilt_proxy(&core, &settings, &target, &source, quick(4)).unwrap();
        assert_eq!(nilt.trace.len(), 4);
        // NILT proxy carries no PVB term.
        assert_eq!(nilt.trace.records()[0].pvb, 0.0);
        let milt = run_milt_proxy(&core, &settings, &target, &source, quick(4)).unwrap();
        assert_eq!(milt.trace.len(), 4);
        assert!(milt.trace.records()[0].pvb > 0.0);
    }

    #[test]
    fn proxy_solvers_build_lazily_and_match_their_names() {
        let (cfg, target, shape) = fixtures();
        let problem = SmoProblem::new(cfg, SmoSettings::default(), target).unwrap();
        let tj = problem.init_theta_j(shape);
        let tm = problem.init_theta_m();
        let mut solver_cfg = SolverConfig::default();
        solver_cfg.mo.steps = 2;
        for (make, name) in [
            (HopkinsProxySolver::nilt as fn(_, _) -> _, "NILT"),
            (HopkinsProxySolver::milt as fn(_, _) -> _, "DAC23-MILT"),
        ] {
            let solver: HopkinsProxySolver = make(&problem, &solver_cfg);
            assert_eq!(solver.name(), name);
            assert!(solver.hopkins.is_none(), "TCC must not build in the ctor");
            let mut session = crate::session::Session::with_init(
                &problem,
                Box::new(solver),
                tj.clone(),
                tm.clone(),
            )
            .unwrap();
            session.run().unwrap();
            assert_eq!(session.trace().len(), 2);
        }
    }

    #[test]
    fn done_converged_is_terminal_and_leaves_state_untouched() {
        // The StepOutcome contract: after Done, further step calls return
        // the same reason and do not touch the state. Regression for the
        // plateau path, which used to re-evaluate and append records.
        let (cfg, target, shape) = fixtures();
        let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap();
        let tj = problem.init_theta_j(shape);
        let tm = problem.init_theta_m();
        let mut solver_cfg = SolverConfig::default();
        solver_cfg.mo.steps = 30;
        // rel_tol = 1.0 plateaus as soon as two records exist.
        solver_cfg.stop = Some(StopRule {
            window: 1,
            rel_tol: 1.0,
        });
        let mut solver = AbbeMoSolver::new(&problem, &solver_cfg);
        let mut state = SolverState::new(tj, tm);
        assert_eq!(
            solver.step(&problem, &mut state).unwrap(),
            StepOutcome::Running
        );
        assert_eq!(
            solver.step(&problem, &mut state).unwrap(),
            StepOutcome::Done(StopReason::Converged)
        );
        let len = state.trace.len();
        let bits: Vec<u64> = state
            .theta_m
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        for _ in 0..2 {
            assert_eq!(
                solver.step(&problem, &mut state).unwrap(),
                StepOutcome::Done(StopReason::Converged)
            );
        }
        assert_eq!(state.trace.len(), len, "no records after Done");
        let after: Vec<u64> = state
            .theta_m
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(bits, after, "state must not move after Done");
    }

    #[test]
    fn wall_time_is_recorded() {
        let (cfg, target, shape) = fixtures();
        let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap();
        let tj = problem.init_theta_j(shape);
        let tm0 = problem.init_theta_m();
        let out = run_abbe_mo(&problem, &tj, &tm0, quick(2)).unwrap();
        assert!(out.wall_s > 0.0);
    }
}
