//! Mask-only optimization drivers: Abbe-MO (ours, paper §4.1) and the
//! Hopkins-model baseline proxies for NILT [7] and DAC23-MILT [10].
//!
//! The proxies are **substitutions** (DESIGN.md §3): the published baselines
//! are a neural ILT and a GPU multi-level ILT, but both are Hopkins/SOCS
//! mask-only optimizers at heart. `nilt_proxy` keeps a coarse truncation and
//! no process-window term (printability-focused); `milt_proxy` keeps a
//! richer truncation, the PVB term and a two-stage step-size schedule
//! standing in for the multi-level refinement.

use std::time::Instant;

use bismo_litho::LithoError;
use bismo_opt::OptimizerKind;
use bismo_optics::{ImagingCore, RealField, Source};

use crate::problem::{GradRequest, HopkinsMoProblem, SmoProblem, SmoSettings};
use crate::trace::{ConvergenceTrace, StepRecord, StopRule};

/// Result of a mask-only run.
#[derive(Debug, Clone)]
pub struct MoOutcome {
    /// Final mask parameters.
    pub theta_m: RealField,
    /// Loss recorded before every update.
    pub trace: ConvergenceTrace,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
}

/// Configuration for a mask-only run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoConfig {
    /// Maximum number of gradient updates.
    pub steps: usize,
    /// Step size ξ_M.
    pub lr: f64,
    /// Optimizer family.
    pub kind: OptimizerKind,
    /// Optional plateau-based early stopping.
    pub stop: Option<StopRule>,
}

impl Default for MoConfig {
    fn default() -> Self {
        MoConfig {
            steps: 100,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            stop: None,
        }
    }
}

/// Runs Abbe-model mask-only optimization with the source frozen at
/// `theta_j` (our Abbe-MO column in Tables 3/4).
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_abbe_mo(
    problem: &SmoProblem,
    theta_j: &[f64],
    theta_m0: &RealField,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let start = Instant::now();
    let mut theta_m = theta_m0.clone();
    let mut opt = cfg.kind.build(cfg.lr, theta_m.len());
    let mut trace = ConvergenceTrace::new();
    for step in 0..cfg.steps {
        let eval = problem.eval(theta_j, &theta_m, GradRequest::MASK)?;
        trace.push(StepRecord {
            step,
            loss: eval.loss.total,
            l2: eval.loss.l2,
            pvb: eval.loss.pvb,
            elapsed_s: start.elapsed().as_secs_f64(),
        });
        if cfg.stop.is_some_and(|rule| rule.plateaued(trace.records())) {
            break;
        }
        let grad = eval.grad_theta_m.expect("mask gradient requested");
        opt.step(theta_m.as_mut_slice(), grad.as_slice());
    }
    Ok(MoOutcome {
        theta_m,
        trace,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

/// Runs Hopkins-model mask-only optimization (generic SOCS ILT driver).
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_hopkins_mo(
    problem: &HopkinsMoProblem,
    theta_m0: &RealField,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let start = Instant::now();
    let mut theta_m = theta_m0.clone();
    let mut opt = cfg.kind.build(cfg.lr, theta_m.len());
    let mut trace = ConvergenceTrace::new();
    for step in 0..cfg.steps {
        let (loss, grad) = problem.eval(&theta_m)?;
        trace.push(StepRecord {
            step,
            loss: loss.total,
            l2: loss.l2,
            pvb: loss.pvb,
            elapsed_s: start.elapsed().as_secs_f64(),
        });
        if cfg.stop.is_some_and(|rule| rule.plateaued(trace.records())) {
            break;
        }
        opt.step(theta_m.as_mut_slice(), grad.as_slice());
    }
    Ok(MoOutcome {
        theta_m,
        trace,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

/// NILT [7] proxy: Hopkins ILT with coarse truncation (Q = 6) and no
/// process-window term. Takes a shared [`ImagingCore`] so the TCC build
/// reuses the precomputed shifted-pupil table (suite sweeps run this once
/// per clip).
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_nilt_proxy(
    core: &ImagingCore,
    settings: &SmoSettings,
    target: &RealField,
    source: &Source,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let proxy_settings = settings.clone().without_pvb();
    let problem = HopkinsMoProblem::with_core(core, proxy_settings, target.clone(), source, 6)?;
    let theta_m0 = problem.init_theta_m();
    run_hopkins_mo(&problem, &theta_m0, cfg)
}

/// DAC23-MILT [10] proxy: Hopkins ILT with the paper's Q = 24, PVB-aware
/// objective, and a two-stage step-size schedule standing in for the
/// multi-level refinement. Takes a shared [`ImagingCore`] like
/// [`run_nilt_proxy`].
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_milt_proxy(
    core: &ImagingCore,
    settings: &SmoSettings,
    target: &RealField,
    source: &Source,
    cfg: MoConfig,
) -> Result<MoOutcome, LithoError> {
    let problem = HopkinsMoProblem::with_core(core, settings.clone(), target.clone(), source, 24)?;
    let theta_m0 = problem.init_theta_m();
    let start = Instant::now();
    let mut theta_m = theta_m0.clone();
    let mut opt = cfg.kind.build(cfg.lr, theta_m.len());
    let mut trace = ConvergenceTrace::new();
    let coarse_steps = cfg.steps / 2;
    for step in 0..cfg.steps {
        if step == coarse_steps {
            // Refinement level: halve the step size.
            let lr = opt.learning_rate() / 2.0;
            opt.set_learning_rate(lr);
        }
        let (loss, grad) = problem.eval(&theta_m)?;
        trace.push(StepRecord {
            step,
            loss: loss.total,
            l2: loss.l2,
            pvb: loss.pvb,
            elapsed_s: start.elapsed().as_secs_f64(),
        });
        if cfg.stop.is_some_and(|rule| rule.plateaued(trace.records())) {
            break;
        }
        opt.step(theta_m.as_mut_slice(), grad.as_slice());
    }
    Ok(MoOutcome {
        theta_m,
        trace,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bismo_optics::{OpticalConfig, SourceShape};

    fn fixtures() -> (OpticalConfig, RealField, SourceShape) {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        (
            cfg,
            target,
            SourceShape::Annular {
                sigma_in: 0.63,
                sigma_out: 0.95,
            },
        )
    }

    fn quick(steps: usize) -> MoConfig {
        MoConfig {
            steps,
            lr: 0.2,
            kind: OptimizerKind::Adam,
            stop: None,
        }
    }

    #[test]
    fn abbe_mo_reduces_loss() {
        let (cfg, target, shape) = fixtures();
        let problem = SmoProblem::new(cfg, SmoSettings::default(), target).unwrap();
        let tj = problem.init_theta_j(shape);
        let tm0 = problem.init_theta_m();
        let out = run_abbe_mo(&problem, &tj, &tm0, quick(8)).unwrap();
        assert_eq!(out.trace.len(), 8);
        let first = out.trace.records()[0].loss;
        let last = out.trace.final_loss().unwrap();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn hopkins_mo_reduces_loss() {
        let (cfg, target, shape) = fixtures();
        let source = Source::from_shape(&cfg, shape);
        let problem =
            HopkinsMoProblem::new(cfg, SmoSettings::default(), target, &source, 12).unwrap();
        let tm0 = problem.init_theta_m();
        let out = run_hopkins_mo(&problem, &tm0, quick(8)).unwrap();
        assert!(out.trace.final_loss().unwrap() < out.trace.records()[0].loss);
    }

    #[test]
    fn proxies_run_and_record() {
        let (cfg, target, shape) = fixtures();
        let source = Source::from_shape(&cfg, shape);
        let settings = SmoSettings::default();
        let core = ImagingCore::new(&cfg).unwrap();
        let nilt = run_nilt_proxy(&core, &settings, &target, &source, quick(4)).unwrap();
        assert_eq!(nilt.trace.len(), 4);
        // NILT proxy carries no PVB term.
        assert_eq!(nilt.trace.records()[0].pvb, 0.0);
        let milt = run_milt_proxy(&core, &settings, &target, &source, quick(4)).unwrap();
        assert_eq!(milt.trace.len(), 4);
        assert!(milt.trace.records()[0].pvb > 0.0);
    }

    #[test]
    fn wall_time_is_recorded() {
        let (cfg, target, shape) = fixtures();
        let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap();
        let tj = problem.init_theta_j(shape);
        let tm0 = problem.init_theta_m();
        let out = run_abbe_mo(&problem, &tj, &tm0, quick(2)).unwrap();
        assert!(out.wall_s > 0.0);
    }
}
