//! Alternating-minimization SMO (paper Algorithm 1) — the baseline BiSMO is
//! measured against.
//!
//! AM-SMO alternates between source-only epochs (mask frozen) and mask-only
//! epochs (source frozen) for a fixed number of rounds. Two flavors are
//! implemented, matching the two published baselines:
//!
//! * **Abbe–Abbe** [12]: both phases run on the Abbe model;
//! * **Abbe–Hopkins hybrid** [13]: SO runs on Abbe (the only model that can
//!   produce source gradients), while each MO epoch rebuilds the TCC/SOCS
//!   decomposition for the just-updated source and optimizes the mask on
//!   Hopkins — the repeated TCC build is what makes the hybrid slow
//!   (paper §4.1 runtime discussion).

use std::time::Instant;

use bismo_litho::LithoError;
use bismo_opt::OptimizerKind;
use bismo_optics::RealField;

use crate::problem::{GradRequest, HopkinsMoProblem, SmoProblem};
use crate::trace::{ConvergenceTrace, StepRecord, StopRule};

/// Which imaging model the MO phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoModel {
    /// Abbe model for both phases (AM-SMO [12]).
    Abbe,
    /// Hopkins model with the given SOCS truncation for the MO phase
    /// (hybrid AM-SMO [13]); the TCC is rebuilt every round.
    Hopkins {
        /// SOCS truncation rank.
        q: usize,
    },
}

/// Configuration of an AM-SMO run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmSmoConfig {
    /// Number of alternating rounds `k`.
    pub rounds: usize,
    /// SO updates per round.
    pub so_steps: usize,
    /// MO updates per round.
    pub mo_steps: usize,
    /// Step size for both phases (paper: ξ = 0.1).
    pub lr: f64,
    /// Optimizer family for both phases.
    pub kind: OptimizerKind,
    /// MO-phase imaging model.
    pub mo_model: MoModel,
    /// Optional plateau-based early stopping (checked at round boundaries).
    pub stop: Option<StopRule>,
    /// Optional per-phase convergence rule implementing Algorithm 1's
    /// "while not converged" inner loops: each SO/MO epoch ends early when
    /// its own records plateau. `so_steps`/`mo_steps` then act as caps.
    pub phase_stop: Option<StopRule>,
}

impl Default for AmSmoConfig {
    fn default() -> Self {
        AmSmoConfig {
            rounds: 5,
            so_steps: 10,
            mo_steps: 10,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Abbe,
            stop: None,
            phase_stop: None,
        }
    }
}

/// Result of an SMO run (shared with the BiSMO drivers).
#[derive(Debug, Clone)]
pub struct SmoOutcome {
    /// Final source parameters.
    pub theta_j: Vec<f64>,
    /// Final mask parameters.
    pub theta_m: RealField,
    /// Loss recorded before every parameter update (either block).
    pub trace: ConvergenceTrace,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

/// Runs Algorithm 1.
///
/// The trace records `L_smo` before each update; for hybrid MO phases the
/// recorded loss is the Hopkins-model surrogate the phase actually descends
/// (the Abbe loss is recovered at the end of the round), which is what
/// produces the characteristic zigzag of the paper's Figure 3.
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_am_smo(
    problem: &SmoProblem,
    theta_j0: &[f64],
    theta_m0: &RealField,
    cfg: AmSmoConfig,
) -> Result<SmoOutcome, LithoError> {
    let start = Instant::now();
    let mut theta_j = theta_j0.to_vec();
    let mut theta_m = theta_m0.clone();
    let mut trace = ConvergenceTrace::new();
    let mut step = 0usize;
    let mut stopped = false;

    'rounds: for _round in 0..cfg.rounds {
        // SO epoch: mask frozen (Algorithm 1 line 3, "while not converged").
        let mut opt_j = cfg.kind.build(cfg.lr, theta_j.len());
        let phase_start = trace.len();
        for _ in 0..cfg.so_steps {
            let eval = problem.eval(&theta_j, &theta_m, GradRequest::SOURCE)?;
            trace.push(StepRecord {
                step,
                loss: eval.loss.total,
                l2: eval.loss.l2,
                pvb: eval.loss.pvb,
                elapsed_s: start.elapsed().as_secs_f64(),
            });
            step += 1;
            if cfg
                .phase_stop
                .is_some_and(|rule| rule.plateaued(&trace.records()[phase_start..]))
            {
                break;
            }
            let grad = eval.grad_theta_j.expect("source gradient requested");
            opt_j.step(&mut theta_j, &grad);
        }

        // MO epoch: source frozen (Algorithm 1 line 5).
        match cfg.mo_model {
            MoModel::Abbe => {
                let mut opt_m = cfg.kind.build(cfg.lr, theta_m.len());
                let phase_start = trace.len();
                for _ in 0..cfg.mo_steps {
                    let eval = problem.eval(&theta_j, &theta_m, GradRequest::MASK)?;
                    trace.push(StepRecord {
                        step,
                        loss: eval.loss.total,
                        l2: eval.loss.l2,
                        pvb: eval.loss.pvb,
                        elapsed_s: start.elapsed().as_secs_f64(),
                    });
                    step += 1;
                    if cfg
                        .phase_stop
                        .is_some_and(|rule| rule.plateaued(&trace.records()[phase_start..]))
                    {
                        break;
                    }
                    let grad = eval.grad_theta_m.expect("mask gradient requested");
                    opt_m.step(theta_m.as_mut_slice(), grad.as_slice());
                }
            }
            MoModel::Hopkins { q } => {
                // Rebuild the TCC for the current source — the hybrid's
                // per-round cost. The shifted pupils feeding the build come
                // from the Abbe problem's shared core, so only the Gram
                // matrix and eigendecomposition are paid per round.
                let source = problem.source(&theta_j);
                let hopkins = HopkinsMoProblem::with_core(
                    problem.abbe().core(),
                    problem.settings().clone(),
                    problem.target().clone(),
                    &source,
                    q,
                )?;
                let mut opt_m = cfg.kind.build(cfg.lr, theta_m.len());
                let phase_start = trace.len();
                for _ in 0..cfg.mo_steps {
                    let (loss, grad) = hopkins.eval(&theta_m)?;
                    trace.push(StepRecord {
                        step,
                        loss: loss.total,
                        l2: loss.l2,
                        pvb: loss.pvb,
                        elapsed_s: start.elapsed().as_secs_f64(),
                    });
                    step += 1;
                    if cfg
                        .phase_stop
                        .is_some_and(|rule| rule.plateaued(&trace.records()[phase_start..]))
                    {
                        break;
                    }
                    opt_m.step(theta_m.as_mut_slice(), grad.as_slice());
                }
            }
        }
        // Early stopping is only evaluated at round boundaries: inside a
        // round the trace zigzags by construction (Figure 3), which would
        // trip a plateau rule spuriously.
        if cfg.stop.is_some_and(|rule| rule.plateaued(trace.records())) {
            stopped = true;
            break 'rounds;
        }
    }

    let _ = stopped;
    Ok(SmoOutcome {
        theta_j,
        theta_m,
        trace,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SmoSettings;
    use bismo_optics::{OpticalConfig, SourceShape};

    fn fixtures() -> (SmoProblem, Vec<f64>, RealField) {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let problem = SmoProblem::new(cfg, SmoSettings::default(), target).unwrap();
        let tj = problem.init_theta_j(SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        });
        let tm = problem.init_theta_m();
        (problem, tj, tm)
    }

    #[test]
    fn abbe_abbe_reduces_loss_and_traces_all_steps() {
        let (problem, tj, tm) = fixtures();
        let cfg = AmSmoConfig {
            rounds: 2,
            so_steps: 4,
            mo_steps: 4,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Abbe,
            stop: None,
            phase_stop: None,
        };
        let out = run_am_smo(&problem, &tj, &tm, cfg).unwrap();
        assert_eq!(out.trace.len(), 2 * (4 + 4));
        // Compare true end-to-end loss (the per-step trace may zigzag — that
        // is the point of Figure 3).
        let l0 = problem.loss(&tj, &tm).unwrap().total;
        let l1 = problem.loss(&out.theta_j, &out.theta_m).unwrap().total;
        assert!(l1 < l0, "{l0} → {l1}");
    }

    #[test]
    fn hybrid_runs_and_improves_true_loss() {
        let (problem, tj, tm) = fixtures();
        let cfg = AmSmoConfig {
            rounds: 2,
            so_steps: 2,
            mo_steps: 2,
            lr: 0.2,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Hopkins { q: 12 },
            stop: None,
            phase_stop: None,
        };
        let l0 = problem.loss(&tj, &tm).unwrap().total;
        let out = run_am_smo(&problem, &tj, &tm, cfg).unwrap();
        let l1 = problem.loss(&out.theta_j, &out.theta_m).unwrap().total;
        assert!(l1 < l0, "hybrid failed to improve: {l0} → {l1}");
    }

    #[test]
    fn parameters_actually_move_in_both_blocks() {
        let (problem, tj, tm) = fixtures();
        let out = run_am_smo(
            &problem,
            &tj,
            &tm,
            AmSmoConfig {
                rounds: 1,
                so_steps: 2,
                mo_steps: 2,
                lr: 0.2,
                kind: OptimizerKind::Sgd,
                mo_model: MoModel::Abbe,
                stop: None,
                phase_stop: None,
            },
        )
        .unwrap();
        let dj: f64 = out
            .theta_j
            .iter()
            .zip(&tj)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let dm: f64 = out
            .theta_m
            .as_slice()
            .iter()
            .zip(tm.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dj > 0.0, "source parameters unchanged");
        assert!(dm > 0.0, "mask parameters unchanged");
    }
}
