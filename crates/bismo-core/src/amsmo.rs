//! Alternating-minimization SMO (paper Algorithm 1) — the baseline BiSMO is
//! measured against — as the step-based [`AmSolver`].
//!
//! AM-SMO alternates between source-only epochs (mask frozen) and mask-only
//! epochs (source frozen) for a fixed number of rounds. Two flavors are
//! implemented, matching the two published baselines:
//!
//! * **Abbe–Abbe** [12]: both phases run on the Abbe model;
//! * **Abbe–Hopkins hybrid** [13]: SO runs on Abbe (the only model that can
//!   produce source gradients), while each MO epoch rebuilds the TCC/SOCS
//!   decomposition for the just-updated source and optimizes the mask on
//!   Hopkins — the repeated TCC build is what makes the hybrid slow
//!   (paper §4.1 runtime discussion).
//!
//! The solver is an explicit phase machine: one [`Solver::step`] call
//! performs one inner source *or* mask update (one trace record), with
//! phase entry/exit, per-phase optimizer resets, the hybrid's TCC rebuild
//! and the round-boundary stop check happening between records — so a
//! session can pause anywhere and resume bit-identically.

use bismo_litho::LithoError;
use bismo_opt::{Optimizer, OptimizerKind};
use bismo_optics::RealField;

use crate::problem::{GradRequest, HopkinsMoProblem, SmoProblem};
use crate::session::Session;
use crate::solver::{Solver, SolverConfig, SolverState, StepOutcome, StopReason};
use crate::trace::{ConvergenceTrace, StopRule};

/// Which imaging model the MO phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoModel {
    /// Abbe model for both phases (AM-SMO [12]).
    Abbe,
    /// Hopkins model with the given SOCS truncation for the MO phase
    /// (hybrid AM-SMO [13]); the TCC is rebuilt every round.
    Hopkins {
        /// SOCS truncation rank.
        q: usize,
    },
}

/// Configuration of an AM-SMO run — the legacy input type of the deprecated
/// [`run_am_smo`] shim; new code sets the shared [`SolverConfig`] knobs and
/// its [`crate::AmSection`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmSmoConfig {
    /// Number of alternating rounds `k`.
    pub rounds: usize,
    /// SO updates per round.
    pub so_steps: usize,
    /// MO updates per round.
    pub mo_steps: usize,
    /// Step size for both phases (paper: ξ = 0.1).
    pub lr: f64,
    /// Optimizer family for both phases.
    pub kind: OptimizerKind,
    /// MO-phase imaging model.
    pub mo_model: MoModel,
    /// Optional plateau-based early stopping (checked at round boundaries).
    pub stop: Option<StopRule>,
    /// Optional per-phase convergence rule implementing Algorithm 1's
    /// "while not converged" inner loops: each SO/MO epoch ends early when
    /// its own records plateau. `so_steps`/`mo_steps` then act as caps.
    pub phase_stop: Option<StopRule>,
}

impl Default for AmSmoConfig {
    fn default() -> Self {
        AmSmoConfig {
            rounds: 5,
            so_steps: 10,
            mo_steps: 10,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Abbe,
            stop: None,
            phase_stop: None,
        }
    }
}

/// Result of an SMO run (shared with the BiSMO drivers and produced by
/// [`Session::into_outcome`]).
#[derive(Debug, Clone)]
pub struct SmoOutcome {
    /// Final source parameters.
    pub theta_j: Vec<f64>,
    /// Final mask parameters.
    pub theta_m: RealField,
    /// Loss recorded before every parameter update (either block).
    pub trace: ConvergenceTrace,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

/// Where the AM phase machine stands between two steps.
enum AmPos {
    /// About to start the current round's SO epoch (or to finish the run if
    /// the round budget is spent).
    RoundStart,
    /// Inside the SO epoch (mask frozen, Algorithm 1 line 3).
    So {
        opt: Box<dyn Optimizer + Send>,
        taken: usize,
        phase_start: usize,
    },
    /// Inside the MO epoch on the Abbe model (Algorithm 1 line 5).
    MoAbbe {
        opt: Box<dyn Optimizer + Send>,
        taken: usize,
        phase_start: usize,
    },
    /// Inside the MO epoch on a freshly-built Hopkins problem (hybrid).
    MoHopkins {
        hopkins: Box<HopkinsMoProblem>,
        opt: Box<dyn Optimizer + Send>,
        taken: usize,
        phase_start: usize,
    },
    /// The current round's MO epoch ended; check the round-boundary stop.
    RoundEnd,
    /// Terminal.
    Finished(StopReason),
}

/// Alternating-minimization SMO (Algorithm 1) as a step-based solver.
///
/// For hybrid MO phases the recorded loss is the Hopkins-model surrogate
/// the phase actually descends (the Abbe loss is recovered at the end of
/// the round), which is what produces the characteristic zigzag of the
/// paper's Figure 3. Early stopping is only evaluated at round boundaries:
/// inside a round the trace zigzags by construction, which would trip a
/// plateau rule spuriously.
pub struct AmSolver {
    rounds: usize,
    so_steps: usize,
    mo_steps: usize,
    lr: f64,
    kind_j: OptimizerKind,
    kind_m: OptimizerKind,
    mo_model: MoModel,
    stop: Option<StopRule>,
    phase_stop: Option<StopRule>,
    round: usize,
    pos: AmPos,
}

impl AmSolver {
    /// Builds the solver from the shared knobs and [`crate::AmSection`] of
    /// `config`, with the MO phase on `model`.
    pub fn new(_problem: &SmoProblem, model: MoModel, config: &SolverConfig) -> AmSolver {
        AmSolver {
            rounds: config.am.rounds,
            so_steps: config.am.so_steps,
            mo_steps: config.am.mo_steps,
            lr: config.lr,
            kind_j: config.kind_j,
            kind_m: config.kind_m,
            mo_model: model,
            stop: config.stop,
            phase_stop: config.am.phase_stop,
            round: 0,
            pos: AmPos::RoundStart,
        }
    }

    fn from_legacy(cfg: AmSmoConfig) -> AmSolver {
        AmSolver {
            rounds: cfg.rounds,
            so_steps: cfg.so_steps,
            mo_steps: cfg.mo_steps,
            lr: cfg.lr,
            kind_j: cfg.kind,
            kind_m: cfg.kind,
            mo_model: cfg.mo_model,
            stop: cfg.stop,
            phase_stop: cfg.phase_stop,
            round: 0,
            pos: AmPos::RoundStart,
        }
    }

    /// Enters the MO epoch: fresh optimizer, and for the hybrid the
    /// per-round TCC rebuild against the problem's shared core (only the
    /// Gram matrix and eigendecomposition are paid per round; the shifted
    /// pupils come from the core's table).
    fn mo_entry(&self, problem: &SmoProblem, state: &SolverState) -> Result<AmPos, LithoError> {
        let opt = self.kind_m.build(self.lr, state.theta_m.len());
        let phase_start = state.trace.len();
        Ok(match self.mo_model {
            MoModel::Abbe => AmPos::MoAbbe {
                opt,
                taken: 0,
                phase_start,
            },
            MoModel::Hopkins { q } => {
                let source = problem.source(&state.theta_j);
                let hopkins = HopkinsMoProblem::with_core(
                    problem.abbe().core(),
                    problem.settings().clone(),
                    problem.target().clone(),
                    &source,
                    q,
                )?;
                AmPos::MoHopkins {
                    hopkins: Box::new(hopkins),
                    opt,
                    taken: 0,
                    phase_start,
                }
            }
        })
    }

    fn phase_plateaued(&self, state: &SolverState, phase_start: usize) -> bool {
        self.phase_stop
            .is_some_and(|rule| rule.plateaued(&state.trace.records()[phase_start..]))
    }
}

impl Solver for AmSolver {
    fn name(&self) -> &'static str {
        match self.mo_model {
            MoModel::Abbe => "AM(A~A)",
            MoModel::Hopkins { .. } => "AM(A~H)",
        }
    }

    fn supports(&self, problem: &SmoProblem) -> bool {
        use bismo_litho::ImagingBackend as _;
        problem.backend().supports_grad_source()
    }

    fn step(
        &mut self,
        problem: &SmoProblem,
        state: &mut SolverState,
    ) -> Result<StepOutcome, LithoError> {
        loop {
            // Take ownership of the position; every arm either returns after
            // re-installing it or installs the next position and loops.
            match std::mem::replace(&mut self.pos, AmPos::RoundStart) {
                AmPos::RoundStart => {
                    if self.round >= self.rounds {
                        self.pos = AmPos::Finished(StopReason::Exhausted);
                        return Ok(StepOutcome::Done(StopReason::Exhausted));
                    }
                    self.pos = AmPos::So {
                        opt: self.kind_j.build(self.lr, state.theta_j.len()),
                        taken: 0,
                        phase_start: state.trace.len(),
                    };
                }
                AmPos::So {
                    mut opt,
                    taken,
                    phase_start,
                } => {
                    if taken >= self.so_steps {
                        self.pos = self.mo_entry(problem, state)?;
                        continue;
                    }
                    let eval = problem.eval(&state.theta_j, &state.theta_m, GradRequest::SOURCE)?;
                    state.record(eval.loss);
                    if self.phase_plateaued(state, phase_start) {
                        self.pos = self.mo_entry(problem, state)?;
                        return Ok(StepOutcome::Running);
                    }
                    // PANIC-OK: the GradRequest above sets the source flag; None would violate the §2 backend contract (a bug, not input).
                    let grad = eval.grad_theta_j.expect("source gradient requested");
                    opt.step(&mut state.theta_j, &grad);
                    self.pos = AmPos::So {
                        opt,
                        taken: taken + 1,
                        phase_start,
                    };
                    return Ok(StepOutcome::Running);
                }
                AmPos::MoAbbe {
                    mut opt,
                    taken,
                    phase_start,
                } => {
                    if taken >= self.mo_steps {
                        self.pos = AmPos::RoundEnd;
                        continue;
                    }
                    let eval = problem.eval(&state.theta_j, &state.theta_m, GradRequest::MASK)?;
                    state.record(eval.loss);
                    if self.phase_plateaued(state, phase_start) {
                        self.pos = AmPos::RoundEnd;
                        return Ok(StepOutcome::Running);
                    }
                    // PANIC-OK: the GradRequest above sets the mask flag; a backend returning None would violate the §2 backend contract (a bug, not input).
                    let grad = eval.grad_theta_m.expect("mask gradient requested");
                    opt.step(state.theta_m.as_mut_slice(), grad.as_slice());
                    self.pos = AmPos::MoAbbe {
                        opt,
                        taken: taken + 1,
                        phase_start,
                    };
                    return Ok(StepOutcome::Running);
                }
                AmPos::MoHopkins {
                    hopkins,
                    mut opt,
                    taken,
                    phase_start,
                } => {
                    if taken >= self.mo_steps {
                        self.pos = AmPos::RoundEnd;
                        continue;
                    }
                    let (loss, grad) = hopkins.eval(&state.theta_m)?;
                    state.record(loss);
                    if self.phase_plateaued(state, phase_start) {
                        self.pos = AmPos::RoundEnd;
                        return Ok(StepOutcome::Running);
                    }
                    opt.step(state.theta_m.as_mut_slice(), grad.as_slice());
                    self.pos = AmPos::MoHopkins {
                        hopkins,
                        opt,
                        taken: taken + 1,
                        phase_start,
                    };
                    return Ok(StepOutcome::Running);
                }
                AmPos::RoundEnd => {
                    if self
                        .stop
                        .is_some_and(|rule| rule.plateaued(state.trace.records()))
                    {
                        self.pos = AmPos::Finished(StopReason::Converged);
                        return Ok(StepOutcome::Done(StopReason::Converged));
                    }
                    self.round += 1;
                    self.pos = AmPos::RoundStart;
                }
                AmPos::Finished(reason) => {
                    self.pos = AmPos::Finished(reason);
                    return Ok(StepOutcome::Done(reason));
                }
            }
        }
    }
}

/// Runs Algorithm 1.
///
/// The trace records `L_smo` before each update; see [`AmSolver`] for the
/// hybrid-surrogate and stop-rule semantics.
///
/// # Errors
///
/// Propagates imaging failures.
#[deprecated(
    note = "drive the \"AM(A~A)\" / \"AM(A~H)\" methods through `Session`/`SolverRegistry` (DESIGN.md §8)"
)]
pub fn run_am_smo(
    problem: &SmoProblem,
    theta_j0: &[f64],
    theta_m0: &RealField,
    cfg: AmSmoConfig,
) -> Result<SmoOutcome, LithoError> {
    let mut session = Session::with_init(
        problem,
        Box::new(AmSolver::from_legacy(cfg)),
        theta_j0.to_vec(),
        theta_m0.clone(),
    )?;
    session.run()?;
    Ok(session.into_outcome())
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::problem::SmoSettings;
    use bismo_optics::{OpticalConfig, SourceShape};

    fn fixtures() -> (SmoProblem, Vec<f64>, RealField) {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let problem = SmoProblem::new(cfg, SmoSettings::default(), target).unwrap();
        let tj = problem.init_theta_j(SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        });
        let tm = problem.init_theta_m();
        (problem, tj, tm)
    }

    #[test]
    fn abbe_abbe_reduces_loss_and_traces_all_steps() {
        let (problem, tj, tm) = fixtures();
        let cfg = AmSmoConfig {
            rounds: 2,
            so_steps: 4,
            mo_steps: 4,
            lr: 0.1,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Abbe,
            stop: None,
            phase_stop: None,
        };
        let out = run_am_smo(&problem, &tj, &tm, cfg).unwrap();
        assert_eq!(out.trace.len(), 2 * (4 + 4));
        // Compare true end-to-end loss (the per-step trace may zigzag — that
        // is the point of Figure 3).
        let l0 = problem.loss(&tj, &tm).unwrap().total;
        let l1 = problem.loss(&out.theta_j, &out.theta_m).unwrap().total;
        assert!(l1 < l0, "{l0} → {l1}");
    }

    #[test]
    fn hybrid_runs_and_improves_true_loss() {
        let (problem, tj, tm) = fixtures();
        let cfg = AmSmoConfig {
            rounds: 2,
            so_steps: 2,
            mo_steps: 2,
            lr: 0.2,
            kind: OptimizerKind::Adam,
            mo_model: MoModel::Hopkins { q: 12 },
            stop: None,
            phase_stop: None,
        };
        let l0 = problem.loss(&tj, &tm).unwrap().total;
        let out = run_am_smo(&problem, &tj, &tm, cfg).unwrap();
        let l1 = problem.loss(&out.theta_j, &out.theta_m).unwrap().total;
        assert!(l1 < l0, "hybrid failed to improve: {l0} → {l1}");
    }

    #[test]
    fn parameters_actually_move_in_both_blocks() {
        let (problem, tj, tm) = fixtures();
        let out = run_am_smo(
            &problem,
            &tj,
            &tm,
            AmSmoConfig {
                rounds: 1,
                so_steps: 2,
                mo_steps: 2,
                lr: 0.2,
                kind: OptimizerKind::Sgd,
                mo_model: MoModel::Abbe,
                stop: None,
                phase_stop: None,
            },
        )
        .unwrap();
        let dj: f64 = out
            .theta_j
            .iter()
            .zip(&tj)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let dm: f64 = out
            .theta_m
            .as_slice()
            .iter()
            .zip(tm.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dj > 0.0, "source parameters unchanged");
        assert!(dm > 0.0, "mask parameters unchanged");
    }

    #[test]
    fn zero_round_run_finishes_immediately_with_empty_trace() {
        let (problem, tj, tm) = fixtures();
        let out = run_am_smo(
            &problem,
            &tj,
            &tm,
            AmSmoConfig {
                rounds: 0,
                ..AmSmoConfig::default()
            },
        )
        .unwrap();
        assert!(out.trace.is_empty());
        assert_eq!(out.theta_j, tj);
    }

    #[test]
    fn solver_name_tracks_the_mo_model() {
        let (problem, _, _) = fixtures();
        let cfg = SolverConfig::default();
        assert_eq!(
            AmSolver::new(&problem, MoModel::Abbe, &cfg).name(),
            "AM(A~A)"
        );
        assert_eq!(
            AmSolver::new(&problem, MoModel::Hopkins { q: 24 }, &cfg).name(),
            "AM(A~H)"
        );
    }
}
