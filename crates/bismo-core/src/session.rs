//! The [`Session`] type: owns a [`Solver`]'s run — parameters, trace,
//! status, wall-clock budget and per-step observers (DESIGN.md §8).
//!
//! A session is the unit every consumer drives: the bench harness runs one
//! per (method, clip) cell, the figures stream traces out of observers, and
//! tests pause mid-run (`run_steps`) and continue later with results
//! bit-identical to an uninterrupted run, because *all* mutable state lives
//! either in the session's [`SolverState`] or inside the solver itself.

use bismo_litho::LithoError;
use bismo_optics::{RealField, SourceShape};

use crate::amsmo::SmoOutcome;
use crate::problem::SmoProblem;
use crate::solver::{Solver, SolverState, StepOutcome, StopReason};
use crate::trace::{ConvergenceTrace, StepRecord};

/// Where a session stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// More work remains; `step`/`run` will advance it.
    Running,
    /// The solver's stop rule fired. Terminal.
    Converged,
    /// The solver's step budget was spent. Terminal.
    Exhausted,
    /// An observer or the wall-clock budget paused the run; `resume`
    /// continues it.
    Stopped,
    /// A step returned an imaging error; the state is poisoned. Terminal.
    Failed,
}

/// What an observer tells the session after seeing a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep going.
    Continue,
    /// Pause the session after this step (it stays resumable).
    Stop,
}

/// Snapshot handed to observers after every step.
#[derive(Debug)]
pub struct StepEvent<'a> {
    /// The solver's registry name.
    pub solver: &'static str,
    /// Session-level step count (solver `step` calls so far).
    pub steps_taken: usize,
    /// Trace records appended by this step (may be empty on a pure
    /// bookkeeping step, e.g. a budget-exhaustion probe).
    pub new_records: &'a [StepRecord],
    /// The full run state (parameters and trace).
    pub state: &'a SolverState,
    /// Status after this step.
    pub status: SessionStatus,
}

/// A driving harness around one [`Solver`] on one [`SmoProblem`].
///
/// # Examples
///
/// ```
/// use bismo_core::{Session, SolverConfig, SolverRegistry, SessionStatus, SmoProblem, SmoSettings};
/// use bismo_optics::{OpticalConfig, RealField};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = OpticalConfig::test_small();
/// let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
///     if (24..40).contains(&r) && (20..44).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target)?;
/// let mut config = SolverConfig::default();
/// config.bismo.outer_steps = 2;
/// let mut session = SolverRegistry::builtin().session("BiSMO-FD", &problem, &config)?;
/// let status = session.run()?;
/// assert_eq!(status, SessionStatus::Exhausted);
/// assert_eq!(session.trace().len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct Session<'p> {
    problem: &'p SmoProblem,
    solver: Box<dyn Solver>,
    state: SolverState,
    status: SessionStatus,
    steps_taken: usize,
    max_wall_s: Option<f64>,
    #[allow(clippy::type_complexity)]
    observers: Vec<Box<dyn FnMut(&StepEvent<'_>) -> Control + 'p>>,
}

impl<'p> Session<'p> {
    /// Creates a session with the paper's Table 1 initialization: θ_M from
    /// the problem's target, θ_J from the optical configuration's annular
    /// template.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Unsupported`] when the solver's capability
    /// query rejects the problem.
    pub fn new(
        problem: &'p SmoProblem,
        solver: Box<dyn Solver>,
    ) -> Result<Session<'p>, LithoError> {
        let optical = problem.optical();
        let theta_j = problem.init_theta_j(SourceShape::Annular {
            sigma_in: optical.sigma_in(),
            sigma_out: optical.sigma_out(),
        });
        let theta_m = problem.init_theta_m();
        Session::with_init(problem, solver, theta_j, theta_m)
    }

    /// Creates a session from explicit initial parameters.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::Unsupported`] when the solver's capability
    /// query rejects the problem.
    pub fn with_init(
        problem: &'p SmoProblem,
        solver: Box<dyn Solver>,
        theta_j: Vec<f64>,
        theta_m: RealField,
    ) -> Result<Session<'p>, LithoError> {
        if !solver.supports(problem) {
            return Err(LithoError::Unsupported(
                "solver's capability query rejected this problem",
            ));
        }
        Ok(Session {
            problem,
            solver,
            state: SolverState::new(theta_j, theta_m),
            status: SessionStatus::Running,
            steps_taken: 0,
            max_wall_s: None,
            observers: Vec::new(),
        })
    }

    /// Pauses the run once the state clock passes `seconds` (checked after
    /// each step; the session stays resumable).
    #[must_use]
    pub fn with_wall_budget_s(mut self, seconds: f64) -> Self {
        self.max_wall_s = Some(seconds);
        self
    }

    /// Registers a per-step observer — the streaming-trace / checkpointing
    /// hook. Observers run in registration order after every step; any of
    /// them returning [`Control::Stop`] pauses the session.
    #[must_use]
    pub fn observe(mut self, observer: impl FnMut(&StepEvent<'_>) -> Control + 'p) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Advances the solver by one step. A no-op returning the current
    /// status when the session is not running.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures; the session transitions to
    /// [`SessionStatus::Failed`].
    pub fn step(&mut self) -> Result<SessionStatus, LithoError> {
        if self.status != SessionStatus::Running {
            return Ok(self.status);
        }
        let before = self.state.trace.len();
        let outcome = match self.solver.step(self.problem, &mut self.state) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.status = SessionStatus::Failed;
                return Err(e);
            }
        };
        self.steps_taken += 1;
        self.status = match outcome {
            StepOutcome::Running => SessionStatus::Running,
            StepOutcome::Done(StopReason::Converged) => SessionStatus::Converged,
            StepOutcome::Done(StopReason::Exhausted) => SessionStatus::Exhausted,
        };
        if self.status == SessionStatus::Running
            && self
                .max_wall_s
                .is_some_and(|budget| self.state.elapsed_s() >= budget)
        {
            self.status = SessionStatus::Stopped;
        }
        if !self.observers.is_empty() {
            let event = StepEvent {
                solver: self.solver.name(),
                steps_taken: self.steps_taken,
                new_records: &self.state.trace.records()[before..],
                state: &self.state,
                status: self.status,
            };
            let mut pause = false;
            for observer in &mut self.observers {
                if observer(&event) == Control::Stop {
                    pause = true;
                }
            }
            if pause && self.status == SessionStatus::Running {
                self.status = SessionStatus::Stopped;
            }
        }
        if self.status == SessionStatus::Stopped {
            // Idle time while paused must not count as run time (or burn
            // the wall budget the moment the session resumes).
            self.state.pause_clock();
        }
        Ok(self.status)
    }

    /// Runs until the solver finishes or something pauses the session.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures (see [`Session::step`]).
    pub fn run(&mut self) -> Result<SessionStatus, LithoError> {
        while self.status == SessionStatus::Running {
            self.step()?;
        }
        Ok(self.status)
    }

    /// Advances at most `n` steps (fewer if the run finishes first).
    ///
    /// # Errors
    ///
    /// Propagates imaging failures (see [`Session::step`]).
    pub fn run_steps(&mut self, n: usize) -> Result<SessionStatus, LithoError> {
        for _ in 0..n {
            if self.status != SessionStatus::Running {
                break;
            }
            self.step()?;
        }
        Ok(self.status)
    }

    /// Resumes a [`SessionStatus::Stopped`] session and runs to the next
    /// stopping point. Terminal states are returned unchanged.
    ///
    /// # Errors
    ///
    /// Propagates imaging failures (see [`Session::step`]).
    pub fn resume(&mut self) -> Result<SessionStatus, LithoError> {
        if self.status == SessionStatus::Stopped {
            self.state.resume_clock();
            self.status = SessionStatus::Running;
        }
        self.run()
    }

    /// The problem this session runs on.
    pub fn problem(&self) -> &'p SmoProblem {
        self.problem
    }

    /// The solver's registry name.
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// Current status.
    pub fn status(&self) -> SessionStatus {
        self.status
    }

    /// Solver `step` calls performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The run state (parameters and trace).
    pub fn state(&self) -> &SolverState {
        &self.state
    }

    /// The convergence trace recorded so far.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.state.trace
    }

    /// Current source parameters.
    pub fn theta_j(&self) -> &[f64] {
        &self.state.theta_j
    }

    /// Current mask parameters.
    pub fn theta_m(&self) -> &RealField {
        &self.state.theta_m
    }

    /// Run-clock seconds: time this session has spent running, excluding
    /// paused stretches.
    pub fn wall_s(&self) -> f64 {
        self.state.elapsed_s()
    }

    /// Consumes the session into the outcome type the historical drivers
    /// returned.
    pub fn into_outcome(self) -> SmoOutcome {
        let wall_s = self.state.elapsed_s();
        SmoOutcome {
            theta_j: self.state.theta_j,
            theta_m: self.state.theta_m,
            trace: self.state.trace,
            wall_s,
        }
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("solver", &self.solver.name())
            .field("status", &self.status)
            .field("steps_taken", &self.steps_taken)
            .field("trace_len", &self.state.trace.len())
            .field("observers", &self.observers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mo::AbbeMoSolver;
    use crate::problem::SmoSettings;
    use crate::solver::SolverConfig;
    use bismo_optics::OpticalConfig;

    fn problem() -> SmoProblem {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap()
    }

    fn quick_mo_config(steps: usize) -> SolverConfig {
        let mut cfg = SolverConfig::default();
        cfg.mo.steps = steps;
        cfg
    }

    #[test]
    fn run_exhausts_the_budget_and_is_idempotent_after() {
        let p = problem();
        let cfg = quick_mo_config(3);
        let mut s = Session::new(&p, Box::new(AbbeMoSolver::new(&p, &cfg))).unwrap();
        assert_eq!(s.status(), SessionStatus::Running);
        assert_eq!(s.run().unwrap(), SessionStatus::Exhausted);
        assert_eq!(s.trace().len(), 3);
        // Stepping a finished session is a no-op.
        let len = s.trace().len();
        assert_eq!(s.step().unwrap(), SessionStatus::Exhausted);
        assert_eq!(s.trace().len(), len);
    }

    #[test]
    fn observer_can_pause_and_resume_continues() {
        let p = problem();
        let cfg = quick_mo_config(4);
        let mut s = Session::new(&p, Box::new(AbbeMoSolver::new(&p, &cfg)))
            .unwrap()
            .observe(|event| {
                if event.steps_taken == 2 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            });
        assert_eq!(s.run().unwrap(), SessionStatus::Stopped);
        assert_eq!(s.trace().len(), 2);
        assert_eq!(s.resume().unwrap(), SessionStatus::Exhausted);
        assert_eq!(s.trace().len(), 4);
    }

    #[test]
    fn observers_see_every_new_record() {
        let p = problem();
        let cfg = quick_mo_config(3);
        let seen = std::cell::RefCell::new(0usize);
        let mut s = Session::new(&p, Box::new(AbbeMoSolver::new(&p, &cfg)))
            .unwrap()
            .observe(|event| {
                *seen.borrow_mut() += event.new_records.len();
                assert_eq!(event.solver, "Abbe-MO");
                Control::Continue
            });
        s.run().unwrap();
        assert_eq!(*seen.borrow(), 3);
    }

    #[test]
    fn paused_sessions_do_not_accrue_run_time() {
        let p = problem();
        let cfg = quick_mo_config(2);
        let mut s = Session::new(&p, Box::new(AbbeMoSolver::new(&p, &cfg)))
            .unwrap()
            .observe(|event| {
                if event.steps_taken == 1 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            });
        assert_eq!(s.run().unwrap(), SessionStatus::Stopped);
        let paused_at = s.wall_s();
        std::thread::sleep(std::time::Duration::from_millis(150));
        let idle = s.wall_s() - paused_at;
        assert!(
            idle < 0.05,
            "run clock advanced {idle}s while the session was paused"
        );
        assert_eq!(s.resume().unwrap(), SessionStatus::Exhausted);
        assert_eq!(s.trace().len(), 2);
    }

    #[test]
    fn wall_budget_pauses_the_session() {
        let p = problem();
        let cfg = quick_mo_config(50);
        let mut s = Session::new(&p, Box::new(AbbeMoSolver::new(&p, &cfg)))
            .unwrap()
            .with_wall_budget_s(0.0);
        assert_eq!(s.run().unwrap(), SessionStatus::Stopped);
        assert_eq!(s.trace().len(), 1, "budget is checked after each step");
    }
}
