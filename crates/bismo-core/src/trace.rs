//! Convergence recording shared by every optimization driver; the raw
//! material of the paper's Figure 3 (loss curves) and Figure 5 (mean/STD
//! bands).

/// One recorded optimization step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Zero-based update index (each source *or* mask update counts).
    pub step: usize,
    /// Total weighted loss `L_smo` before the update.
    pub loss: f64,
    /// Raw nominal L2 term.
    pub l2: f64,
    /// Raw PVB term.
    pub pvb: f64,
    /// Seconds elapsed since the driver started.
    pub elapsed_s: f64,
}

/// A sequence of [`StepRecord`]s produced by one optimization run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceTrace {
    records: Vec<StepRecord>,
}

impl ConvergenceTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ConvergenceTrace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: StepRecord) {
        self.records.push(record);
    }

    /// All records in order.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The last recorded loss, if any.
    pub fn final_loss(&self) -> Option<f64> {
        self.records.last().map(|r| r.loss)
    }

    /// The smallest recorded loss, if any.
    pub fn best_loss(&self) -> Option<f64> {
        self.records
            .iter()
            .map(|r| r.loss)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Renders the trace as CSV (`step,loss,l2,pvb,elapsed_s`), the format
    /// the figure harnesses emit.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,loss,l2,pvb,elapsed_s\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.6e},{:.6e},{:.6e},{:.3}\n",
                r.step, r.loss, r.l2, r.pvb, r.elapsed_s
            ));
        }
        out
    }
}

/// Plateau-based early-stopping rule shared by the optimization drivers.
///
/// A run stops when the best loss of the most recent `window` records fails
/// to improve on the best of the preceding `window` records by at least a
/// `rel_tol` fraction. The paper notes AM-SMO's lack of global gradient
/// guidance "complicates establishing effective early stopping criteria"
/// (§3.2) — this rule applies the same criterion to every method so the
/// turnaround-time comparison (Table 4) is apples-to-apples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Number of recent records per comparison window.
    pub window: usize,
    /// Required relative improvement between windows.
    pub rel_tol: f64,
}

impl StopRule {
    /// Absolute improvement floor below which losses are considered
    /// indistinguishable. The purely relative criterion can never fire once
    /// the best loss reaches exactly 0.0 (`new_best > 0.0 · (1 − tol)` is
    /// false for `new_best = 0.0`), so fully converged runs would burn their
    /// entire step budget; any improvement smaller than this floor counts
    /// as a plateau regardless of the relative test.
    pub const ABS_TOL: f64 = 1e-12;

    /// The harness default: 10-step windows, 0.1% improvement.
    pub fn harness_default() -> Self {
        StopRule {
            window: 10,
            rel_tol: 1e-3,
        }
    }

    /// Returns `true` when the trace has plateaued under this rule: the
    /// best loss of the most recent window improves on the preceding
    /// window's best by less than a `rel_tol` fraction — or by less than
    /// the [`StopRule::ABS_TOL`] absolute floor, which is what lets runs
    /// that converge to exactly zero loss stop instead of exhausting their
    /// budget.
    pub fn plateaued(&self, records: &[StepRecord]) -> bool {
        let w = self.window.max(1);
        if records.len() < 2 * w {
            return false;
        }
        let min_of = |rs: &[StepRecord]| rs.iter().map(|r| r.loss).fold(f64::INFINITY, f64::min);
        let old_best = min_of(&records[records.len() - 2 * w..records.len() - w]);
        let new_best = min_of(&records[records.len() - w..]);
        new_best > old_best * (1.0 - self.rel_tol) - Self::ABS_TOL
    }
}

impl FromIterator<StepRecord> for ConvergenceTrace {
    fn from_iter<I: IntoIterator<Item = StepRecord>>(iter: I) -> Self {
        ConvergenceTrace {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: usize, loss: f64) -> StepRecord {
        StepRecord {
            step,
            loss,
            l2: loss / 2.0,
            pvb: loss / 3.0,
            elapsed_s: step as f64 * 0.1,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = ConvergenceTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.final_loss(), None);
        t.push(rec(0, 5.0));
        t.push(rec(1, 3.0));
        t.push(rec(2, 4.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.final_loss(), Some(4.0));
        assert_eq!(t.best_loss(), Some(3.0));
    }

    #[test]
    fn stop_rule_triggers_on_plateau() {
        let rule = StopRule {
            window: 3,
            rel_tol: 1e-3,
        };
        // Decreasing: no stop.
        let improving: Vec<StepRecord> = (0..8).map(|i| rec(i, 10.0 / (i + 1) as f64)).collect();
        assert!(!rule.plateaued(&improving));
        // Flat tail: stop.
        let mut flat = improving.clone();
        for i in 8..14 {
            flat.push(rec(i, 1.25));
        }
        assert!(rule.plateaued(&flat));
        // Too short: no stop.
        assert!(!rule.plateaued(&improving[..4]));
    }

    #[test]
    fn stop_rule_fires_at_exactly_zero_loss() {
        // Regression: with a purely relative criterion, a run whose best
        // loss hits exactly 0.0 could never plateau (`0 > 0·(1−tol)` is
        // false) and would burn its whole step budget.
        let rule = StopRule {
            window: 3,
            rel_tol: 1e-3,
        };
        let converged: Vec<StepRecord> = (0..6).map(|i| rec(i, 0.0)).collect();
        assert!(rule.plateaued(&converged));
        // A decrease onto zero within the recent window still counts as
        // progress, so the run gets its final improving step recorded.
        let mut improving: Vec<StepRecord> = (0..3).map(|i| rec(i, 1.0)).collect();
        for i in 3..6 {
            improving.push(rec(i, 0.0));
        }
        assert!(!rule.plateaued(&improving));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t: ConvergenceTrace = (0..3).map(|i| rec(i, 1.0 / (i + 1) as f64)).collect();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "step,loss,l2,pvb,elapsed_s");
        assert!(lines[1].starts_with("0,"));
    }
}
