//! The named-method registry (DESIGN.md §8): every optimization method of
//! the paper, keyed by its stable column label, constructible from one
//! [`SolverConfig`].
//!
//! The registry is the single source of truth for the method roster — the
//! bench harness's `Method` enumeration, the sweep journals' method names
//! and the CI registry smoke all derive from it, so adding a method here is
//! sufficient to put it in every sweep (and *not* adding it anywhere else
//! is sufficient to keep it out).

use std::sync::OnceLock;

use crate::amsmo::{AmSolver, MoModel, SmoOutcome};
use crate::bismo::{BismoSolver, HypergradMethod};
use crate::mo::{AbbeMoSolver, HopkinsProxySolver};
use crate::multigrid::MultigridSolver;
use crate::problem::SmoProblem;
use crate::session::Session;
use crate::solver::{Solver, SolverConfig};

type SolverCtor = Box<dyn Fn(&SmoProblem, &SolverConfig) -> Box<dyn Solver> + Send + Sync>;

/// One registry entry: the stable name, capability metadata and the
/// constructor. Constructors are infallible and cheap — anything expensive
/// or fallible (TCC builds, imaging) happens lazily at the first
/// [`Solver::step`], which is what the CI registry smoke exercises.
pub struct SolverSpec {
    name: &'static str,
    summary: &'static str,
    optimizes_source: bool,
    ctor: SolverCtor,
}

impl SolverSpec {
    /// Stable method name (the paper's column label); the key for
    /// [`SolverRegistry::get`] and what [`Solver::name`] returns.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description for listings.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Whether the method optimizes the source at all (MO baselines don't).
    pub fn optimizes_source(&self) -> bool {
        self.optimizes_source
    }

    /// Constructs the solver for `problem` under `config`.
    pub fn create(&self, problem: &SmoProblem, config: &SolverConfig) -> Box<dyn Solver> {
        (self.ctor)(problem, config)
    }
}

impl std::fmt::Debug for SolverSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverSpec")
            .field("name", &self.name)
            .field("optimizes_source", &self.optimizes_source)
            .finish()
    }
}

/// Maps stable method names to solver constructors.
///
/// Besides the base roster, every method is also constructible under the
/// `<name>@mg` suffix (e.g. `BiSMO-CG@mg`), which wraps it in the
/// coarse-to-fine [`MultigridSolver`] (DESIGN.md §11). The `@mg` entries
/// are derived — [`SolverRegistry::specs`] and [`SolverRegistry::names`]
/// list only the base roster so sweeps don't silently double, while
/// [`SolverRegistry::get`] / [`SolverRegistry::create`] resolve both forms.
pub struct SolverRegistry {
    specs: Vec<SolverSpec>,
    mg_specs: Vec<SolverSpec>,
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("specs", &self.specs)
            .field("mg_specs", &self.mg_specs)
            .finish()
    }
}

impl SolverRegistry {
    /// The built-in roster: the eight methods of Tables 3/4, in the paper's
    /// column order.
    pub fn builtin() -> &'static SolverRegistry {
        static BUILTIN: OnceLock<SolverRegistry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            let specs = vec![
                SolverSpec {
                    name: "NILT",
                    summary: "NILT [7] proxy: Hopkins ILT, Q = 6, no PVB term",
                    optimizes_source: false,
                    ctor: Box::new(|p, c| Box::new(HopkinsProxySolver::nilt(p, c))),
                },
                SolverSpec {
                    name: "DAC23-MILT",
                    summary: "DAC23-MILT [10] proxy: Hopkins ILT, Q = 24, PVB, two-level schedule",
                    optimizes_source: false,
                    ctor: Box::new(|p, c| Box::new(HopkinsProxySolver::milt(p, c))),
                },
                SolverSpec {
                    name: "Abbe-MO",
                    summary: "Abbe-model mask-only optimization (ours, §4.1)",
                    optimizes_source: false,
                    ctor: Box::new(|p, c| Box::new(AbbeMoSolver::new(p, c))),
                },
                SolverSpec {
                    name: "AM(A~H)",
                    summary: "AM-SMO, Abbe SO + Hopkins MO with per-round TCC rebuild [13]",
                    optimizes_source: true,
                    ctor: Box::new(|p, c| {
                        Box::new(AmSolver::new(p, MoModel::Hopkins { q: c.am.hybrid_q }, c))
                    }),
                },
                SolverSpec {
                    name: "AM(A~A)",
                    summary: "AM-SMO, Abbe model for both phases [12]",
                    optimizes_source: true,
                    ctor: Box::new(|p, c| Box::new(AmSolver::new(p, MoModel::Abbe, c))),
                },
                SolverSpec {
                    name: "BiSMO-FD",
                    summary: "Bilevel SMO, finite-difference hypergradient (Eq. 13)",
                    optimizes_source: true,
                    ctor: Box::new(|p, c| {
                        Box::new(BismoSolver::new(p, HypergradMethod::FiniteDiff, c))
                    }),
                },
                SolverSpec {
                    name: "BiSMO-CG",
                    summary: "Bilevel SMO, conjugate-gradient hypergradient (Eq. 18)",
                    optimizes_source: true,
                    ctor: Box::new(|p, c| {
                        Box::new(BismoSolver::new(
                            p,
                            HypergradMethod::ConjGrad { k: c.bismo.k },
                            c,
                        ))
                    }),
                },
                SolverSpec {
                    name: "BiSMO-NMN",
                    summary: "Bilevel SMO, Neumann-series hypergradient (Eq. 16)",
                    optimizes_source: true,
                    ctor: Box::new(|p, c| {
                        Box::new(BismoSolver::new(
                            p,
                            HypergradMethod::Neumann { k: c.bismo.k },
                            c,
                        ))
                    }),
                },
            ];
            // Derive a `<name>@mg` multigrid wrapper for every base method.
            // The names live as long as the registry itself (one leak per
            // process, inside this OnceLock init), which is what lets
            // `Solver::name` keep returning `&'static str`.
            let mg_specs = specs
                .iter()
                .map(|base| {
                    let base_name = base.name;
                    let name: &'static str = Box::leak(format!("{base_name}@mg").into_boxed_str());
                    SolverSpec {
                        name,
                        summary: Box::leak(
                            format!(
                                "{base_name} under a coarse-to-fine multigrid level \
                                 schedule (DESIGN.md §11)"
                            )
                            .into_boxed_str(),
                        ),
                        optimizes_source: base.optimizes_source,
                        ctor: Box::new(move |_p, c| {
                            Box::new(MultigridSolver::new(name, base_name, c))
                        }),
                    }
                })
                .collect();
            SolverRegistry { specs, mg_specs }
        })
    }

    /// All entries, in roster order.
    pub fn specs(&self) -> &[SolverSpec] {
        &self.specs
    }

    /// All method names, in roster order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.specs.iter().map(|s| s.name)
    }

    /// Looks a method up by name, case-insensitively. Resolves both the
    /// base roster and the derived `<name>@mg` multigrid entries.
    pub fn get(&self, name: &str) -> Option<&SolverSpec> {
        let trimmed = name.trim();
        self.specs
            .iter()
            .chain(&self.mg_specs)
            .find(|s| s.name.eq_ignore_ascii_case(trimmed))
    }

    /// Constructs the named solver.
    ///
    /// # Errors
    ///
    /// An unknown name is an error listing the valid ones, and an unknown
    /// `@suffix` on a valid base name is called out specifically (the same
    /// fail-fast contract as the env-variable parsers).
    pub fn create(
        &self,
        name: &str,
        problem: &SmoProblem,
        config: &SolverConfig,
    ) -> Result<Box<dyn Solver>, String> {
        if let Some(spec) = self.get(name) {
            return Ok(spec.create(problem, config));
        }
        if let Some((_, suffix)) = name.trim().rsplit_once('@') {
            if !suffix.eq_ignore_ascii_case("mg") {
                return Err(format!(
                    "unknown solver suffix {suffix:?} in {name:?}; the only \
                     recognized suffix is \"@mg\" (coarse-to-fine multigrid, \
                     DESIGN.md §11)"
                ));
            }
        }
        Err(format!(
            "unknown solver name {name:?}; valid names are {} (each also \
             available with the \"@mg\" multigrid suffix)",
            self.specs
                .iter()
                .map(|s| format!("{:?}", s.name))
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }

    /// Constructs the named solver and wraps it in a [`Session`] with the
    /// default Table 1 initialization.
    ///
    /// # Errors
    ///
    /// Unknown names and capability rejections are both reported as
    /// rendered messages (stringified, since the name is dynamic).
    pub fn session<'p>(
        &self,
        name: &str,
        problem: &'p SmoProblem,
        config: &SolverConfig,
    ) -> Result<Session<'p>, String> {
        let solver = self.create(name, problem, config)?;
        Session::new(problem, solver).map_err(|e| e.to_string())
    }

    /// Convenience for the common fire-and-forget shape: constructs the
    /// named solver, drives a default-initialized session to completion and
    /// returns its outcome. Callers that need observers, budgets, pausing
    /// or custom initialization use [`SolverRegistry::session`] /
    /// [`SolverRegistry::session_with_init`] instead.
    ///
    /// # Errors
    ///
    /// Unknown names, capability rejections and imaging failures, rendered
    /// (see [`SolverRegistry::session`]).
    pub fn run(
        &self,
        name: &str,
        problem: &SmoProblem,
        config: &SolverConfig,
    ) -> Result<SmoOutcome, String> {
        let mut session = self.session(name, problem, config)?;
        session.run().map_err(|e| e.to_string())?;
        Ok(session.into_outcome())
    }

    /// Like [`SolverRegistry::session`] but with explicit initial
    /// parameters.
    ///
    /// # Errors
    ///
    /// See [`SolverRegistry::session`].
    pub fn session_with_init<'p>(
        &self,
        name: &str,
        problem: &'p SmoProblem,
        config: &SolverConfig,
        theta_j: Vec<f64>,
        theta_m: bismo_optics::RealField,
    ) -> Result<Session<'p>, String> {
        let solver = self.create(name, problem, config)?;
        Session::with_init(problem, solver, theta_j, theta_m).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_the_paper_columns_in_order() {
        let names: Vec<&str> = SolverRegistry::builtin().names().collect();
        assert_eq!(
            names,
            vec![
                "NILT",
                "DAC23-MILT",
                "Abbe-MO",
                "AM(A~H)",
                "AM(A~A)",
                "BiSMO-FD",
                "BiSMO-CG",
                "BiSMO-NMN",
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive_and_fails_fast() {
        let reg = SolverRegistry::builtin();
        assert_eq!(reg.get("bismo-nmn").unwrap().name(), "BiSMO-NMN");
        assert_eq!(reg.get(" am(a~h) ").unwrap().name(), "AM(A~H)");
        assert!(reg.get("bogus").is_none());

        let cfg = crate::solver::SolverConfig::default();
        let p = {
            use bismo_optics::{OpticalConfig, RealField};
            let optical = OpticalConfig::test_small();
            let target = RealField::zeros(optical.mask_dim());
            SmoProblem::new(optical, crate::problem::SmoSettings::default(), target).unwrap()
        };
        let Err(err) = reg.create("qiuck", &p, &cfg) else {
            panic!("typo'd solver name must not resolve")
        };
        assert!(err.contains("qiuck") && err.contains("BiSMO-NMN"), "{err}");
    }

    #[test]
    fn mg_names_resolve_case_insensitively_and_round_trip() {
        use bismo_optics::{OpticalConfig, RealField};
        let reg = SolverRegistry::builtin();
        // Every base method has a derived @mg entry; lookup is
        // case-insensitive over the whole name including the suffix.
        assert_eq!(reg.get("bismo-cg@MG").unwrap().name(), "BiSMO-CG@mg");
        assert_eq!(reg.get(" am(a~h)@mg ").unwrap().name(), "AM(A~H)@mg");
        // The derived entries do not appear in the base roster listings,
        // so sweeps over `names()` don't silently double.
        assert_eq!(reg.names().count(), 8);
        assert!(reg.names().all(|n| !n.contains('@')));

        // Constructed solvers report the full @mg name — journals and
        // traces round-trip through `Solver::name`.
        let optical = OpticalConfig::test_small();
        let target = RealField::zeros(optical.mask_dim());
        let p = SmoProblem::new(optical, crate::problem::SmoSettings::default(), target).unwrap();
        let cfg = crate::solver::SolverConfig::default();
        for spec in reg.specs() {
            let mg_name = format!("{}@mg", spec.name());
            let solver = reg.create(&mg_name, &p, &cfg).unwrap();
            assert_eq!(solver.name(), mg_name);
            assert_eq!(reg.get(&mg_name).unwrap().name(), mg_name);
        }
    }

    #[test]
    fn unknown_mg_suffix_fails_fast() {
        let reg = SolverRegistry::builtin();
        let cfg = crate::solver::SolverConfig::default();
        let p = {
            use bismo_optics::{OpticalConfig, RealField};
            let optical = OpticalConfig::test_small();
            let target = RealField::zeros(optical.mask_dim());
            SmoProblem::new(optical, crate::problem::SmoSettings::default(), target).unwrap()
        };
        let Err(err) = reg.create("BiSMO-CG@turbo", &p, &cfg) else {
            panic!("unknown suffix must not resolve")
        };
        assert!(
            err.contains("turbo") && err.contains("@mg"),
            "suffix errors must name the bad suffix and the valid one: {err}"
        );
        // An unknown base with a valid suffix is still an unknown name.
        let Err(err) = reg.create("bogus@mg", &p, &cfg) else {
            panic!("unknown base must not resolve")
        };
        assert!(err.contains("bogus") && err.contains("BiSMO-NMN"), "{err}");
    }

    #[test]
    fn solver_names_round_trip_through_construction() {
        use bismo_optics::{OpticalConfig, RealField};
        let optical = OpticalConfig::test_small();
        let target = RealField::zeros(optical.mask_dim());
        let p = SmoProblem::new(optical, crate::problem::SmoSettings::default(), target).unwrap();
        let cfg = crate::solver::SolverConfig::default();
        for spec in SolverRegistry::builtin().specs() {
            let solver = spec.create(&p, &cfg);
            assert_eq!(solver.name(), spec.name(), "ctor/name mismatch");
        }
    }
}
