//! Bilevel SMO (paper §3.2, Algorithm 2) as the step-based [`BismoSolver`]:
//! the upper-level MO descends the hypergradient
//!
//! ```text
//! ∇_{θM} L_mo = ∂L_mo/∂θM − (∂L_mo/∂θJ) · [∂²L_so/∂θJ∂θJ]⁻¹ · ∂²L_so/∂θM∂θJ
//! ```
//!
//! (Eq. 14, via the implicit function theorem), with the inverse Hessian
//! approximated three ways:
//!
//! * **FD** (Eq. 13): `[H]⁻¹ ≈ ξ·I` — one Jacobian-vector product;
//! * **NMN** (Eq. 16): truncated Neumann series `ξ Σ_{k=0}^{K} (I − ξH)^k`;
//! * **CG** (Eq. 17–18): `K` conjugate-gradient steps on `H w = v`,
//!   warm-started across outer iterations (Algorithm 2 line 10).
//!
//! All curvature products are computed matrix-free with central differences
//! of the analytic gradients (`Hv ≈ [∇L(θ+εv) − ∇L(θ−εv)]/2ε`), the same
//! estimator the bilevel literature the paper builds on uses — no Hessian is
//! ever formed.
//!
//! One [`Solver::step`] call is one outer iteration (inner unroll, record,
//! stop check, hypergradient, mask update); the Adam moments of both blocks
//! and the CG warm start live in the solver, so a paused session resumes
//! bit-identically.

use bismo_linalg::{conjugate_gradient, RealOp};
use bismo_litho::LithoError;
use bismo_opt::{Optimizer, OptimizerKind};
use bismo_optics::RealField;

use crate::amsmo::SmoOutcome;
use crate::problem::{GradRequest, SmoProblem};
use crate::session::Session;
use crate::solver::{BismoSection, Solver, SolverConfig, SolverState, StepOutcome, StopReason};
use crate::trace::StopRule;

/// Hypergradient estimator (paper §3.2.1–3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypergradMethod {
    /// BiSMO-FD: single-step finite-difference approximation (Eq. 13).
    FiniteDiff,
    /// BiSMO-NMN: `K`-term truncated Neumann series (Eq. 16).
    Neumann {
        /// Number of Neumann terms `K` (paper: 5).
        k: usize,
    },
    /// BiSMO-CG: `K` conjugate-gradient steps (Eq. 18).
    ConjGrad {
        /// CG iteration budget `K` (paper: 5).
        k: usize,
    },
}

impl HypergradMethod {
    /// Short display name matching the paper's column labels.
    pub fn name(&self) -> &'static str {
        match self {
            HypergradMethod::FiniteDiff => "BiSMO-FD",
            HypergradMethod::Neumann { .. } => "BiSMO-NMN",
            HypergradMethod::ConjGrad { .. } => "BiSMO-CG",
        }
    }
}

/// Configuration of a BiSMO run (paper §4 defaults: `T = 3`, `K = 5`,
/// `ξ_J = ξ_M = 0.1`) — the legacy input type of the deprecated
/// [`run_bismo`] shim; new code sets the shared [`SolverConfig`] knobs and
/// its [`BismoSection`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BismoConfig {
    /// Outer (mask) updates.
    pub outer_steps: usize,
    /// Inner SO unroll length `T` (Algorithm 2 line 2).
    pub unroll_t: usize,
    /// Inner step size `ξ_J`.
    pub xi_j: f64,
    /// Outer step size `ξ_M`.
    pub xi_m: f64,
    /// Hypergradient estimator.
    pub method: HypergradMethod,
    /// Optimizer family for the outer mask update.
    pub kind_m: OptimizerKind,
    /// Optimizer family for the inner source updates.
    pub kind_j: OptimizerKind,
    /// Base step for the finite-difference curvature products (scaled by
    /// `1/‖v‖` per product, DARTS-style).
    pub hvp_eps: f64,
    /// Optional plateau-based early stopping (checked per outer step).
    pub stop: Option<StopRule>,
}

impl Default for BismoConfig {
    fn default() -> Self {
        BismoConfig {
            outer_steps: 100,
            unroll_t: 3,
            xi_j: 0.1,
            xi_m: 0.1,
            method: HypergradMethod::Neumann {
                k: BismoSection::DEFAULT_K,
            },
            kind_m: OptimizerKind::Adam,
            kind_j: OptimizerKind::Adam,
            hvp_eps: 1e-2,
            stop: None,
        }
    }
}

/// `∇_{θJ} L_so` at `(θ_J, θ_M)` — helper for the curvature products.
fn so_grad(
    problem: &SmoProblem,
    theta_j: &[f64],
    theta_m: &RealField,
) -> Result<Vec<f64>, LithoError> {
    Ok(problem
        .eval(theta_j, theta_m, GradRequest::SOURCE)?
        .grad_theta_j
        // PANIC-OK: the GradRequest above sets the source flag; None would violate the §2 backend contract (a bug, not input).
        .expect("source gradient requested"))
}

/// Hessian-vector product `[∂²L_so/∂θJ∂θJ]·v` by central differences of the
/// analytic SO gradient.
fn hvp(
    problem: &SmoProblem,
    theta_j: &[f64],
    theta_m: &RealField,
    v: &[f64],
    base_eps: f64,
) -> Result<Vec<f64>, LithoError> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < 1e-14 {
        return Ok(vec![0.0; v.len()]);
    }
    let eps = base_eps / norm;
    let plus: Vec<f64> = theta_j.iter().zip(v).map(|(t, x)| t + eps * x).collect();
    let minus: Vec<f64> = theta_j.iter().zip(v).map(|(t, x)| t - eps * x).collect();
    let gp = so_grad(problem, &plus, theta_m)?;
    let gm = so_grad(problem, &minus, theta_m)?;
    Ok(gp
        .iter()
        .zip(&gm)
        .map(|(p, m)| (p - m) / (2.0 * eps))
        .collect())
}

/// Mixed Jacobian-vector product `[∂²L_so/∂θM∂θJ]·w` (a θ_M-sized vector) by
/// central differences of the analytic `∇_{θM} L_so` over `θ_J ± ε w`.
fn mixed_jvp(
    problem: &SmoProblem,
    theta_j: &[f64],
    theta_m: &RealField,
    w: &[f64],
    base_eps: f64,
) -> Result<RealField, LithoError> {
    let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
    let n = theta_m.dim();
    if norm < 1e-14 {
        return Ok(RealField::zeros(n));
    }
    let eps = base_eps / norm;
    let plus: Vec<f64> = theta_j.iter().zip(w).map(|(t, x)| t + eps * x).collect();
    let minus: Vec<f64> = theta_j.iter().zip(w).map(|(t, x)| t - eps * x).collect();
    let gp = problem
        .eval(&plus, theta_m, GradRequest::MASK)?
        .grad_theta_m
        // PANIC-OK: the GradRequest above sets the mask flag; a backend returning None would violate the §2 backend contract (a bug, not input).
        .expect("mask gradient requested");
    let gm = problem
        .eval(&minus, theta_m, GradRequest::MASK)?
        .grad_theta_m
        // PANIC-OK: the GradRequest above sets the mask flag; a backend returning None would violate the §2 backend contract (a bug, not input).
        .expect("mask gradient requested");
    let mut out = gp;
    out.axpy(-1.0, &gm);
    out.map_inplace(|x| x / (2.0 * eps));
    Ok(out)
}

/// Matrix-free SO-Hessian operator for the CG solve.
///
/// `apply` panics on imaging failures; the solver performs a full evaluation
/// at the same parameters immediately before the solve, so failures here
/// would indicate a bug rather than bad user input.
struct SoHessianOp<'a> {
    problem: &'a SmoProblem,
    theta_j: &'a [f64],
    theta_m: &'a RealField,
    base_eps: f64,
}

impl RealOp for SoHessianOp<'_> {
    fn dim(&self) -> usize {
        self.theta_j.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let hv = hvp(self.problem, self.theta_j, self.theta_m, x, self.base_eps)
            // PANIC-OK: documented on SoHessianOp — the solver fully evaluated at these parameters just before the solve; failure here is a bug.
            .expect("imaging failed inside CG Hessian-vector product");
        y.copy_from_slice(&hv);
    }
}

/// Bilevel SMO (Algorithm 2) as a step-based solver: one step = one outer
/// iteration. The trace records `L_smo` (evaluated at the post-unroll
/// source) before every outer mask update.
pub struct BismoSolver {
    outer_steps: usize,
    unroll_t: usize,
    xi_j: f64,
    method: HypergradMethod,
    hvp_eps: f64,
    stop: Option<StopRule>,
    opt_m: Box<dyn Optimizer + Send>,
    opt_j: Box<dyn Optimizer + Send>,
    /// Warm-started CG solution (Algorithm 2 line 10: "re-initialize
    /// w⁰ ← wᴷ").
    w_warm: Vec<f64>,
    taken: usize,
    /// Terminal latch: once `Done` is returned, every further call returns
    /// the same reason without touching the state (the `StepOutcome`
    /// contract).
    finished: Option<StopReason>,
}

impl BismoSolver {
    /// Builds the solver from the shared knobs and [`BismoSection`] of
    /// `config`, with the given hypergradient estimator (whose `k`, when it
    /// carries one, overrides the section's).
    pub fn new(
        problem: &SmoProblem,
        method: HypergradMethod,
        config: &SolverConfig,
    ) -> BismoSolver {
        let nm2 = problem.optical().mask_dim() * problem.optical().mask_dim();
        let nj2 = problem.optical().source_dim() * problem.optical().source_dim();
        BismoSolver {
            outer_steps: config.bismo.outer_steps,
            unroll_t: config.bismo.unroll_t,
            xi_j: config.bismo.xi_j,
            method,
            hvp_eps: config.bismo.hvp_eps,
            stop: config.stop,
            opt_m: config.kind_m.build(config.bismo.xi_m, nm2),
            opt_j: config.kind_j.build(config.bismo.xi_j, nj2),
            w_warm: vec![0.0; nj2],
            taken: 0,
            finished: None,
        }
    }

    fn from_legacy(problem: &SmoProblem, cfg: BismoConfig) -> BismoSolver {
        let solver_cfg = SolverConfig {
            kind_m: cfg.kind_m,
            kind_j: cfg.kind_j,
            stop: cfg.stop,
            bismo: BismoSection {
                outer_steps: cfg.outer_steps,
                unroll_t: cfg.unroll_t,
                xi_j: cfg.xi_j,
                xi_m: cfg.xi_m,
                hvp_eps: cfg.hvp_eps,
                k: match cfg.method {
                    HypergradMethod::FiniteDiff => BismoSection::DEFAULT_K,
                    HypergradMethod::Neumann { k } | HypergradMethod::ConjGrad { k } => k,
                },
            },
            ..SolverConfig::default()
        };
        BismoSolver::new(problem, cfg.method, &solver_cfg)
    }
}

impl Solver for BismoSolver {
    fn name(&self) -> &'static str {
        self.method.name()
    }

    fn supports(&self, problem: &SmoProblem) -> bool {
        use bismo_litho::ImagingBackend as _;
        problem.backend().supports_grad_source()
    }

    fn step(
        &mut self,
        problem: &SmoProblem,
        state: &mut SolverState,
    ) -> Result<StepOutcome, LithoError> {
        if let Some(reason) = self.finished {
            return Ok(StepOutcome::Done(reason));
        }
        if self.taken >= self.outer_steps {
            self.finished = Some(StopReason::Exhausted);
            return Ok(StepOutcome::Done(StopReason::Exhausted));
        }

        // Lines 2–4: unroll T inner SO steps to approximate θ_J*(θ_M); the
        // final iterate is kept (weight sharing re-init).
        for _ in 0..self.unroll_t {
            let grad = so_grad(problem, &state.theta_j, &state.theta_m)?;
            self.opt_j.step(&mut state.theta_j, &grad);
        }

        // Direct gradients at (θ_J*, θ_M).
        let eval = problem.eval(&state.theta_j, &state.theta_m, GradRequest::BOTH)?;
        state.record(eval.loss);
        self.taken += 1;
        if self
            .stop
            .is_some_and(|rule| rule.plateaued(state.trace.records()))
        {
            self.finished = Some(StopReason::Converged);
            return Ok(StepOutcome::Done(StopReason::Converged));
        }
        // PANIC-OK: the GradRequest above sets the mask flag; a backend returning None would violate the §2 backend contract (a bug, not input).
        let direct_m = eval.grad_theta_m.expect("mask gradient requested");
        // PANIC-OK: the GradRequest above sets the source flag; None would violate the §2 backend contract (a bug, not input).
        let v = eval.grad_theta_j.expect("source gradient requested");

        // Inverse-Hessian application: w ≈ [∂²L_so/∂θJ∂θJ]⁻¹ v.
        let w = match self.method {
            HypergradMethod::FiniteDiff => {
                // Eq. 13: [H]⁻¹ ≈ ξ·I.
                v.iter().map(|x| self.xi_j * x).collect::<Vec<f64>>()
            }
            HypergradMethod::Neumann { k } => {
                // Eq. 16 with step-size scaling: ξ Σ_{i=0}^{K} (I − ξH)^i v.
                let mut p = v.clone();
                let mut acc = v.clone();
                for _ in 0..k {
                    let hp = hvp(problem, &state.theta_j, &state.theta_m, &p, self.hvp_eps)?;
                    for (pi, hi) in p.iter_mut().zip(&hp) {
                        *pi -= self.xi_j * hi;
                    }
                    for (ai, pi) in acc.iter_mut().zip(&p) {
                        *ai += pi;
                    }
                }
                acc.iter().map(|x| self.xi_j * x).collect()
            }
            HypergradMethod::ConjGrad { k } => {
                let op = SoHessianOp {
                    problem,
                    theta_j: &state.theta_j,
                    theta_m: &state.theta_m,
                    base_eps: self.hvp_eps,
                };
                let result = conjugate_gradient(&op, &v, &self.w_warm, k, 1e-10);
                self.w_warm = result.x.clone();
                result.x
            }
        };

        // Gradient fusion (Eq. 12/14): hyper = ∂L_mo/∂θM − [∂²L_so/∂θM∂θJ]·w.
        let mut correction = mixed_jvp(problem, &state.theta_j, &state.theta_m, &w, self.hvp_eps)?;
        if matches!(self.method, HypergradMethod::ConjGrad { .. }) {
            // CG solves against the raw (possibly indefinite, FD-estimated)
            // SO Hessian; far from the lower-level optimum the solve can
            // return a wildly-scaled w. Clip the CG correction to the direct
            // gradient's norm so a bad curvature estimate can at worst
            // cancel, never dominate, the descent direction. FD and NMN are
            // inherently ξ-scaled (contractive) and keep their exact Eq.
            // 13/16 forms. This guard is the engineering counterpart of the
            // paper's observation that CG is the least stable variant
            // (§4.2, Fig. 5).
            let direct_norm = direct_m.norm_sqr().sqrt();
            let corr_norm = correction.norm_sqr().sqrt();
            if corr_norm > direct_norm && corr_norm > 0.0 {
                correction.map_inplace(|x| x * direct_norm / corr_norm);
            }
        }
        let mut hyper = direct_m;
        hyper.axpy(-1.0, &correction);

        self.opt_m
            .step(state.theta_m.as_mut_slice(), hyper.as_slice());
        Ok(StepOutcome::Running)
    }
}

/// Runs Algorithm 2.
///
/// # Errors
///
/// Propagates imaging failures.
#[deprecated(
    note = "drive the \"BiSMO-FD\" / \"BiSMO-CG\" / \"BiSMO-NMN\" methods through `Session`/`SolverRegistry` (DESIGN.md §8)"
)]
pub fn run_bismo(
    problem: &SmoProblem,
    theta_j0: &[f64],
    theta_m0: &RealField,
    cfg: BismoConfig,
) -> Result<SmoOutcome, LithoError> {
    let mut session = Session::with_init(
        problem,
        Box::new(BismoSolver::from_legacy(problem, cfg)),
        theta_j0.to_vec(),
        theta_m0.clone(),
    )?;
    session.run()?;
    Ok(session.into_outcome())
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::problem::SmoSettings;
    use bismo_optics::{OpticalConfig, SourceShape};

    fn fixtures() -> (SmoProblem, Vec<f64>, RealField) {
        let cfg = OpticalConfig::test_small();
        let target = RealField::from_fn(cfg.mask_dim(), |r, c| {
            if (24..40).contains(&r) && (20..44).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        // PVB off keeps the test fast (1 imaging pass instead of 3).
        let problem = SmoProblem::new(cfg, SmoSettings::default().without_pvb(), target).unwrap();
        let tj = problem.init_theta_j(SourceShape::Annular {
            sigma_in: 0.63,
            sigma_out: 0.95,
        });
        let tm = problem.init_theta_m();
        (problem, tj, tm)
    }

    fn quick(method: HypergradMethod, outer: usize) -> BismoConfig {
        BismoConfig {
            outer_steps: outer,
            unroll_t: 2,
            xi_j: 0.1,
            xi_m: 0.2,
            method,
            kind_m: OptimizerKind::Adam,
            kind_j: OptimizerKind::Adam,
            hvp_eps: 1e-2,
            stop: None,
        }
    }

    #[test]
    fn fd_reduces_loss() {
        let (problem, tj, tm) = fixtures();
        let out = run_bismo(&problem, &tj, &tm, quick(HypergradMethod::FiniteDiff, 5)).unwrap();
        assert_eq!(out.trace.len(), 5);
        assert!(out.trace.final_loss().unwrap() < out.trace.records()[0].loss);
    }

    #[test]
    fn neumann_reduces_loss() {
        let (problem, tj, tm) = fixtures();
        let out = run_bismo(
            &problem,
            &tj,
            &tm,
            quick(HypergradMethod::Neumann { k: 2 }, 4),
        )
        .unwrap();
        assert!(out.trace.final_loss().unwrap() < out.trace.records()[0].loss);
    }

    #[test]
    fn cg_reduces_loss() {
        let (problem, tj, tm) = fixtures();
        let out = run_bismo(
            &problem,
            &tj,
            &tm,
            quick(HypergradMethod::ConjGrad { k: 2 }, 4),
        )
        .unwrap();
        assert!(out.trace.final_loss().unwrap() < out.trace.records()[0].loss);
    }

    #[test]
    fn neumann_with_k0_matches_fd() {
        // §3.2.4: "When K = 0, ∇ L^NMN reduces to match ∇ L^FD".
        let (problem, tj, tm) = fixtures();
        let fd = run_bismo(&problem, &tj, &tm, quick(HypergradMethod::FiniteDiff, 3)).unwrap();
        let nmn = run_bismo(
            &problem,
            &tj,
            &tm,
            quick(HypergradMethod::Neumann { k: 0 }, 3),
        )
        .unwrap();
        for (a, b) in fd.theta_m.as_slice().iter().zip(nmn.theta_m.as_slice()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        for (a, b) in fd.theta_j.iter().zip(&nmn.theta_j) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn both_parameter_blocks_move() {
        let (problem, tj, tm) = fixtures();
        let out = run_bismo(&problem, &tj, &tm, quick(HypergradMethod::FiniteDiff, 2)).unwrap();
        let dj: f64 = out
            .theta_j
            .iter()
            .zip(&tj)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let dm: f64 = out
            .theta_m
            .as_slice()
            .iter()
            .zip(tm.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dj > 0.0 && dm > 0.0);
    }

    #[test]
    fn hvp_is_approximately_symmetric() {
        // ⟨u, Hv⟩ ≈ ⟨Hu, v⟩ for the SO Hessian.
        let (problem, tj, tm) = fixtures();
        let nj2 = tj.len();
        let u: Vec<f64> = (0..nj2)
            .map(|i| ((i * 13 % 7) as f64 - 3.0) / 7.0)
            .collect();
        let v: Vec<f64> = (0..nj2)
            .map(|i| ((i * 5 % 11) as f64 - 5.0) / 11.0)
            .collect();
        let hu = hvp(&problem, &tj, &tm, &u, 1e-2).unwrap();
        let hv = hvp(&problem, &tj, &tm, &v, 1e-2).unwrap();
        let uhv: f64 = u.iter().zip(&hv).map(|(a, b)| a * b).sum();
        let vhu: f64 = v.iter().zip(&hu).map(|(a, b)| a * b).sum();
        let scale = uhv.abs().max(vhu.abs()).max(1e-12);
        assert!(
            (uhv - vhu).abs() / scale < 5e-2,
            "asymmetry: {uhv} vs {vhu}"
        );
    }

    #[test]
    fn hvp_of_zero_vector_is_zero() {
        let (problem, tj, tm) = fixtures();
        let z = vec![0.0; tj.len()];
        let hz = hvp(&problem, &tj, &tm, &z, 1e-2).unwrap();
        assert!(hz.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn done_converged_is_terminal_and_freezes_both_blocks() {
        // Regression: a post-Done step used to re-run the inner unroll,
        // silently moving θ_J.
        use crate::solver::SolverConfig;
        let (problem, tj, tm) = fixtures();
        let mut cfg = SolverConfig::default();
        cfg.bismo.outer_steps = 30;
        cfg.stop = Some(StopRule {
            window: 1,
            rel_tol: 1.0, // plateaus as soon as two records exist
        });
        let mut solver = BismoSolver::new(&problem, HypergradMethod::FiniteDiff, &cfg);
        let mut state = SolverState::new(tj, tm);
        assert_eq!(
            solver.step(&problem, &mut state).unwrap(),
            StepOutcome::Running
        );
        assert_eq!(
            solver.step(&problem, &mut state).unwrap(),
            StepOutcome::Done(StopReason::Converged)
        );
        let len = state.trace.len();
        let tj_bits: Vec<u64> = state.theta_j.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            solver.step(&problem, &mut state).unwrap(),
            StepOutcome::Done(StopReason::Converged)
        );
        assert_eq!(state.trace.len(), len);
        let tj_after: Vec<u64> = state.theta_j.iter().map(|x| x.to_bits()).collect();
        assert_eq!(tj_bits, tj_after, "θ_J must not move after Done");
    }

    #[test]
    fn method_names_match_paper_labels() {
        assert_eq!(HypergradMethod::FiniteDiff.name(), "BiSMO-FD");
        assert_eq!(HypergradMethod::Neumann { k: 5 }.name(), "BiSMO-NMN");
        assert_eq!(HypergradMethod::ConjGrad { k: 5 }.name(), "BiSMO-CG");
    }
}
