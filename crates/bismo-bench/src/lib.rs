//! # bismo-bench
//!
//! Experiment harness for the BiSMO reproduction: shared scale presets,
//! method runners and table formatting used by the `table*`/`fig*` binaries
//! (one binary per table/figure of the paper — see DESIGN.md §5).
//!
//! Scales are selected with the `BISMO_SCALE` environment variable:
//! `quick` (smoke-test, seconds), `default` (minutes, the documented
//! numbers in EXPERIMENTS.md), or `paper` (hours on one CPU core; closest
//! to the paper's 2048² / N_j = 35 setup).
//!
//! Suite sweeps run on the parallel [`SuiteSweep`] runner (DESIGN.md §7):
//! `BISMO_JOBS` sets the worker count (default: all cores), results are
//! streamed to `bench_results/BENCH_suite.json` and interrupted sweeps
//! resume from it, and per-item failures are recorded instead of aborting
//! the sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bismo_core::{
    measure, ConvergenceTrace, EpeSpec, MetricSet, SmoOutcome, SmoProblem, SmoSettings,
    SolverConfig, SolverRegistry, StopRule,
};
use bismo_litho::{AbbeImager, LithoError};
use bismo_optics::{OpticalConfig, SourceShape};

mod runner;

pub use bismo_layout::{Clip, Suite, SuiteKind};
pub use runner::{
    par_map, ItemOutcome, ItemRecord, RunnerOptions, SuiteReport, SuiteSweep, WorkItem,
};

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (used by integration tests).
    Quick,
    /// The documented default (minutes on one core).
    Default,
    /// Paper-proportioned grids (hours on one core).
    Paper,
}

impl Scale {
    /// Parses a `BISMO_SCALE` value, case-insensitively. `None` (variable
    /// unset) and the empty string select [`Scale::Default`]; anything else
    /// that is not a valid scale name is an error — silently mapping typos
    /// (`Quick`, `qiuck`) to the default would turn an intended
    /// seconds-long smoke run into minutes or hours.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending value and listing the valid
    /// ones.
    pub fn parse(raw: Option<&str>) -> Result<Scale, String> {
        let Some(raw) = raw else {
            return Ok(Scale::Default);
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "" => Ok(Scale::Default),
            "quick" => Ok(Scale::Quick),
            "default" => Ok(Scale::Default),
            "paper" => Ok(Scale::Paper),
            other => Err(format!(
                "unrecognized BISMO_SCALE value {other:?}; valid values are \
                 \"quick\", \"default\", \"paper\" (case-insensitive), or unset \
                 for the default"
            )),
        }
    }

    /// Reads `BISMO_SCALE` (`quick` / `default` / `paper`, case-insensitive),
    /// defaulting to [`Scale::Default`] when unset or empty.
    ///
    /// # Panics
    ///
    /// Fails fast on an unrecognized value (see [`Scale::parse`]) instead of
    /// silently running at the wrong scale.
    pub fn from_env() -> Scale {
        match Scale::parse(std::env::var("BISMO_SCALE").ok().as_deref()) {
            Ok(scale) => scale,
            // PANIC-OK: fail-fast env-knob contract (§7) — a malformed knob aborts listing the valid values instead of silently defaulting.
            Err(msg) => panic!("{msg}"),
        }
    }
}

/// Everything a harness binary needs: optical config, objective settings,
/// per-suite clip counts and the layered solver configuration every method
/// runs under.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Optical configuration at the chosen scale.
    pub optical: OpticalConfig,
    /// Objective settings (paper §4 hyperparameters).
    pub settings: SmoSettings,
    /// Clips evaluated per suite.
    pub clips_per_suite: usize,
    /// Per-method budgets and shared knobs, fed to the solver registry
    /// (env-overridable: `BISMO_HYPERGRAD_K`, `BISMO_OPTIMIZER`).
    pub solver: SolverConfig,
    /// EPE measurement parameters.
    pub epe: EpeSpec,
}

impl Harness {
    /// Builds the harness for a scale preset.
    ///
    /// # Panics
    ///
    /// Panics if the preset's optical configuration fails validation (a
    /// build-time bug, not a runtime condition), or on an invalid solver
    /// env override (see [`SolverConfig::from_env`]).
    pub fn new(scale: Scale) -> Harness {
        let (mask_dim, pixel_nm, source_dim, clips, mo_steps, am_rounds, am_phase, outer) =
            match scale {
                Scale::Quick => (64, 16.0, 7, 1, 20, 5, 15, 48),
                Scale::Default => (128, 16.0, 9, 2, 80, 8, 30, 80),
                Scale::Paper => (256, 8.0, 15, 10, 100, 10, 40, 100),
            };
        let optical = OpticalConfig::builder()
            .mask_dim(mask_dim)
            .pixel_nm(pixel_nm)
            .source_dim(source_dim)
            .build()
            // PANIC-OK: presets are compile-time constants validated by test; failure is a build bug, not runtime input.
            .expect("preset optical config is valid");
        let epe = EpeSpec {
            threshold_nm: 1.25 * pixel_nm,
            stride_px: 4,
            search_px: 8,
        };
        let mut solver = SolverConfig::from_env();
        solver.stop = Some(StopRule::harness_default());
        solver.mo.steps = mo_steps;
        solver.am.rounds = am_rounds;
        solver.am.so_steps = am_phase;
        solver.am.mo_steps = am_phase;
        solver.am.phase_stop = Some(StopRule {
            window: 4,
            rel_tol: 1e-3,
        });
        solver.bismo.outer_steps = outer;
        Harness {
            optical,
            settings: SmoSettings::default(),
            clips_per_suite: clips,
            solver,
            epe,
        }
    }

    /// The annular template of the paper's §4 setup.
    pub fn template(&self) -> SourceShape {
        SourceShape::Annular {
            sigma_in: self.optical.sigma_in(),
            sigma_out: self.optical.sigma_out(),
        }
    }

    /// Generates the evaluation clips for one suite at this scale.
    pub fn suite(&self, kind: SuiteKind) -> Suite {
        Suite::generate(kind, &self.optical, self.clips_per_suite)
    }
}

/// One method column of Table 3 / Table 4 — a thin, copyable handle onto a
/// [`SolverRegistry`] entry. The roster is **derived from the registry**
/// ([`Method::all`]), so a method added there lands in every sweep without
/// touching this crate; the named constants below are convenience handles
/// for the paper's eight columns (each verified against the registry by
/// test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Method(&'static str);

impl Method {
    /// NILT [7] proxy (Hopkins, coarse Q, no PVB).
    pub const NILT: Method = Method("NILT");
    /// DAC23-MILT [10] proxy (Hopkins, Q = 24, PVB, two-level schedule).
    pub const MILT: Method = Method("DAC23-MILT");
    /// Our Abbe-model mask-only optimization.
    pub const ABBE_MO: Method = Method("Abbe-MO");
    /// AM-SMO with Abbe SO + Hopkins MO [13].
    pub const AM_HYBRID: Method = Method("AM(A~H)");
    /// AM-SMO with Abbe for both phases [12].
    pub const AM_ABBE: Method = Method("AM(A~A)");
    /// BiSMO with the finite-difference hypergradient.
    pub const BISMO_FD: Method = Method("BiSMO-FD");
    /// BiSMO with the conjugate-gradient hypergradient.
    pub const BISMO_CG: Method = Method("BiSMO-CG");
    /// BiSMO with the Neumann-series hypergradient.
    pub const BISMO_NMN: Method = Method("BiSMO-NMN");

    /// All registered methods in the registry's (= the paper's) column
    /// order. Registry-derived, so the roster can never silently drop an
    /// entry the way a hand-maintained fixed-arity array could.
    pub fn all() -> Vec<Method> {
        SolverRegistry::builtin().names().map(Method).collect()
    }

    /// Column label matching the paper (the registry key).
    pub fn name(&self) -> &'static str {
        self.0
    }

    /// Whether this method optimizes the source at all.
    pub fn optimizes_source(&self) -> bool {
        SolverRegistry::builtin()
            .get(self.0)
            .is_some_and(bismo_core::SolverSpec::optimizes_source)
    }

    /// Inverse of [`Method::name`] (case-insensitive, returning the
    /// canonical handle), used when reloading journaled records.
    pub fn from_name(name: &str) -> Option<Method> {
        SolverRegistry::builtin()
            .get(name)
            .map(|spec| Method(spec.name()))
    }
}

/// Outcome of one (method, clip) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// §2.2 metrics at the final parameters.
    pub metrics: MetricSet,
    /// Wall-clock seconds (turnaround time).
    pub wall_s: f64,
    /// Per-update loss trace.
    pub trace: ConvergenceTrace,
}

/// Runs one method on one clip, building a fresh imaging engine. Sweeps
/// over many cells should build one engine per [`OpticalConfig`] and use
/// [`run_method_with_engine`] instead (the suite runner does).
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_method(h: &Harness, method: Method, clip: &Clip) -> Result<RunResult, LithoError> {
    let engine = AbbeImager::new(&h.optical)?.with_threads(h.settings.threads);
    run_method_with_engine(h, &engine, method, clip)
}

/// Runs one method on one clip over a shared Abbe engine and measures the
/// §2.2 metrics (always with the Abbe engine, so Hopkins-based methods are
/// scored on the ground-truth imaging model).
///
/// Dispatch is one registry lookup: the method name selects the solver, the
/// harness's [`SolverConfig`] carries every budget, and the session applies
/// the Table 1 initialization (θ_M from the clip target, θ_J from the
/// configuration's annular template — exactly [`Harness::template`]).
///
/// Cloning `engine` shares its immutable [`bismo_optics::ImagingCore`]
/// (pupil, shifted-pupil table, FFT plan) and its warm workspace pool, so
/// the per-cell construction cost is just the resist model and a target
/// copy; Hopkins-based methods additionally reuse the core's table for
/// their TCC builds (lazily, at their first session step).
///
/// # Errors
///
/// Propagates imaging failures.
///
/// # Panics
///
/// Panics if `method` no longer resolves in the registry — a harness bug
/// (methods come from [`Method::all`]), not a run outcome.
pub fn run_method_with_engine(
    h: &Harness,
    engine: &AbbeImager,
    method: Method,
    clip: &Clip,
) -> Result<RunResult, LithoError> {
    let (problem, out) = optimize_method_with_engine(h, engine, method, clip)?;
    let metrics = measure(&problem, &out.theta_j, &out.theta_m, h.epe)?;
    Ok(RunResult {
        metrics,
        wall_s: out.wall_s,
        trace: out.trace,
    })
}

/// The optimization half of [`run_method_with_engine`]: runs the method's
/// session on the clip and returns the problem plus the raw solver outcome
/// **without** measuring §2.2 metrics. The suite runner's cell-batched path
/// uses this to collect a whole cell's final parameters first and then
/// evaluate all of their dose corners through one fused
/// [`bismo_core::measure_batch`] call.
///
/// # Errors
///
/// Propagates imaging failures.
///
/// # Panics
///
/// Panics if `method` no longer resolves in the registry (see
/// [`run_method_with_engine`]).
pub fn optimize_method_with_engine(
    h: &Harness,
    engine: &AbbeImager,
    method: Method,
    clip: &Clip,
) -> Result<(SmoProblem, SmoOutcome), LithoError> {
    let problem =
        SmoProblem::from_backend(engine.clone(), h.settings.clone(), clip.target.clone())?;
    let mut session = SolverRegistry::builtin()
        .session(method.name(), &problem, &h.solver)
        // PANIC-OK: harness construction — a method that cannot construct must fail the bench loudly (solver_smoke gates this in CI).
        .unwrap_or_else(|e| panic!("constructing solver {:?}: {e}", method.name()));
    session.run()?;
    let out = session.into_outcome();
    Ok((problem, out))
}

/// Per-suite aggregate of one method across clips.
#[derive(Debug, Clone)]
pub struct MethodAggregate {
    /// The method.
    pub method: Method,
    /// Average L2 in nm².
    pub l2: f64,
    /// Average PVB in nm².
    pub pvb: f64,
    /// Average EPE violation count.
    pub epe: f64,
    /// Average turnaround time in seconds.
    pub tat: f64,
}

/// All methods aggregated over one suite's clips.
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// The suite.
    pub kind: SuiteKind,
    /// Per-method aggregates, in the sweep's method order ([`Method::all`]
    /// for the full comparison).
    pub methods: Vec<MethodAggregate>,
}

/// Renders an aligned plain-text table (the format every harness binary
/// prints). Degenerate input (no headers) renders as the empty string.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    if ncols == 0 {
        return String::new();
    }
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Output directory for harness artifacts (CSV series, PGM panels),
/// created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("bench_results");
    // PANIC-OK: documented `# Panics` — the harness's own artifact dir being unwritable is an environment failure.
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_valid_harnesses() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let h = Harness::new(scale);
            assert!(h.optical.pupil_radius_bins() >= 1.0);
            assert!(h.clips_per_suite >= 1);
        }
    }

    #[test]
    fn method_roster_matches_paper_columns() {
        let names: Vec<&str> = Method::all().iter().map(Method::name).collect();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"BiSMO-NMN"));
        assert!(!Method::ABBE_MO.optimizes_source());
        assert!(Method::BISMO_FD.optimizes_source());
        for m in Method::all() {
            assert_eq!(Method::from_name(m.name()), Some(m));
        }
        assert_eq!(Method::from_name("bogus"), None);
    }

    #[test]
    fn method_constants_resolve_in_the_registry() {
        // The named handles are conveniences; the registry is the roster.
        let consts = [
            Method::NILT,
            Method::MILT,
            Method::ABBE_MO,
            Method::AM_HYBRID,
            Method::AM_ABBE,
            Method::BISMO_FD,
            Method::BISMO_CG,
            Method::BISMO_NMN,
        ];
        assert_eq!(Method::all(), consts.to_vec());
        for m in consts {
            assert_eq!(Method::from_name(m.name()), Some(m), "{:?}", m.name());
        }
        // Journal resume tolerates case drift but returns the canonical name.
        assert_eq!(Method::from_name("bismo-nmn"), Some(Method::BISMO_NMN));
    }

    #[test]
    fn scale_parse_is_case_insensitive_and_strict() {
        assert_eq!(Scale::parse(None), Ok(Scale::Default));
        assert_eq!(Scale::parse(Some("")), Ok(Scale::Default));
        assert_eq!(Scale::parse(Some("quick")), Ok(Scale::Quick));
        assert_eq!(Scale::parse(Some("Quick")), Ok(Scale::Quick));
        assert_eq!(Scale::parse(Some(" PAPER ")), Ok(Scale::Paper));
        assert_eq!(Scale::parse(Some("Default")), Ok(Scale::Default));
        // Typos must fail fast, not silently select the slow default.
        let err = Scale::parse(Some("qiuck")).unwrap_err();
        assert!(err.contains("qiuck") && err.contains("quick"), "{err}");
        assert!(Scale::parse(Some("2")).is_err());
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bb"));
    }

    #[test]
    fn table_formatting_handles_degenerate_input() {
        // Regression: `2 * (ncols - 1)` underflowed usize on empty headers.
        assert_eq!(format_table(&[], &[]), "");
        assert_eq!(format_table(&[], &[vec!["orphan".into()]]), "");
        // A single column has no separators and must not underflow either.
        let one = format_table(&["only".into()], &[vec!["1".into()]]);
        assert!(one.starts_with("only\n"));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn quick_scale_method_runs_end_to_end() {
        let h = Harness::new(Scale::Quick);
        let clip = Clip::simple_rect(&h.optical);
        let r = run_method(&h, Method::BISMO_FD, &clip).unwrap();
        assert!(r.metrics.l2_nm2.is_finite());
        assert!(!r.trace.is_empty());
    }
}
