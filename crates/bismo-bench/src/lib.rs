//! # bismo-bench
//!
//! Experiment harness for the BiSMO reproduction: shared scale presets,
//! method runners and table formatting used by the `table*`/`fig*` binaries
//! (one binary per table/figure of the paper — see DESIGN.md §5).
//!
//! Scales are selected with the `BISMO_SCALE` environment variable:
//! `quick` (smoke-test, seconds), `default` (minutes, the documented
//! numbers in EXPERIMENTS.md), or `paper` (hours on one CPU core; closest
//! to the paper's 2048² / N_j = 35 setup).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use bismo_core::{
    measure, run_abbe_mo, run_am_smo, run_bismo, run_milt_proxy, run_nilt_proxy, AmSmoConfig,
    BismoConfig, ConvergenceTrace, EpeSpec, HypergradMethod, MetricSet, MoConfig, MoModel,
    SmoProblem, SmoSettings, StopRule,
};
use bismo_litho::LithoError;
use bismo_opt::OptimizerKind;
use bismo_optics::{OpticalConfig, SourceShape};

pub use bismo_layout::{Clip, Suite, SuiteKind};

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (used by integration tests).
    Quick,
    /// The documented default (minutes on one core).
    Default,
    /// Paper-proportioned grids (hours on one core).
    Paper,
}

impl Scale {
    /// Reads `BISMO_SCALE` (`quick` / `default` / `paper`), defaulting to
    /// [`Scale::Default`].
    pub fn from_env() -> Scale {
        match std::env::var("BISMO_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }
}

/// Everything a harness binary needs: optical config, objective settings,
/// per-suite clip counts and per-method budgets.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Optical configuration at the chosen scale.
    pub optical: OpticalConfig,
    /// Objective settings (paper §4 hyperparameters).
    pub settings: SmoSettings,
    /// Clips evaluated per suite.
    pub clips_per_suite: usize,
    /// Budget for mask-only baselines.
    pub mo_steps: usize,
    /// AM-SMO rounds and per-phase steps.
    pub am_rounds: usize,
    /// AM-SMO SO/MO steps per round.
    pub am_phase_steps: usize,
    /// BiSMO outer-step budget.
    pub bismo_outer: usize,
    /// Shared early-stopping rule (`None` for fixed budgets).
    pub stop: Option<StopRule>,
    /// EPE measurement parameters.
    pub epe: EpeSpec,
}

impl Harness {
    /// Builds the harness for a scale preset.
    ///
    /// # Panics
    ///
    /// Panics if the preset's optical configuration fails validation (a
    /// build-time bug, not a runtime condition).
    pub fn new(scale: Scale) -> Harness {
        let (mask_dim, pixel_nm, source_dim, clips, mo_steps, am_rounds, am_phase, outer) =
            match scale {
                Scale::Quick => (64, 16.0, 7, 1, 20, 5, 15, 48),
                Scale::Default => (128, 16.0, 9, 2, 80, 8, 30, 80),
                Scale::Paper => (256, 8.0, 15, 10, 100, 10, 40, 100),
            };
        let optical = OpticalConfig::builder()
            .mask_dim(mask_dim)
            .pixel_nm(pixel_nm)
            .source_dim(source_dim)
            .build()
            .expect("preset optical config is valid");
        let epe = EpeSpec {
            threshold_nm: 1.25 * pixel_nm,
            stride_px: 4,
            search_px: 8,
        };
        Harness {
            optical,
            settings: SmoSettings::default(),
            clips_per_suite: clips,
            mo_steps,
            am_rounds,
            am_phase_steps: am_phase,
            bismo_outer: outer,
            stop: Some(StopRule::harness_default()),
            epe,
        }
    }

    /// The annular template of the paper's §4 setup.
    pub fn template(&self) -> SourceShape {
        SourceShape::Annular {
            sigma_in: self.optical.sigma_in(),
            sigma_out: self.optical.sigma_out(),
        }
    }

    /// Generates the evaluation clips for one suite at this scale.
    pub fn suite(&self, kind: SuiteKind) -> Suite {
        Suite::generate(kind, &self.optical, self.clips_per_suite)
    }
}

/// The eight method columns of Table 3 / Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// NILT [7] proxy (Hopkins, coarse Q, no PVB).
    Nilt,
    /// DAC23-MILT [10] proxy (Hopkins, Q = 24, PVB, two-level schedule).
    Milt,
    /// Our Abbe-model mask-only optimization.
    AbbeMo,
    /// AM-SMO with Abbe SO + Hopkins MO [13].
    AmHybrid,
    /// AM-SMO with Abbe for both phases [12].
    AmAbbe,
    /// BiSMO with the finite-difference hypergradient.
    BismoFd,
    /// BiSMO with the conjugate-gradient hypergradient.
    BismoCg,
    /// BiSMO with the Neumann-series hypergradient.
    BismoNmn,
}

impl Method {
    /// All methods in the paper's column order.
    pub fn all() -> [Method; 8] {
        [
            Method::Nilt,
            Method::Milt,
            Method::AbbeMo,
            Method::AmHybrid,
            Method::AmAbbe,
            Method::BismoFd,
            Method::BismoCg,
            Method::BismoNmn,
        ]
    }

    /// Column label matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Nilt => "NILT",
            Method::Milt => "DAC23-MILT",
            Method::AbbeMo => "Abbe-MO",
            Method::AmHybrid => "AM(A~H)",
            Method::AmAbbe => "AM(A~A)",
            Method::BismoFd => "BiSMO-FD",
            Method::BismoCg => "BiSMO-CG",
            Method::BismoNmn => "BiSMO-NMN",
        }
    }

    /// Whether this method optimizes the source at all.
    pub fn optimizes_source(&self) -> bool {
        !matches!(self, Method::Nilt | Method::Milt | Method::AbbeMo)
    }
}

/// Outcome of one (method, clip) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// §2.2 metrics at the final parameters.
    pub metrics: MetricSet,
    /// Wall-clock seconds (turnaround time).
    pub wall_s: f64,
    /// Per-update loss trace.
    pub trace: ConvergenceTrace,
}

/// Runs one method on one clip and measures the §2.2 metrics (always with
/// the Abbe engine, so Hopkins-based methods are scored on the ground-truth
/// imaging model).
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_method(h: &Harness, method: Method, clip: &Clip) -> Result<RunResult, LithoError> {
    let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())?;
    let theta_j0 = problem.init_theta_j(h.template());
    let theta_m0 = problem.init_theta_m();
    let template_source = problem.source(&theta_j0);

    let mo_cfg = MoConfig {
        steps: h.mo_steps,
        lr: 0.1,
        kind: OptimizerKind::Adam,
        stop: h.stop,
    };
    let start = Instant::now();
    let (theta_j, theta_m, trace, wall_s) = match method {
        Method::Nilt => {
            let out = run_nilt_proxy(
                &h.optical,
                &h.settings,
                &clip.target,
                &template_source,
                mo_cfg,
            )?;
            (theta_j0.clone(), out.theta_m, out.trace, out.wall_s)
        }
        Method::Milt => {
            let out = run_milt_proxy(
                &h.optical,
                &h.settings,
                &clip.target,
                &template_source,
                mo_cfg,
            )?;
            (theta_j0.clone(), out.theta_m, out.trace, out.wall_s)
        }
        Method::AbbeMo => {
            let out = run_abbe_mo(&problem, &theta_j0, &theta_m0, mo_cfg)?;
            (theta_j0.clone(), out.theta_m, out.trace, out.wall_s)
        }
        Method::AmHybrid | Method::AmAbbe => {
            let mo_model = if method == Method::AmHybrid {
                MoModel::Hopkins { q: 24 }
            } else {
                MoModel::Abbe
            };
            let out = run_am_smo(
                &problem,
                &theta_j0,
                &theta_m0,
                AmSmoConfig {
                    rounds: h.am_rounds,
                    so_steps: h.am_phase_steps,
                    mo_steps: h.am_phase_steps,
                    lr: 0.1,
                    kind: OptimizerKind::Adam,
                    mo_model,
                    stop: h.stop,
                    phase_stop: Some(StopRule {
                        window: 4,
                        rel_tol: 1e-3,
                    }),
                },
            )?;
            (out.theta_j, out.theta_m, out.trace, out.wall_s)
        }
        Method::BismoFd | Method::BismoCg | Method::BismoNmn => {
            let hg = match method {
                Method::BismoFd => HypergradMethod::FiniteDiff,
                Method::BismoCg => HypergradMethod::ConjGrad { k: 5 },
                _ => HypergradMethod::Neumann { k: 5 },
            };
            let out = run_bismo(
                &problem,
                &theta_j0,
                &theta_m0,
                BismoConfig {
                    outer_steps: h.bismo_outer,
                    method: hg,
                    stop: h.stop,
                    ..BismoConfig::default()
                },
            )?;
            (out.theta_j, out.theta_m, out.trace, out.wall_s)
        }
    };
    let _ = start;
    let metrics = measure(&problem, &theta_j, &theta_m, h.epe)?;
    Ok(RunResult {
        metrics,
        wall_s,
        trace,
    })
}

/// Per-suite aggregate of one method across clips.
#[derive(Debug, Clone)]
pub struct MethodAggregate {
    /// The method.
    pub method: Method,
    /// Average L2 in nm².
    pub l2: f64,
    /// Average PVB in nm².
    pub pvb: f64,
    /// Average EPE violation count.
    pub epe: f64,
    /// Average turnaround time in seconds.
    pub tat: f64,
}

/// All methods aggregated over one suite's clips.
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// The suite.
    pub kind: SuiteKind,
    /// Per-method aggregates, in [`Method::all`] order.
    pub methods: Vec<MethodAggregate>,
}

/// Runs every method on every clip of every suite — the computation behind
/// Tables 3 and 4. Progress is logged to stderr.
///
/// # Errors
///
/// Propagates imaging failures.
pub fn run_full_comparison(h: &Harness) -> Result<Vec<SuiteComparison>, LithoError> {
    let mut out = Vec::new();
    for kind in SuiteKind::all() {
        let suite = h.suite(kind);
        let mut methods = Vec::new();
        for method in Method::all() {
            let mut l2 = Vec::new();
            let mut pvb = Vec::new();
            let mut epe = Vec::new();
            let mut tat = Vec::new();
            for clip in suite.clips() {
                eprintln!("[{}] {} on {}", kind.name(), method.name(), clip.name);
                let r = run_method(h, method, clip)?;
                l2.push(r.metrics.l2_nm2);
                pvb.push(r.metrics.pvb_nm2);
                epe.push(r.metrics.epe as f64);
                tat.push(r.wall_s);
            }
            methods.push(MethodAggregate {
                method,
                l2: mean(&l2),
                pvb: mean(&pvb),
                epe: mean(&epe),
                tat: mean(&tat),
            });
        }
        out.push(SuiteComparison { kind, methods });
    }
    Ok(out)
}

/// Renders an aligned plain-text table (the format every harness binary
/// prints).
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Output directory for harness artifacts (CSV series, PGM panels),
/// created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_valid_harnesses() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let h = Harness::new(scale);
            assert!(h.optical.pupil_radius_bins() >= 1.0);
            assert!(h.clips_per_suite >= 1);
        }
    }

    #[test]
    fn method_roster_matches_paper_columns() {
        let names: Vec<&str> = Method::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"BiSMO-NMN"));
        assert!(!Method::AbbeMo.optimizes_source());
        assert!(Method::BismoFd.optimizes_source());
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bb"));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn quick_scale_method_runs_end_to_end() {
        let h = Harness::new(Scale::Quick);
        let clip = Clip::simple_rect(&h.optical);
        let r = run_method(&h, Method::BismoFd, &clip).unwrap();
        assert!(r.metrics.l2_nm2.is_finite());
        assert!(!r.trace.is_empty());
    }
}
