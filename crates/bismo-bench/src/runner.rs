//! Parallel suite execution runner (DESIGN.md §7).
//!
//! The paper's headline evaluation (Tables 3/4) sweeps every method over
//! every clip of every suite — hundreds of independent (method, clip) cells
//! at ISPD19 scale. [`SuiteSweep`] fans those cells across a scoped worker
//! pool whose size comes from `BISMO_JOBS` (default: all cores), with the
//! per-configuration imaging state ([`bismo_optics::ImagingCore`]: pupil,
//! shifted-pupil table, FFT plan) built **once** and shared read-only by
//! every worker instead of being rebuilt per cell.
//!
//! Guarantees:
//!
//! * **Determinism** — results are merged in work-item order (DESIGN.md §6
//!   rule 3 applied one level up), so metric aggregates are byte-identical
//!   regardless of the worker count.
//! * **Failure isolation** — a cell that fails ([`bismo_litho::LithoError`])
//!   is recorded as data and the sweep continues; one bad clip no longer
//!   aborts an hours-long run.
//! * **Resumability** — every finished cell is streamed as one JSONL line to
//!   the journal (`bench_results/BENCH_suite.json` by default), followed by
//!   a final aggregate line. An interrupted sweep (journal without the
//!   aggregate line) resumes by skipping already-recorded cells; a completed
//!   journal is started over.
//! * **Honest timing** — each cell's turnaround time comes from its own
//!   clock (so it includes engine/problem construction and metric
//!   evaluation, and reflects contention), alongside the sweep's aggregate
//!   wall time.
//! * **Cell batching** — where the method permits (it never optimizes the
//!   source, so every clip of a (suite, method) cell shares the template
//!   illumination), the cell's dose-corner metric images run as **one**
//!   fused [`bismo_core::measure_batch`] backend call
//!   (`BISMO_BATCH_CELLS`, default on; bit-identical metrics — DESIGN.md
//!   §9).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bismo_core::{measure, measure_batch, SmoOutcome, SmoProblem};
use bismo_litho::AbbeImager;
use bismo_optics::{ImagingCore, RealField};

use crate::{
    mean, optimize_method_with_engine, run_method_with_engine, Clip, Harness, Method,
    MethodAggregate, SuiteComparison, SuiteKind,
};

/// Runs `f` over `items` on `jobs` scoped worker threads and returns the
/// results **in item order** regardless of completion order — the generic
/// deterministic fan-out the suite runner and the ablation harness share.
/// `f` receives `(item index, item)`.
///
/// With `jobs <= 1` (or a single item) everything runs on the caller's
/// thread, which keeps sequential runs bit-for-bit reproducible without a
/// pool.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                // PANIC-OK: poison implies a sibling worker panicked; the scope re-raises that panic at join, so this is unreachable-but-honest.
                done.lock().expect("par_map results poisoned").push((i, r));
            });
        }
    });
    // PANIC-OK: poison implies a sibling worker panicked; the scope re-raises that panic at join, so this is unreachable-but-honest.
    let mut done = done.into_inner().expect("par_map results poisoned");
    done.sort_unstable_by_key(|(i, _)| *i);
    done.into_iter().map(|(_, r)| r).collect()
}

/// One (suite, method, clip) cell of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// The suite the clip belongs to.
    pub suite: SuiteKind,
    /// The method column.
    pub method: Method,
    /// Index of the clip within the suite's generated clip list.
    pub clip_index: usize,
}

/// What happened to one work item.
#[derive(Debug, Clone)]
pub enum ItemOutcome {
    /// The run finished and was measured.
    Ok {
        /// L2 in nm² (§2.2).
        l2_nm2: f64,
        /// PVB in nm².
        pvb_nm2: f64,
        /// EPE violation count.
        epe: f64,
        /// Final objective value from the convergence trace (γ·L2 + η·PVB
        /// in the solver's own units) — the figure the multigrid bench
        /// compares across `<method>` / `<method>@mg` columns. `NaN` when
        /// the trace was empty or the journal predates the field.
        final_loss: f64,
        /// The optimization driver's own wall clock (excludes problem
        /// construction and metric evaluation).
        run_wall_s: f64,
    },
    /// The run failed; the sweep continued without it.
    Failed {
        /// Rendered [`bismo_litho::LithoError`].
        error: String,
    },
}

/// One journaled record: a work item plus its outcome and turnaround time.
#[derive(Debug, Clone)]
pub struct ItemRecord {
    /// The cell this record belongs to.
    pub item: WorkItem,
    /// Human-readable clip name (e.g. `ICCAD13/test3`).
    pub clip_name: String,
    /// Turnaround time from the item's own clock: problem construction,
    /// optimization and metric evaluation, as experienced under whatever
    /// worker contention the sweep ran with.
    pub tat_s: f64,
    /// Result or captured failure.
    pub outcome: ItemOutcome,
}

impl ItemRecord {
    /// Whether the item completed successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, ItemOutcome::Ok { .. })
    }
}

/// Execution knobs of a sweep, normally read from the environment.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker thread count.
    pub jobs: usize,
    /// JSONL journal path (`None` disables journaling and resume).
    pub journal: Option<PathBuf>,
    /// Append one deliberately failing clip to every suite — the
    /// failure-isolation smoke switch (`BISMO_INJECT_FAIL`).
    pub inject_failure: bool,
    /// Batch a cell's clips through one fused backend call where the method
    /// permits (`BISMO_BATCH_CELLS`, default on): methods that never touch
    /// the source end every clip of a (suite, method) cell at the same
    /// template illumination, so all the cell's dose-corner metric images
    /// run as a single `measure_batch` call. Results are bit-identical to
    /// per-clip measurement; a cell becomes one work unit for the pool.
    pub batch_cells: bool,
}

impl RunnerOptions {
    /// Reads `BISMO_JOBS` (positive integer; default
    /// `available_parallelism`) and `BISMO_INJECT_FAIL` (`1`/`true`/`yes`/
    /// `on` to enable), with the journal at its default
    /// `bench_results/BENCH_suite.json` location.
    ///
    /// # Panics
    ///
    /// Fails fast on a non-numeric or zero `BISMO_JOBS`, and on a
    /// `BISMO_INJECT_FAIL` value that is neither clearly true nor clearly
    /// false — `BISMO_INJECT_FAIL=false` must not silently poison a real
    /// sweep with broken clips (same strictness as `BISMO_SCALE`).
    pub fn from_env() -> RunnerOptions {
        let jobs = match std::env::var("BISMO_JOBS") {
            Err(_) => default_jobs(),
            Ok(v) if v.trim().is_empty() => default_jobs(),
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                // PANIC-OK: fail-fast env-knob contract (§7) — malformed BISMO_JOBS aborts with the expected form, never a silent default.
                _ => panic!(
                    "unrecognized BISMO_JOBS value {v:?}; expected a positive integer \
                     worker count (or unset for all cores)"
                ),
            },
        };
        let inject_failure = parse_env_bool("BISMO_INJECT_FAIL", false);
        let batch_cells = parse_env_bool("BISMO_BATCH_CELLS", true);
        RunnerOptions {
            jobs,
            journal: Some(crate::out_dir().join("BENCH_suite.json")),
            inject_failure,
            batch_cells,
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Disables journaling and resume (tests, throwaway runs).
    #[must_use]
    pub fn without_journal(mut self) -> Self {
        self.journal = None;
        self
    }

    /// Redirects the journal.
    #[must_use]
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Enables or disables cell batching (see
    /// [`RunnerOptions::batch_cells`]).
    #[must_use]
    pub fn with_cell_batching(mut self, on: bool) -> Self {
        self.batch_cells = on;
        self
    }
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            jobs: default_jobs(),
            journal: None,
            inject_failure: false,
            batch_cells: true,
        }
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Strict boolean env parsing shared by the runner's on/off switches: the
/// empty string and unset select `default`; anything that is not clearly
/// true or clearly false fails fast (same contract as `BISMO_SCALE`).
fn parse_env_bool(name: &str, default: bool) -> bool {
    // ENV-OK: generic strict boolean-knob reader — callers pass the BISMO_INJECT_FAIL / BISMO_BATCH_CELLS literals from the README table.
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" => default,
            "1" | "true" | "yes" | "on" => true,
            "0" | "false" | "no" | "off" => false,
            // PANIC-OK: fail-fast boolean-knob parse (§7) — malformed values abort listing the accepted forms.
            _ => panic!(
                "unrecognized {name} value {v:?}; expected 1/true/yes/on or \
                 0/false/no/off (or unset for the default)"
            ),
        },
    }
}

/// Result of a sweep: ordered per-item records plus the aggregates the
/// table binaries print.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// All records in work-item order (resumed and freshly executed alike).
    pub records: Vec<ItemRecord>,
    /// Per-suite, per-method aggregates over the successful items.
    pub comparisons: Vec<SuiteComparison>,
    /// Aggregate wall-clock seconds of this invocation.
    pub wall_s: f64,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Items executed by this invocation.
    pub executed: usize,
    /// Items skipped because the journal already recorded them.
    pub resumed: usize,
    /// Items whose outcome is a captured failure.
    pub failures: usize,
    /// Sum of the executed items' own turnaround times — the sequential
    /// cost this invocation actually paid, spread over the pool.
    pub total_item_s: f64,
}

impl SuiteReport {
    /// Executed item time divided by elapsed wall time (0 when nothing
    /// ran). On a machine with at least `jobs` free cores this **is** the
    /// aggregate wall-clock speedup over running the same items
    /// sequentially (per-item clocks then run uncontended, so their sum is
    /// the sequential cost). On an oversubscribed machine the per-item
    /// clocks stretch with the time-slicing and the ratio degrades to pool
    /// *occupancy* — it still shows the workers were busy, not that wall
    /// time dropped. Journaled as `"speedup"` in the aggregate line.
    pub fn speedup(&self) -> f64 {
        if self.wall_s > 0.0 && self.executed > 0 {
            self.total_item_s / self.wall_s
        } else {
            0.0
        }
    }

    /// One-line execution summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "{} items ({} executed, {} resumed, {} failed) on {} worker(s): \
             wall {:.2}s, item time {:.2}s, speedup {:.2}x \
             (item-time/wall; occupancy when cores < jobs)",
            self.records.len(),
            self.executed,
            self.resumed,
            self.failures,
            self.jobs,
            self.wall_s,
            self.total_item_s,
            self.speedup()
        )
    }
}

/// A planned sweep: harness, method columns and per-suite clip lists, all
/// materialized up front so the work-item order (suite → method → clip) is
/// fixed before any worker starts.
#[derive(Debug, Clone)]
pub struct SuiteSweep {
    harness: Harness,
    methods: Vec<Method>,
    suites: Vec<(SuiteKind, Vec<Clip>)>,
}

impl SuiteSweep {
    /// The full paper sweep: every method of [`Method::all`] on every clip
    /// of every suite at the harness's scale.
    pub fn new(h: &Harness) -> SuiteSweep {
        let suites = SuiteKind::all()
            .into_iter()
            .map(|kind| (kind, h.suite(kind).clips().to_vec()))
            .collect();
        SuiteSweep {
            harness: h.clone(),
            methods: Method::all(),
            suites,
        }
    }

    /// Restricts the sweep to the given method columns (kept in the given
    /// order).
    #[must_use]
    pub fn with_methods(mut self, methods: &[Method]) -> Self {
        self.methods = methods.to_vec();
        self
    }

    /// Restricts the sweep to the given suites, kept in the given order.
    /// Clip lists already generated (by [`SuiteSweep::new`]) are reused
    /// as-is — including any injected-failure clips — rather than
    /// regenerated.
    #[must_use]
    pub fn with_suites(mut self, kinds: &[SuiteKind]) -> Self {
        self.suites = kinds
            .iter()
            .map(|&kind| {
                self.suites
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .cloned()
                    .unwrap_or_else(|| (kind, self.harness.suite(kind).clips().to_vec()))
            })
            .collect();
        self
    }

    /// Appends one deliberately broken clip (a target on the wrong grid) to
    /// every suite. Every method fails on it with a shape error, which the
    /// runner must capture as data — the failure-isolation smoke test.
    #[must_use]
    pub fn with_injected_failure(mut self) -> Self {
        let bad_dim = (self.harness.optical.mask_dim() / 2).max(8);
        for (kind, clips) in &mut self.suites {
            clips.push(Clip {
                name: format!("{}/injected-failure", kind.name()),
                target: RealField::zeros(bad_dim),
                area_nm2: 0.0,
            });
        }
        self
    }

    /// Work items in the canonical deterministic order.
    fn items(&self) -> Vec<WorkItem> {
        let mut items = Vec::new();
        for (kind, clips) in &self.suites {
            for &method in &self.methods {
                for clip_index in 0..clips.len() {
                    items.push(WorkItem {
                        suite: *kind,
                        method,
                        clip_index,
                    });
                }
            }
        }
        items
    }

    /// Journal header for this sweep: grid dims, item count, and a
    /// fingerprint over everything that gives a journaled record its
    /// meaning — harness settings and budgets, method roster, suite kinds,
    /// clip names and clip **pixel data**. A journal written under different
    /// optimizer settings or a changed clip generator must not be resumed
    /// (its records would silently mix regimes), and the fingerprint is
    /// what catches that; `items` alone cannot.
    fn header_line(&self, items: usize) -> String {
        let mut canon = format!("{:?}", self.harness);
        for method in &self.methods {
            canon.push('|');
            canon.push_str(method.name());
        }
        let mut hash = fnv1a(canon.as_bytes());
        for (kind, clips) in &self.suites {
            hash ^= fnv1a(kind.name().as_bytes());
            for clip in clips {
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3) ^ fnv1a(clip.name.as_bytes());
                for &px in clip.target.as_slice() {
                    hash ^= px.to_bits();
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        format!(
            "{{\"type\":\"header\",\"mask_dim\":{},\"source_dim\":{},\"items\":{},\
             \"fingerprint\":\"{:016x}\"}}",
            self.harness.optical.mask_dim(),
            self.harness.optical.source_dim(),
            items,
            hash
        )
    }

    fn clip(&self, item: &WorkItem) -> &Clip {
        let (_, clips) = self
            .suites
            .iter()
            .find(|(kind, _)| *kind == item.suite)
            // PANIC-OK: WorkItems are only built from this sweep's own suites in items(); a miss is an internal indexing bug.
            .expect("work item references a suite of this sweep");
        &clips[item.clip_index]
    }

    /// Executes the sweep under `opts` (honoring `opts.inject_failure`) and
    /// returns the merged report. See the module docs for the determinism,
    /// failure-isolation and resume guarantees.
    ///
    /// # Panics
    ///
    /// Panics on journal I/O failures (a harness environment problem, not a
    /// run outcome) and if a worker thread panics.
    pub fn run(&self, opts: &RunnerOptions) -> SuiteReport {
        let injected;
        let sweep = if opts.inject_failure {
            injected = self.clone().with_injected_failure();
            &injected
        } else {
            self
        };
        sweep.run_prepared(opts)
    }

    fn run_prepared(&self, opts: &RunnerOptions) -> SuiteReport {
        let wall_start = Instant::now();
        let items = self.items();
        let header = self.header_line(items.len());

        // Resume: an interrupted journal (matching header, no aggregate
        // line) pre-fills slots; anything else starts a fresh journal.
        let mut slots: Vec<Option<ItemRecord>> = vec![None; items.len()];
        let mut resumed = 0usize;
        let journal = opts.journal.as_deref().map(|path| {
            let mut kept = Vec::new();
            for rec in load_resumable(path, &header).unwrap_or_default() {
                if let Some(pos) = items.iter().position(|it| *it == rec.item) {
                    if slots[pos].is_none() {
                        slots[pos] = Some(rec.clone());
                        kept.push(rec);
                        resumed += 1;
                    }
                }
            }
            open_journal(path, &header, &kept)
        });

        let pending: Vec<(usize, WorkItem)> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| (i, items[i]))
            .collect();

        // The shared immutable engine state: one core for the sweep, one
        // prototype engine cloned per cell (sharing the core and the warm
        // workspace pool). Skipped entirely when everything was resumed —
        // the table is seconds of work at paper scale.
        let engine = (!pending.is_empty()).then(|| {
            AbbeImager::from_core(Arc::new(
                // PANIC-OK: harness optical configs come from validated presets; documented panic policy on `run`.
                ImagingCore::new(&self.harness.optical).expect("harness optical config is valid"),
            ))
            .with_threads(self.harness.settings.threads)
        });

        // Pending items grouped into (suite, method) cells. The item order
        // is suite → method → clip, so pending cells are contiguous runs;
        // grouping preserves the canonical order exactly. A cell whose
        // method never touches the source can batch all of its clips'
        // metric evaluation through one fused backend call
        // (`measure_batch`), at the cost of the cell becoming one work unit
        // for the pool.
        // Only batchable items coalesce into cell groups; everything else
        // stays a singleton work unit, so per-clip parallelism is unchanged
        // for source-optimizing methods and with `BISMO_BATCH_CELLS=0`.
        let mut groups: Vec<Vec<(usize, WorkItem)>> = Vec::new();
        for &(pos, item) in &pending {
            // An item of the same cell as the previous group joins it only
            // when that cell can actually fuse; matching (suite, method)
            // means the group shares the item's coalescibility.
            let coalesce = opts.batch_cells && !item.method.optimizes_source();
            match groups.last_mut() {
                Some(group)
                    if coalesce
                        && group[0].1.suite == item.suite
                        && group[0].1.method == item.method =>
                {
                    group.push((pos, item));
                }
                _ => groups.push(vec![(pos, item)]),
            }
        }

        let group_records = par_map(opts.jobs, &groups, |_, group| {
            // PANIC-OK: the engine is constructed above whenever pending work exists, and cells only run on pending work.
            let engine = engine.as_ref().expect("engine built when work is pending");
            let batchable =
                opts.batch_cells && group.len() >= 2 && !group[0].1.method.optimizes_source();
            if batchable {
                // The cell's records finish together (one fused metric
                // pass), so they journal together too.
                let records = self.execute_cell_batched(engine, group);
                if let Some(journal) = &journal {
                    for record in &records {
                        append_line(journal, &item_line(record));
                    }
                }
                records
            } else {
                // Item-at-a-time cells keep per-item journal streaming, so
                // an interrupt loses at most the in-flight item.
                group
                    .iter()
                    .map(|(_, item)| {
                        let clip = self.clip(item);
                        eprintln!(
                            "[{}] {} on {}",
                            item.suite.name(),
                            item.method.name(),
                            clip.name
                        );
                        let record = self.execute(engine, item, clip);
                        if let Some(journal) = &journal {
                            append_line(journal, &item_line(&record));
                        }
                        record
                    })
                    .collect::<Vec<_>>()
            }
        });

        let executed = pending.len();
        let mut total_item_s = 0.0;
        for (group, records) in groups.iter().zip(group_records) {
            for ((pos, _), record) in group.iter().zip(records) {
                total_item_s += record.tat_s;
                slots[*pos] = Some(record);
            }
        }
        let records: Vec<ItemRecord> = slots
            .into_iter()
            // PANIC-OK: merge invariant — every pending slot is filled by the pool in work-item order (§7); a hole is an internal bug.
            .map(|s| s.expect("every slot filled"))
            .collect();

        let comparisons = self.aggregate(&records);
        let report = SuiteReport {
            failures: records.iter().filter(|r| !r.is_ok()).count(),
            records,
            comparisons,
            wall_s: wall_start.elapsed().as_secs_f64(),
            jobs: opts.jobs,
            executed,
            resumed,
            total_item_s,
        };
        if let Some(journal) = &journal {
            append_line(journal, &aggregate_line(&report));
        }
        report
    }

    fn execute(&self, engine: &AbbeImager, item: &WorkItem, clip: &Clip) -> ItemRecord {
        let clock = Instant::now();
        let outcome = match run_method_with_engine(&self.harness, engine, item.method, clip) {
            Ok(r) => ItemOutcome::Ok {
                l2_nm2: r.metrics.l2_nm2,
                pvb_nm2: r.metrics.pvb_nm2,
                epe: r.metrics.epe as f64,
                final_loss: r.trace.final_loss().unwrap_or(f64::NAN),
                run_wall_s: r.wall_s,
            },
            Err(e) => ItemOutcome::Failed {
                error: e.to_string(),
            },
        };
        ItemRecord {
            item: *item,
            clip_name: clip.name.clone(),
            tat_s: clock.elapsed().as_secs_f64(),
            outcome,
        }
    }

    /// Executes one (suite, method) cell with its metric evaluation fused:
    /// every clip is optimized in turn, then **one** `measure_batch` call
    /// images all surviving clips' dose corners through a single backend
    /// call (the methods routed here never touch the source, so the whole
    /// cell shares the template illumination). Metrics are bit-identical to
    /// per-clip measurement; each record's turnaround time covers its own
    /// optimization plus an equal share of the fused metric pass. A clip
    /// whose optimization fails is recorded and excluded; a fused metric
    /// failure falls back to per-clip measurement so one diverged clip
    /// cannot poison the cell.
    fn execute_cell_batched(
        &self,
        engine: &AbbeImager,
        group: &[(usize, WorkItem)],
    ) -> Vec<ItemRecord> {
        struct Survivor {
            position: usize,
            problem: SmoProblem,
            out: SmoOutcome,
            optimize_s: f64,
        }

        let mut records: Vec<Option<ItemRecord>> = (0..group.len()).map(|_| None).collect();
        let mut survivors: Vec<Survivor> = Vec::new();
        for (position, (_, item)) in group.iter().enumerate() {
            let clip = self.clip(item);
            eprintln!(
                "[{}] {} on {} (cell-batched metrics)",
                item.suite.name(),
                item.method.name(),
                clip.name
            );
            let clock = Instant::now();
            match optimize_method_with_engine(&self.harness, engine, item.method, clip) {
                Ok((problem, out)) => survivors.push(Survivor {
                    position,
                    problem,
                    out,
                    optimize_s: clock.elapsed().as_secs_f64(),
                }),
                Err(e) => {
                    records[position] = Some(ItemRecord {
                        item: *item,
                        clip_name: clip.name.clone(),
                        tat_s: clock.elapsed().as_secs_f64(),
                        outcome: ItemOutcome::Failed {
                            error: e.to_string(),
                        },
                    });
                }
            }
        }

        if !survivors.is_empty() {
            let measure_clock = Instant::now();
            let cells: Vec<(&SmoProblem, &[f64], &RealField)> = survivors
                .iter()
                .map(|s| (&s.problem, s.out.theta_j.as_slice(), &s.out.theta_m))
                .collect();
            let fused = measure_batch(&cells, self.harness.epe);
            let outcomes: Vec<ItemOutcome> = match fused {
                Ok(sets) => survivors
                    .iter()
                    .zip(sets)
                    .map(|(s, metrics)| ItemOutcome::Ok {
                        l2_nm2: metrics.l2_nm2,
                        pvb_nm2: metrics.pvb_nm2,
                        epe: metrics.epe as f64,
                        final_loss: s.out.trace.final_loss().unwrap_or(f64::NAN),
                        run_wall_s: s.out.wall_s,
                    })
                    .collect(),
                Err(_) => survivors
                    .iter()
                    .map(|s| {
                        match measure(&s.problem, &s.out.theta_j, &s.out.theta_m, self.harness.epe)
                        {
                            Ok(metrics) => ItemOutcome::Ok {
                                l2_nm2: metrics.l2_nm2,
                                pvb_nm2: metrics.pvb_nm2,
                                epe: metrics.epe as f64,
                                final_loss: s.out.trace.final_loss().unwrap_or(f64::NAN),
                                run_wall_s: s.out.wall_s,
                            },
                            Err(e) => ItemOutcome::Failed {
                                error: e.to_string(),
                            },
                        }
                    })
                    .collect(),
            };
            // Timed after the match so a fused-measure failure's per-clip
            // fallback is charged to the records, not silently dropped.
            let share = measure_clock.elapsed().as_secs_f64() / survivors.len() as f64;
            for (s, outcome) in survivors.iter().zip(outcomes) {
                let (_, item) = &group[s.position];
                records[s.position] = Some(ItemRecord {
                    item: *item,
                    clip_name: self.clip(item).name.clone(),
                    tat_s: s.optimize_s + share,
                    outcome,
                });
            }
        }

        records
            .into_iter()
            // PANIC-OK: merge invariant — every cell slot is filled by the pool in work-item order (§7); a hole is an internal bug.
            .map(|r| r.expect("every cell slot filled"))
            .collect()
    }

    /// Per-suite, per-method means over the successful records, reduced in
    /// work-item order so the result is independent of execution order. A
    /// cell with **zero** surviving clips aggregates to NaN, not 0.0 — a
    /// fabricated zero would print as the best score in the table and
    /// silently poison the Average/Ratio rows, whereas NaN is legible as
    /// "no data".
    fn aggregate(&self, records: &[ItemRecord]) -> Vec<SuiteComparison> {
        self.suites
            .iter()
            .map(|(kind, _)| SuiteComparison {
                kind: *kind,
                methods: self
                    .methods
                    .iter()
                    .map(|&method| {
                        let (mut l2, mut pvb, mut epe, mut tat) =
                            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
                        for rec in records {
                            if rec.item.suite != *kind || rec.item.method != method {
                                continue;
                            }
                            if let ItemOutcome::Ok {
                                l2_nm2,
                                pvb_nm2,
                                epe: e,
                                ..
                            } = rec.outcome
                            {
                                l2.push(l2_nm2);
                                pvb.push(pvb_nm2);
                                epe.push(e);
                                tat.push(rec.tat_s);
                            }
                        }
                        if l2.is_empty() {
                            MethodAggregate {
                                method,
                                l2: f64::NAN,
                                pvb: f64::NAN,
                                epe: f64::NAN,
                                tat: f64::NAN,
                            }
                        } else {
                            MethodAggregate {
                                method,
                                l2: mean(&l2),
                                pvb: mean(&pvb),
                                epe: mean(&epe),
                                tat: mean(&tat),
                            }
                        }
                    })
                    .collect(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// JSONL journal: hand-rolled writer + targeted parser (no serde in-tree).
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-round-trip float (Rust's `{:?}` for `f64` is valid JSON for
/// finite values). Non-finite values — a diverged run can record them —
/// become the JSON **strings** `"inf"` / `"-inf"` / `"nan"`, which stay
/// valid JSON for external tools and round-trip through [`field_f64`]
/// value-exactly, so resumed aggregates match uninterrupted ones.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "\"nan\"".into()
    } else if v > 0.0 {
        "\"inf\"".into()
    } else {
        "\"-inf\"".into()
    }
}

/// Extracts a string field from one of our own JSONL lines. The writer
/// escapes `"` and `\` in values, so scanning for the quoted key is
/// unambiguous.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start().strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    // Non-finite values are journaled as quoted tokens (see `json_f64`);
    // `null` is tolerated for hand-edited files.
    if let Some(quoted) = rest.strip_prefix('"') {
        return match quoted.split('"').next()? {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        };
    }
    if rest.starts_with("null") {
        return Some(f64::NAN);
    }
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// FNV-1a over a canonical description of the sweep; used to key the
/// journal so records from a different configuration are never merged.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn item_line(rec: &ItemRecord) -> String {
    let prefix = format!(
        "{{\"type\":\"item\",\"suite\":\"{}\",\"method\":\"{}\",\"clip_index\":{},\"clip\":\"{}\"",
        rec.item.suite.name(),
        rec.item.method.name(),
        rec.item.clip_index,
        json_escape(&rec.clip_name)
    );
    match &rec.outcome {
        ItemOutcome::Ok {
            l2_nm2,
            pvb_nm2,
            epe,
            final_loss,
            run_wall_s,
        } => format!(
            "{prefix},\"status\":\"ok\",\"l2_nm2\":{},\"pvb_nm2\":{},\"epe\":{},\
             \"final_loss\":{},\"run_wall_s\":{},\"tat_s\":{}}}",
            json_f64(*l2_nm2),
            json_f64(*pvb_nm2),
            json_f64(*epe),
            json_f64(*final_loss),
            json_f64(*run_wall_s),
            json_f64(rec.tat_s)
        ),
        ItemOutcome::Failed { error } => format!(
            "{prefix},\"status\":\"error\",\"error\":\"{}\",\"tat_s\":{}}}",
            json_escape(error),
            json_f64(rec.tat_s)
        ),
    }
}

fn aggregate_line(report: &SuiteReport) -> String {
    let mut out = format!(
        "{{\"type\":\"aggregate\",\"jobs\":{},\"items\":{},\"executed\":{},\"resumed\":{},\
         \"failures\":{},\"wall_s\":{},\"total_item_s\":{},\"speedup\":{},\"suites\":[",
        report.jobs,
        report.records.len(),
        report.executed,
        report.resumed,
        report.failures,
        json_f64(report.wall_s),
        json_f64(report.total_item_s),
        json_f64(report.speedup())
    );
    for (si, cmp) in report.comparisons.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"suite\":\"{}\",\"methods\":[",
            cmp.kind.name()
        ));
        for (mi, agg) in cmp.methods.iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"method\":\"{}\",\"l2_nm2\":{},\"pvb_nm2\":{},\"epe\":{},\"tat_s\":{}}}",
                agg.method.name(),
                json_f64(agg.l2),
                json_f64(agg.pvb),
                json_f64(agg.epe),
                json_f64(agg.tat)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn parse_item(line: &str) -> Option<ItemRecord> {
    if field_str(line, "type")? != "item" {
        return None;
    }
    let item = WorkItem {
        suite: SuiteKind::from_name(&field_str(line, "suite")?)?,
        method: Method::from_name(&field_str(line, "method")?)?,
        clip_index: field_f64(line, "clip_index")? as usize,
    };
    let clip_name = field_str(line, "clip")?;
    let tat_s = field_f64(line, "tat_s")?;
    let outcome = match field_str(line, "status")?.as_str() {
        "ok" => ItemOutcome::Ok {
            l2_nm2: field_f64(line, "l2_nm2")?,
            pvb_nm2: field_f64(line, "pvb_nm2")?,
            epe: field_f64(line, "epe")?,
            // Journals written before the field carry no final_loss;
            // tolerate them on resume instead of discarding the line.
            final_loss: field_f64(line, "final_loss").unwrap_or(f64::NAN),
            run_wall_s: field_f64(line, "run_wall_s")?,
        },
        "error" => ItemOutcome::Failed {
            error: field_str(line, "error")?,
        },
        _ => return None,
    };
    Some(ItemRecord {
        item,
        clip_name,
        tat_s,
        outcome,
    })
}

/// Reads a journal and returns its item records if — and only if — it is
/// resumable: it starts with a matching header and has **no** aggregate
/// line (an aggregate marks a completed sweep, which should re-run fresh so
/// repeat invocations actually measure instead of replaying).
///
/// A malformed **final** line is tolerated and dropped — an interrupt can
/// tear the last append mid-write, and losing the whole journal to its
/// torn tail would defeat the exact crash scenario resume exists for.
/// Malformed lines anywhere else mean the file is not ours; start fresh.
fn load_resumable(path: &Path, expected_header: &str) -> Option<Vec<ItemRecord>> {
    let text = std::fs::read_to_string(path).ok()?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.first()?.trim() != expected_header {
        return None;
    }
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        let parsed = match field_str(line, "type").as_deref() {
            Some("item") => parse_item(line),
            Some("aggregate") => return None,
            _ => None,
        };
        match parsed {
            Some(rec) => records.push(rec),
            None if i == lines.len() - 1 => break, // torn tail from an interrupt
            None => return None,
        }
    }
    Some(records)
}

/// Creates the journal fresh: header first, then (on resume) the
/// re-serialized prior records. Rewriting instead of appending normalizes
/// the file — a torn trailing line or missing final newline from an
/// interrupted run cannot corrupt the records appended next — and the
/// rewrite goes through a sibling temp file + atomic rename, so a crash
/// mid-rewrite leaves the original journal (and its resumable records)
/// intact rather than truncated.
fn open_journal(path: &Path, header: &str, prior: &[ItemRecord]) -> Mutex<std::fs::File> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            // PANIC-OK: journal I/O failure is a harness environment problem, not a run outcome — documented panic policy on `run`.
            std::fs::create_dir_all(dir).expect("create journal directory");
        }
    }
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut out = String::with_capacity(256 + prior.len() * 256);
        out.push_str(header);
        out.push('\n');
        for rec in prior {
            out.push_str(&item_line(rec));
            out.push('\n');
        }
        std::fs::write(&tmp, out)
            // PANIC-OK: journal I/O — documented panic policy on `run` (environment problem, not a run outcome).
            .unwrap_or_else(|e| panic!("write journal {}: {e}", tmp.display()));
    }
    std::fs::rename(&tmp, path)
        // PANIC-OK: journal I/O — documented panic policy on `run` (environment problem, not a run outcome).
        .unwrap_or_else(|e| panic!("replace journal {}: {e}", path.display()));
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        // PANIC-OK: journal I/O — documented panic policy on `run` (environment problem, not a run outcome).
        .unwrap_or_else(|e| panic!("open journal {}: {e}", path.display()));
    Mutex::new(file)
}

/// Appends one whole line (content + newline in a single write) under the
/// journal lock and flushes it, so an interrupted sweep leaves at worst one
/// torn **final** line behind — never an unterminated line followed by
/// another record.
fn append_line(journal: &Mutex<std::fs::File>, line: &str) {
    // PANIC-OK: poison implies a worker died mid-append, which already aborts the sweep; documented panic policy on `run`.
    let mut file = journal.lock().expect("journal lock poisoned");
    file.write_all(format!("{line}\n").as_bytes())
        // PANIC-OK: journal I/O — documented panic policy on `run` (environment problem, not a run outcome).
        .expect("append journal record");
    // PANIC-OK: journal I/O — documented panic policy on `run` (environment problem, not a run outcome).
    file.flush().expect("flush journal record");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..57).collect();
        let seq = par_map(1, &items, |i, &x| (i, x * x));
        let par = par_map(8, &items, |i, &x| (i, x * x));
        assert_eq!(seq, par);
        for (i, (idx, sq)) in par.iter().enumerate() {
            assert_eq!(i, *idx);
            assert_eq!(*sq, i * i);
        }
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(4, &empty, |_, &x: &usize| x).is_empty());
    }

    #[test]
    fn json_fields_round_trip() {
        let rec = ItemRecord {
            item: WorkItem {
                suite: SuiteKind::IccadL,
                method: Method::BISMO_CG,
                clip_index: 7,
            },
            clip_name: "ICCAD-L/test8 \"quoted\" \\slash".into(),
            tat_s: 1.25e-3,
            outcome: ItemOutcome::Ok {
                l2_nm2: 12345.678,
                pvb_nm2: 1e-12,
                epe: 3.0,
                final_loss: 0.0625,
                run_wall_s: 0.5,
            },
        };
        let line = item_line(&rec);
        let back = parse_item(&line).expect("round trip");
        assert_eq!(back.item, rec.item);
        assert_eq!(back.clip_name, rec.clip_name);
        assert_eq!(back.tat_s, rec.tat_s);
        match back.outcome {
            ItemOutcome::Ok {
                l2_nm2,
                pvb_nm2,
                epe,
                final_loss,
                run_wall_s,
            } => {
                assert_eq!(l2_nm2, 12345.678);
                assert_eq!(pvb_nm2, 1e-12);
                assert_eq!(epe, 3.0);
                assert_eq!(final_loss, 0.0625);
                assert_eq!(run_wall_s, 0.5);
            }
            ItemOutcome::Failed { .. } => panic!("expected ok outcome"),
        }

        // A pre-final_loss journal line still parses; the missing field
        // reads back as NaN rather than dropping the record.
        let legacy = line.replace(",\"final_loss\":0.0625", "");
        assert!(!legacy.contains("final_loss"));
        match parse_item(&legacy).expect("legacy line parses").outcome {
            ItemOutcome::Ok { final_loss, .. } => assert!(final_loss.is_nan()),
            ItemOutcome::Failed { .. } => panic!("expected ok outcome"),
        }

        let failed = ItemRecord {
            outcome: ItemOutcome::Failed {
                error: "shape mismatch: target is 32×32, config expects 64×64".into(),
            },
            ..rec
        };
        let back = parse_item(&item_line(&failed)).expect("round trip");
        match back.outcome {
            ItemOutcome::Failed { error } => assert!(error.contains("32×32")),
            ItemOutcome::Ok { .. } => panic!("expected failed outcome"),
        }
    }

    #[test]
    fn non_finite_metrics_round_trip_value_exactly() {
        // A diverged run can journal inf/NaN metrics; resume must read back
        // the same values, not silently degrade them (the old `null`
        // encoding collapsed inf to NaN).
        let rec = ItemRecord {
            item: WorkItem {
                suite: SuiteKind::Iccad13,
                method: Method::NILT,
                clip_index: 0,
            },
            clip_name: "ICCAD13/test1".into(),
            tat_s: 0.25,
            outcome: ItemOutcome::Ok {
                l2_nm2: f64::INFINITY,
                pvb_nm2: f64::NEG_INFINITY,
                epe: f64::NAN,
                final_loss: f64::INFINITY,
                run_wall_s: 1.0,
            },
        };
        let back = parse_item(&item_line(&rec)).expect("round trip");
        match back.outcome {
            ItemOutcome::Ok {
                l2_nm2,
                pvb_nm2,
                epe,
                final_loss,
                run_wall_s,
            } => {
                assert_eq!(l2_nm2, f64::INFINITY);
                assert_eq!(pvb_nm2, f64::NEG_INFINITY);
                assert!(epe.is_nan());
                assert_eq!(final_loss, f64::INFINITY);
                assert_eq!(run_wall_s, 1.0);
            }
            ItemOutcome::Failed { .. } => panic!("expected ok outcome"),
        }
        // `null` from hand-edited files is tolerated as NaN.
        assert!(field_f64("{\"x\":null}", "x").unwrap().is_nan());
    }

    #[test]
    fn malformed_or_foreign_lines_are_rejected() {
        assert!(parse_item("{\"type\":\"aggregate\"}").is_none());
        assert!(parse_item("not json at all").is_none());
        assert!(parse_item("{\"type\":\"item\",\"suite\":\"NOPE\"}").is_none());
    }
}
