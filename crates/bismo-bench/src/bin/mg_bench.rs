//! Flat-versus-multigrid benchmark (`BENCH_mg.json`): runs one registered
//! method and its `@mg` multigrid wrapper (DESIGN.md §11) over one suite and
//! compares final objective value, §2.2 metrics and wall time per column.
//!
//! Usage:
//!
//! ```text
//! mg_bench [--scale quick|default|paper] [--suite NAME] [--method NAME]
//!          [--clips N] [--levels N] [--coarse-steps N] [--fine-steps N]
//!          [--label NAME] [--out PATH] [--baseline PATH]
//!          [--assert-loss] [--assert-tat FACTOR]
//! ```
//!
//! The flat column runs the method under the harness's usual budgets; the
//! `@mg` column runs the same method through the coarse-to-fine level
//! schedule, by default with `coarse_steps = budget/4` per coarse level and
//! `fine_steps = budget/3` at full resolution — the multigrid pitch is
//! *equal quality from a fraction of the fine-grid work*, so the wrapper is
//! given deliberately fewer full-resolution steps than the flat baseline
//! gets. (Coarse steps are cheaper but not free — the source block does not
//! shrink with the mask grid — so the default schedule leans on a short
//! coarse warm start rather than a long coarse solve.) Suites default to the procedural `RAND-LOGIC` generator so the
//! comparison scales to any clip count without bitmap fixtures.
//!
//! `--assert-loss` exits nonzero if the multigrid column's mean final loss
//! is worse than the flat column's (the CI smoke contract); `--assert-tat
//! FACTOR` additionally requires `mg_tat <= FACTOR × flat_tat`. Items run
//! on one worker (`--jobs` to override) so the timing columns are
//! contention-free.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use bismo_bench::{
    mean, out_dir, Harness, ItemOutcome, Method, RunnerOptions, Scale, SuiteKind, SuiteReport,
    SuiteSweep,
};
use bismo_core::SolverConfig;

/// Per-method aggregates pulled from the sweep's item records.
struct Column {
    method: Method,
    clips_ok: usize,
    failures: usize,
    final_loss: f64,
    l2_nm2: f64,
    pvb_nm2: f64,
    epe: f64,
    run_wall_s: f64,
    tat_s: f64,
}

fn column(report: &SuiteReport, method: Method) -> Column {
    let (mut loss, mut l2, mut pvb, mut epe, mut wall, mut tat) =
        (vec![], vec![], vec![], vec![], vec![], vec![]);
    let mut failures = 0usize;
    for rec in &report.records {
        if rec.item.method != method {
            continue;
        }
        match &rec.outcome {
            ItemOutcome::Ok {
                l2_nm2,
                pvb_nm2,
                epe: e,
                final_loss,
                run_wall_s,
            } => {
                loss.push(*final_loss);
                l2.push(*l2_nm2);
                pvb.push(*pvb_nm2);
                epe.push(*e);
                wall.push(*run_wall_s);
                tat.push(rec.tat_s);
            }
            ItemOutcome::Failed { .. } => failures += 1,
        }
    }
    Column {
        method,
        clips_ok: loss.len(),
        failures,
        final_loss: mean(&loss),
        l2_nm2: mean(&l2),
        pvb_nm2: mean(&pvb),
        epe: mean(&epe),
        run_wall_s: mean(&wall),
        tat_s: mean(&tat),
    }
}

/// The step budget the flat method runs under, used to derive the default
/// multigrid level budgets.
fn flat_budget(cfg: &SolverConfig, base: &str) -> usize {
    if base.starts_with("BiSMO") {
        cfg.bismo.outer_steps
    } else if base.starts_with("AM(") {
        cfg.am.rounds * (cfg.am.so_steps + cfg.am.mo_steps)
    } else {
        cfg.mo.steps
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v.is_nan() {
        "\"nan\"".into()
    } else if v > 0.0 {
        "\"inf\"".into()
    } else {
        "\"-inf\"".into()
    }
}

fn column_json(c: &Column) -> String {
    format!(
        "{{\"method\": \"{}\", \"clips_ok\": {}, \"failures\": {}, \
         \"final_loss\": {}, \"l2_nm2\": {}, \"pvb_nm2\": {}, \"epe\": {}, \
         \"run_wall_s\": {}, \"tat_s\": {}}}",
        c.method.name(),
        c.clips_ok,
        c.failures,
        json_f64(c.final_loss),
        json_f64(c.l2_nm2),
        json_f64(c.pvb_nm2),
        json_f64(c.epe),
        json_f64(c.run_wall_s),
        json_f64(c.tat_s)
    )
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    label: &str,
    suite: SuiteKind,
    scale_mask_dim: usize,
    clips: usize,
    mg_cfg: (usize, usize, usize),
    flat: &Column,
    mg: &Column,
    baseline: Option<&str>,
) -> String {
    let (levels, coarse_steps, fine_steps) = mg_cfg;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"multigrid\",\n  \"label\": \"{label}\",\n  \"suite\": \"{}\",\n",
        suite.name()
    ));
    out.push_str(&format!(
        "  \"mask_dim\": {scale_mask_dim},\n  \"clips\": {clips},\n"
    ));
    out.push_str(&format!(
        "  \"mg\": {{\"levels\": {levels}, \"coarse_steps\": {coarse_steps}, \
         \"fine_steps\": {fine_steps}}},\n"
    ));
    out.push_str("  \"results\": [\n");
    out.push_str(&format!("    {},\n", column_json(flat)));
    out.push_str(&format!("    {}\n", column_json(mg)));
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"loss_ratio\": {},\n  \"tat_ratio\": {}",
        json_f64(mg.final_loss / flat.final_loss),
        json_f64(mg.tat_s / flat.tat_s)
    ));
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(b.trim_end());
    }
    out.push_str("\n}\n");
    out
}

fn main() {
    let mut scale = Scale::from_env();
    let mut suite_name = String::from("RAND-LOGIC");
    let mut method_name = String::from("BiSMO-CG");
    let mut clips: Option<usize> = None;
    let mut levels = 3usize;
    let mut coarse_steps: Option<usize> = None;
    let mut fine_steps: Option<usize> = None;
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_mg.json");
    let mut baseline_path: Option<String> = None;
    let mut assert_loss = false;
    let mut assert_tat: Option<f64> = None;
    let mut jobs = 1usize;

    let mut args = std::env::args().skip(1);
    let next = |args: &mut std::iter::Skip<std::env::Args>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = Scale::parse(Some(&next(&mut args, "--scale")))
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            "--suite" => suite_name = next(&mut args, "--suite"),
            "--method" => method_name = next(&mut args, "--method"),
            "--clips" => {
                clips = Some(
                    next(&mut args, "--clips")
                        .parse()
                        .expect("--clips: integer"),
                );
            }
            "--levels" => {
                levels = next(&mut args, "--levels")
                    .parse()
                    .expect("--levels: integer");
            }
            "--coarse-steps" => {
                coarse_steps = Some(
                    next(&mut args, "--coarse-steps")
                        .parse()
                        .expect("--coarse-steps: integer"),
                );
            }
            "--fine-steps" => {
                fine_steps = Some(
                    next(&mut args, "--fine-steps")
                        .parse()
                        .expect("--fine-steps: integer"),
                );
            }
            "--label" => label = next(&mut args, "--label"),
            "--out" => out_path = next(&mut args, "--out"),
            "--baseline" => baseline_path = Some(next(&mut args, "--baseline")),
            "--assert-loss" => assert_loss = true,
            "--assert-tat" => {
                assert_tat = Some(
                    next(&mut args, "--assert-tat")
                        .parse()
                        .expect("--assert-tat: number"),
                );
            }
            "--jobs" => jobs = next(&mut args, "--jobs").parse().expect("--jobs: integer"),
            other => panic!("unknown argument {other}"),
        }
    }

    let suite =
        SuiteKind::from_name(&suite_name).unwrap_or_else(|| panic!("unknown suite {suite_name:?}"));
    let flat =
        Method::from_name(&method_name).unwrap_or_else(|| panic!("unknown method {method_name:?}"));
    let mg = Method::from_name(&format!("{}@mg", flat.name()))
        .unwrap_or_else(|| panic!("no @mg wrapper registered for {}", flat.name()));

    let mut h = Harness::new(scale);
    if let Some(n) = clips {
        h.clips_per_suite = n;
    }
    let budget = flat_budget(&h.solver, flat.name());
    let coarse_steps = coarse_steps.unwrap_or((budget / 4).max(4));
    let fine_steps = fine_steps.unwrap_or((budget / 3).max(2));
    h.solver.mg.levels = levels;
    h.solver.mg.coarse_steps = coarse_steps;
    h.solver.mg.fine_steps = fine_steps;

    eprintln!(
        "[mg_bench] {} vs {} on {} ({} clips, {}², flat budget {budget}, \
         mg levels<={levels} coarse {coarse_steps} fine {fine_steps})",
        flat.name(),
        mg.name(),
        suite.name(),
        h.clips_per_suite,
        h.optical.mask_dim()
    );

    let journal: PathBuf = out_dir().join("BENCH_mg_suite.json");
    let opts = RunnerOptions::from_env()
        .with_jobs(jobs)
        .with_journal(journal.clone());
    let report = SuiteSweep::new(&h)
        .with_methods(&[flat, mg])
        .with_suites(&[suite])
        .run(&opts);
    eprintln!("[mg_bench] {}", report.summary());

    let flat_col = column(&report, flat);
    let mg_col = column(&report, mg);
    for c in [&flat_col, &mg_col] {
        eprintln!(
            "[mg_bench]   {:<14} loss {:.6}  L2 {:.0} nm²  PVB {:.0} nm²  EPE {:.1}  \
             wall {:.2} s  tat {:.2} s  ({} ok, {} failed)",
            c.method.name(),
            c.final_loss,
            c.l2_nm2,
            c.pvb_nm2,
            c.epe,
            c.run_wall_s,
            c.tat_s,
            c.clips_ok,
            c.failures
        );
    }
    eprintln!(
        "[mg_bench]   loss ratio (mg/flat) {:.4}, tat ratio {:.2}",
        mg_col.final_loss / flat_col.final_loss,
        mg_col.tat_s / flat_col.tat_s
    );

    let baseline = baseline_path
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));
    let out = json_report(
        &label,
        suite,
        h.optical.mask_dim(),
        h.clips_per_suite,
        (levels, coarse_steps, fine_steps),
        &flat_col,
        &mg_col,
        baseline.as_deref(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &out).expect("write report");
    println!("{out}");
    eprintln!(
        "[mg_bench] wrote {out_path} (journal: {})",
        journal.display()
    );

    let mut failed = Vec::new();
    if flat_col.clips_ok == 0 || mg_col.clips_ok == 0 {
        failed.push("a column has no successful clips".to_string());
    }
    // Tiny relative slack so "equal" survives float summation order. The
    // gate is written as negated-pass (not `>`) so NaN columns fail it.
    let loss_ok = mg_col.final_loss <= flat_col.final_loss * (1.0 + 1e-6);
    if assert_loss && !loss_ok {
        failed.push(format!(
            "mg final loss {:.6} is worse than flat {:.6}",
            mg_col.final_loss, flat_col.final_loss
        ));
    }
    if let Some(factor) = assert_tat {
        let tat_ok = mg_col.tat_s <= flat_col.tat_s * factor;
        if !tat_ok {
            failed.push(format!(
                "mg tat {:.2} s exceeds {factor:.2}x flat tat {:.2} s",
                mg_col.tat_s, flat_col.tat_s
            ));
        }
    }
    if (assert_loss || assert_tat.is_some()) && !failed.is_empty() {
        eprintln!("[mg_bench] ASSERTION FAILED: {}", failed.join("; "));
        std::process::exit(1);
    }
    if assert_loss || assert_tat.is_some() {
        eprintln!("[mg_bench] assertions passed");
    }
}
