//! Regenerates **Table 4** (EPE and turnaround-time comparison with Ratio
//! rows) on the parallel suite runner. TAT is each cell's own clock
//! (construction + optimization + metrics, under whatever `BISMO_JOBS`
//! contention the sweep ran with); records stream to
//! `bench_results/BENCH_suite.json` and interrupted sweeps resume from it.

#![forbid(unsafe_code)]

use bismo_bench::{format_table, Harness, Method, RunnerOptions, Scale, SuiteSweep};

fn main() {
    let h = Harness::new(Scale::from_env());
    let opts = RunnerOptions::from_env();
    if opts.jobs > 1 {
        eprintln!(
            "[table4] running with {} workers: TAT columns include pool contention — \
             set BISMO_JOBS=1 for uncontended per-method timings",
            opts.jobs
        );
    }
    let report = SuiteSweep::new(&h).run(&opts);
    eprintln!("[table4] {}", report.summary());
    let comparisons = &report.comparisons;

    let navg = Method::all().len();
    let mut epe = vec![0.0; navg];
    let mut tat = vec![0.0; navg];
    for cmp in comparisons {
        for (i, agg) in cmp.methods.iter().enumerate() {
            epe[i] += agg.epe / comparisons.len() as f64;
            tat[i] += agg.tat / comparisons.len() as f64;
        }
    }

    println!("\nTable 4: EPE and runtime comparison\n");
    let mut headers = vec!["Metric".to_string()];
    headers.extend(Method::all().iter().map(|m| m.name().to_string()));
    let base = navg - 1; // BiSMO-NMN column, as in the paper's ratio rows.
    let rows = vec![
        {
            let mut r = vec!["EPE avg.".to_string()];
            r.extend(epe.iter().map(|v| format!("{v:.1}")));
            r
        },
        {
            let mut r = vec!["EPE ratio".to_string()];
            r.extend(
                epe.iter()
                    .map(|v| format!("{:.1}", v / epe[base].max(1e-9))),
            );
            r
        },
        {
            let mut r = vec!["TAT avg (s)".to_string()];
            r.extend(tat.iter().map(|v| format!("{v:.2}")));
            r
        },
        {
            let mut r = vec!["TAT ratio".to_string()];
            r.extend(
                tat.iter()
                    .map(|v| format!("{:.2}", v / tat[base].max(1e-9))),
            );
            r
        },
    ];
    println!("{}", format_table(&headers, &rows));
    println!(
        "Paper shape to check: EPE ordering NILT > DAC23 > Abbe-MO > AM > BiSMO;\n\
         TAT: AM(A~H) slowest (per-round TCC rebuild), AM(A~A) next, BiSMO ≈ MO."
    );
}
