//! Ablation study (paper §4.2 plus DESIGN.md extensions): sweeps the
//! Neumann/CG term count `K`, the unroll depth `T`, and the SOCS truncation
//! `Q`, reporting final loss / cost trade-offs on one clip.
//!
//! Every sweep fans its cells across `BISMO_JOBS` workers via the bench
//! runner's `par_map`, with all cells sharing one problem (and therefore
//! one imaging core + warm workspace pool); results merge in cell order, so
//! the printed **loss** columns are identical at any worker count. The TAT
//! columns are wall time as experienced under that contention — for
//! uncontended per-method cost comparisons, run with `BISMO_JOBS=1` (the
//! binary prints a reminder when the pool is wider).
//!
//! The K/T/activation cells run through the solver registry — each cell is
//! just a `SolverConfig` edit plus a method name, which is the point of the
//! registry API.

#![forbid(unsafe_code)]

use bismo_bench::{format_table, par_map, Harness, RunnerOptions, Scale, Suite, SuiteKind};
use bismo_core::{SmoOutcome, SmoProblem, SolverConfig, SolverRegistry};
use bismo_litho::HopkinsImager;
use bismo_optics::RealField;

/// Runs one registry method on `problem` under `cfg` to completion.
fn run(problem: &SmoProblem, name: &str, cfg: &SolverConfig) -> SmoOutcome {
    SolverRegistry::builtin()
        .run(name, problem, cfg)
        .expect("solver run")
}

fn main() {
    let h = Harness::new(Scale::from_env());
    let jobs = RunnerOptions::from_env().jobs;
    let outer = match Scale::from_env() {
        Scale::Quick => 5,
        _ => 20,
    };
    if jobs > 1 {
        eprintln!(
            "[ablation] running {jobs} cells concurrently: loss columns are exact, \
             TAT columns include pool contention — set BISMO_JOBS=1 for \
             uncontended timings"
        );
    }
    let suite = Suite::generate(SuiteKind::Iccad13, &h.optical, 1);
    let clip = &suite.clips()[0];
    let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
        .expect("problem setup");
    let tj = problem.init_theta_j(h.template());
    let tm = problem.init_theta_m();
    let mut base = SolverConfig {
        stop: None,
        ..SolverConfig::default()
    };
    base.bismo.outer_steps = outer;

    // K sweep for NMN and CG: one parallel cell per (K, hypergradient).
    println!("\nAblation A: Neumann/CG term count K (outer steps = {outer}, {jobs} jobs)\n");
    let headers: Vec<String> = [
        "K",
        "NMN final loss",
        "NMN TAT (s)",
        "CG final loss",
        "CG TAT (s)",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let ks = [0usize, 1, 3, 5];
    let cells: Vec<(&str, usize)> = ks
        .iter()
        .flat_map(|&k| [("BiSMO-NMN", k), ("BiSMO-CG", k.max(1))])
        .collect();
    let outcomes = par_map(jobs, &cells, |_, &(name, k)| {
        let mut cfg = base.clone();
        cfg.bismo.k = k;
        run(&problem, name, &cfg)
    });
    let rows: Vec<Vec<String>> = ks
        .iter()
        .zip(outcomes.chunks(2))
        .map(|(k, pair)| {
            vec![
                k.to_string(),
                format!("{:.4}", pair[0].trace.final_loss().unwrap()),
                format!("{:.2}", pair[0].wall_s),
                format!("{:.4}", pair[1].trace.final_loss().unwrap()),
                format!("{:.2}", pair[1].wall_s),
            ]
        })
        .collect();
    println!("{}", format_table(&headers, &rows));

    // T sweep (unroll depth), one parallel cell per T.
    println!("\nAblation B: SO unroll depth T (BiSMO-NMN, K = 5)\n");
    let headers: Vec<String> = ["T", "Final loss", "TAT (s)"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let ts = [1usize, 2, 3, 5];
    let outcomes = par_map(jobs, &ts, |_, &t| {
        let mut cfg = base.clone();
        cfg.bismo.unroll_t = t;
        run(&problem, "BiSMO-NMN", &cfg)
    });
    let rows: Vec<Vec<String>> = ts
        .iter()
        .zip(&outcomes)
        .map(|(t, out)| {
            vec![
                t.to_string(),
                format!("{:.4}", out.trace.final_loss().unwrap()),
                format!("{:.2}", out.wall_s),
            ]
        })
        .collect();
    println!("{}", format_table(&headers, &rows));

    // Q sweep: SOCS truncation error vs the Abbe ground truth. Every TCC
    // build reuses the problem's shared shifted-pupil core.
    println!("\nAblation C: SOCS truncation Q vs Abbe ground truth\n");
    let source = problem.source(&tj);
    let mask = problem.mask(&tm);
    let abbe_img = problem.abbe().intensity(&source, &mask).expect("abbe fwd");
    let headers: Vec<String> = ["Q", "Mean |I_hopkins − I_abbe|", "Captured κ mass"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let full = HopkinsImager::with_core(problem.abbe().core(), &source, usize::MAX).expect("tcc");
    let total_mass: f64 = full.kernels().iter().map(|k| k.kappa).sum();
    let qs = [4usize, 9, 24, 64];
    let rows = par_map(jobs, &qs, |_, &q| {
        let hopkins = HopkinsImager::with_core(problem.abbe().core(), &source, q).expect("tcc");
        let img = hopkins.intensity(&mask).expect("fwd");
        let diff: RealField = {
            let mut d = img.clone();
            d.axpy(-1.0, &abbe_img);
            d.map(f64::abs)
        };
        let mass: f64 = hopkins.kernels().iter().map(|k| k.kappa).sum();
        vec![
            q.to_string(),
            format!("{:.2e}", diff.sum() / diff.len() as f64),
            format!("{:.1}%", 100.0 * mass / total_mass),
        ]
    });
    println!("{}", format_table(&headers, &rows));
    println!("Check: error → 0 and mass → 100% as Q grows (the premise of SOCS).");

    // Sigmoid vs cosine source activation (§3.1: "the Cosine function ...
    // may lead to training instability due to gradient issues"). Both
    // problems share the base problem's imaging core.
    println!("\nAblation D: source activation family (BiSMO-FD, {outer} outer steps)\n");
    let headers: Vec<String> = ["Activation", "Final loss", "Best loss"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let variants = [("sigmoid", false), ("cosine", true)];
    let rows = par_map(jobs, &variants, |_, &(name, cosine)| {
        let mut settings = h.settings.clone();
        if cosine {
            settings.activation = settings.activation.with_cosine_source();
        }
        let p = SmoProblem::with_core(problem.abbe().core().clone(), settings, clip.target.clone())
            .expect("problem setup");
        let out = run(&p, "BiSMO-FD", &base);
        vec![
            name.to_string(),
            format!("{:.4}", out.trace.final_loss().unwrap()),
            format!("{:.4}", out.trace.best_loss().unwrap()),
        ]
    });
    println!("{}", format_table(&headers, &rows));
    println!(
        "Check: cosine stalls (rail gradients vanish) — the paper's reason to prefer the sigmoid."
    );
}
