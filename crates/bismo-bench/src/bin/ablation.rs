//! Ablation study (paper §4.2 plus DESIGN.md extensions): sweeps the
//! Neumann/CG term count `K`, the unroll depth `T`, and the SOCS truncation
//! `Q`, reporting final loss / cost trade-offs on one clip.

use bismo_bench::{format_table, Harness, Scale, Suite, SuiteKind};
use bismo_core::{run_bismo, BismoConfig, HypergradMethod, SmoProblem};
use bismo_litho::HopkinsImager;
use bismo_optics::RealField;

fn main() {
    let h = Harness::new(Scale::from_env());
    let outer = match Scale::from_env() {
        Scale::Quick => 5,
        _ => 20,
    };
    let suite = Suite::generate(SuiteKind::Iccad13, &h.optical, 1);
    let clip = &suite.clips()[0];
    let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
        .expect("problem setup");
    let tj = problem.init_theta_j(h.template());
    let tm = problem.init_theta_m();

    // K sweep for NMN and CG.
    println!("\nAblation A: Neumann/CG term count K (outer steps = {outer})\n");
    let headers: Vec<String> = [
        "K",
        "NMN final loss",
        "NMN TAT (s)",
        "CG final loss",
        "CG TAT (s)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for k in [0usize, 1, 3, 5] {
        let run = |method| {
            run_bismo(
                &problem,
                &tj,
                &tm,
                BismoConfig {
                    outer_steps: outer,
                    method,
                    stop: None,
                    ..BismoConfig::default()
                },
            )
            .expect("bismo run")
        };
        let nmn = run(HypergradMethod::Neumann { k });
        let cg = run(HypergradMethod::ConjGrad { k: k.max(1) });
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", nmn.trace.final_loss().unwrap()),
            format!("{:.2}", nmn.wall_s),
            format!("{:.4}", cg.trace.final_loss().unwrap()),
            format!("{:.2}", cg.wall_s),
        ]);
    }
    println!("{}", format_table(&headers, &rows));

    // T sweep (unroll depth).
    println!("\nAblation B: SO unroll depth T (BiSMO-NMN, K = 5)\n");
    let headers: Vec<String> = ["T", "Final loss", "TAT (s)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for t in [1usize, 2, 3, 5] {
        let out = run_bismo(
            &problem,
            &tj,
            &tm,
            BismoConfig {
                outer_steps: outer,
                unroll_t: t,
                method: HypergradMethod::Neumann { k: 5 },
                stop: None,
                ..BismoConfig::default()
            },
        )
        .expect("bismo run");
        rows.push(vec![
            t.to_string(),
            format!("{:.4}", out.trace.final_loss().unwrap()),
            format!("{:.2}", out.wall_s),
        ]);
    }
    println!("{}", format_table(&headers, &rows));

    // Q sweep: SOCS truncation error vs the Abbe ground truth.
    println!("\nAblation C: SOCS truncation Q vs Abbe ground truth\n");
    let source = problem.source(&tj);
    let mask = problem.mask(&tm);
    let abbe_img = problem.abbe().intensity(&source, &mask).expect("abbe fwd");
    let headers: Vec<String> = ["Q", "Mean |I_hopkins − I_abbe|", "Captured κ mass"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let full = HopkinsImager::new(&h.optical, &source, usize::MAX).expect("tcc");
    let total_mass: f64 = full.kernels().iter().map(|k| k.kappa).sum();
    for q in [4usize, 9, 24, 64] {
        let hopkins = HopkinsImager::new(&h.optical, &source, q).expect("tcc");
        let img = hopkins.intensity(&mask).expect("fwd");
        let diff: RealField = {
            let mut d = img.clone();
            d.axpy(-1.0, &abbe_img);
            d.map(|v| v.abs())
        };
        let mass: f64 = hopkins.kernels().iter().map(|k| k.kappa).sum();
        rows.push(vec![
            q.to_string(),
            format!("{:.2e}", diff.sum() / diff.len() as f64),
            format!("{:.1}%", 100.0 * mass / total_mass),
        ]);
    }
    println!("{}", format_table(&headers, &rows));
    println!("Check: error → 0 and mass → 100% as Q grows (the premise of SOCS).");

    // Sigmoid vs cosine source activation (§3.1: "the Cosine function ...
    // may lead to training instability due to gradient issues").
    println!("\nAblation D: source activation family (BiSMO-FD, {outer} outer steps)\n");
    let headers: Vec<String> = ["Activation", "Final loss", "Best loss"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (name, cosine) in [("sigmoid", false), ("cosine", true)] {
        let mut settings = h.settings.clone();
        if cosine {
            settings.activation = settings.activation.with_cosine_source();
        }
        let p = SmoProblem::new(h.optical.clone(), settings, clip.target.clone())
            .expect("problem setup");
        let tj0 = p.init_theta_j(h.template());
        let tm0 = p.init_theta_m();
        let out = run_bismo(
            &p,
            &tj0,
            &tm0,
            BismoConfig {
                outer_steps: outer,
                method: HypergradMethod::FiniteDiff,
                stop: None,
                ..BismoConfig::default()
            },
        )
        .expect("bismo run");
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", out.trace.final_loss().unwrap()),
            format!("{:.4}", out.trace.best_loss().unwrap()),
        ]);
    }
    println!("{}", format_table(&headers, &rows));
    println!(
        "Check: cosine stalls (rail gradients vanish) — the paper's reason to prefer the sigmoid."
    );
}
