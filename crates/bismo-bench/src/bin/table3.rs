//! Regenerates **Table 3** (L2 and PVB comparison across the eight methods
//! on the three suites, plus the Average and Ratio rows).

use bismo_bench::{format_table, mean, run_full_comparison, Harness, Method, Scale};

fn main() {
    let h = Harness::new(Scale::from_env());
    let comparisons = run_full_comparison(&h).expect("comparison runs failed");

    println!("\nTable 3: result comparison with SOTA (L2 / PVB in nm²)\n");
    let mut headers = vec!["Bench".to_string()];
    for m in Method::all() {
        headers.push(format!("{} L2", m.name()));
        headers.push(format!("{} PVB", m.name()));
    }
    let mut rows = Vec::new();
    // Per-suite rows.
    for cmp in &comparisons {
        let mut row = vec![cmp.kind.name().to_string()];
        for agg in &cmp.methods {
            row.push(format!("{:.0}", agg.l2));
            row.push(format!("{:.0}", agg.pvb));
        }
        rows.push(row);
    }
    // Average row.
    let navg = Method::all().len();
    let mut avg_l2 = vec![0.0; navg];
    let mut avg_pvb = vec![0.0; navg];
    for cmp in &comparisons {
        for (i, agg) in cmp.methods.iter().enumerate() {
            avg_l2[i] += agg.l2 / comparisons.len() as f64;
            avg_pvb[i] += agg.pvb / comparisons.len() as f64;
        }
    }
    let mut avg_row = vec!["Average".to_string()];
    for i in 0..navg {
        avg_row.push(format!("{:.0}", avg_l2[i]));
        avg_row.push(format!("{:.0}", avg_pvb[i]));
    }
    rows.push(avg_row);
    // Ratio row (relative to BiSMO-NMN, the last column, as in the paper).
    let base_l2 = avg_l2[navg - 1].max(1e-9);
    let base_pvb = avg_pvb[navg - 1].max(1e-9);
    let mut ratio_row = vec!["Ratio".to_string()];
    for i in 0..navg {
        ratio_row.push(format!("{:.2}", avg_l2[i] / base_l2));
        ratio_row.push(format!("{:.2}", avg_pvb[i] / base_pvb));
    }
    rows.push(ratio_row);
    println!("{}", format_table(&headers, &rows));

    // Headline claims to eyeball against the paper.
    let idx = |m: Method| Method::all().iter().position(|x| *x == m).unwrap();
    let claims = [
        (
            "Abbe-MO vs DAC23-MILT L2 reduction (paper ~25%)",
            1.0 - avg_l2[idx(Method::AbbeMo)] / avg_l2[idx(Method::Milt)].max(1e-9),
        ),
        (
            "BiSMO-NMN vs AM(A~A) L2 reduction (paper ~41%)",
            1.0 - avg_l2[idx(Method::BismoNmn)] / avg_l2[idx(Method::AmAbbe)].max(1e-9),
        ),
        (
            "BiSMO-NMN vs AM(A~A) PVB reduction (paper ~46%)",
            1.0 - avg_pvb[idx(Method::BismoNmn)] / avg_pvb[idx(Method::AmAbbe)].max(1e-9),
        ),
        (
            "BiSMO-NMN vs DAC23-MILT L2 reduction (paper ~50%)",
            1.0 - avg_l2[idx(Method::BismoNmn)] / avg_l2[idx(Method::Milt)].max(1e-9),
        ),
    ];
    println!("Headline reductions (measured):");
    for (label, v) in claims {
        println!("  {label}: {:.1}%", 100.0 * v);
    }
    let _ = mean(&[]); // keep helper linked for doc parity
}
