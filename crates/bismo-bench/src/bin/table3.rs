//! Regenerates **Table 3** (L2 and PVB comparison across the eight methods
//! on the three suites, plus the Average and Ratio rows), running the sweep
//! on the parallel suite runner: `BISMO_JOBS` workers over a shared imaging
//! core, per-clip records streamed to `bench_results/BENCH_suite.json`
//! (interrupted sweeps resume from it), failures captured as data.

#![forbid(unsafe_code)]

use bismo_bench::{format_table, Harness, Method, RunnerOptions, Scale, SuiteSweep};

fn main() {
    let h = Harness::new(Scale::from_env());
    let opts = RunnerOptions::from_env();
    let report = SuiteSweep::new(&h).run(&opts);
    eprintln!("[table3] {}", report.summary());
    for rec in report.records.iter().filter(|r| !r.is_ok()) {
        eprintln!(
            "[table3] FAILED {} {} ({})",
            rec.item.method.name(),
            rec.clip_name,
            match &rec.outcome {
                bismo_bench::ItemOutcome::Failed { error } => error.as_str(),
                bismo_bench::ItemOutcome::Ok { .. } => unreachable!("filtered to failures"),
            }
        );
    }
    let comparisons = &report.comparisons;

    println!("\nTable 3: result comparison with SOTA (L2 / PVB in nm²)\n");
    let mut headers = vec!["Bench".to_string()];
    for m in Method::all() {
        headers.push(format!("{} L2", m.name()));
        headers.push(format!("{} PVB", m.name()));
    }
    let mut rows = Vec::new();
    // Per-suite rows.
    for cmp in comparisons {
        let mut row = vec![cmp.kind.name().to_string()];
        for agg in &cmp.methods {
            row.push(format!("{:.0}", agg.l2));
            row.push(format!("{:.0}", agg.pvb));
        }
        rows.push(row);
    }
    // Average row.
    let navg = Method::all().len();
    let mut avg_l2 = vec![0.0; navg];
    let mut avg_pvb = vec![0.0; navg];
    for cmp in comparisons {
        for (i, agg) in cmp.methods.iter().enumerate() {
            avg_l2[i] += agg.l2 / comparisons.len() as f64;
            avg_pvb[i] += agg.pvb / comparisons.len() as f64;
        }
    }
    let mut avg_row = vec!["Average".to_string()];
    for i in 0..navg {
        avg_row.push(format!("{:.0}", avg_l2[i]));
        avg_row.push(format!("{:.0}", avg_pvb[i]));
    }
    rows.push(avg_row);
    // Ratio row (relative to BiSMO-NMN, the last column, as in the paper).
    let base_l2 = avg_l2[navg - 1].max(1e-9);
    let base_pvb = avg_pvb[navg - 1].max(1e-9);
    let mut ratio_row = vec!["Ratio".to_string()];
    for i in 0..navg {
        ratio_row.push(format!("{:.2}", avg_l2[i] / base_l2));
        ratio_row.push(format!("{:.2}", avg_pvb[i] / base_pvb));
    }
    rows.push(ratio_row);
    println!("{}", format_table(&headers, &rows));

    // Headline claims to eyeball against the paper.
    let idx = |m: Method| Method::all().iter().position(|x| *x == m).unwrap();
    let claims = [
        (
            "Abbe-MO vs DAC23-MILT L2 reduction (paper ~25%)",
            1.0 - avg_l2[idx(Method::ABBE_MO)] / avg_l2[idx(Method::MILT)].max(1e-9),
        ),
        (
            "BiSMO-NMN vs AM(A~A) L2 reduction (paper ~41%)",
            1.0 - avg_l2[idx(Method::BISMO_NMN)] / avg_l2[idx(Method::AM_ABBE)].max(1e-9),
        ),
        (
            "BiSMO-NMN vs AM(A~A) PVB reduction (paper ~46%)",
            1.0 - avg_pvb[idx(Method::BISMO_NMN)] / avg_pvb[idx(Method::AM_ABBE)].max(1e-9),
        ),
        (
            "BiSMO-NMN vs DAC23-MILT L2 reduction (paper ~50%)",
            1.0 - avg_l2[idx(Method::BISMO_NMN)] / avg_l2[idx(Method::MILT)].max(1e-9),
        ),
    ];
    println!("Headline reductions (measured):");
    for (label, v) in claims {
        println!("  {label}: {:.1}%", 100.0 * v);
    }
}
