//! Regenerates **Figure 5** (mean and standard deviation of `L_smo` across
//! clips for the three BiSMO variants on ICCAD13 and ICCAD-L): writes
//! `bench_results/fig5_<suite>.csv` with mean/std columns per variant. The
//! variants are the three `BiSMO-*` registry entries.

#![forbid(unsafe_code)]

use bismo_bench::{mean, out_dir, std_dev, Harness, Scale, Suite, SuiteKind};
use bismo_core::{SmoProblem, SolverRegistry};

fn main() {
    let h = Harness::new(Scale::from_env());
    let (outer, clips) = match Scale::from_env() {
        Scale::Quick => (6, 2),
        Scale::Default => (25, 4),
        Scale::Paper => (60, 10),
    };
    let mut cfg = h.solver.clone();
    cfg.stop = None; // full fixed-length curves for the mean/STD bands
    cfg.bismo.outer_steps = outer;
    let variants = ["BiSMO-FD", "BiSMO-CG", "BiSMO-NMN"];

    for kind in [SuiteKind::Iccad13, SuiteKind::IccadL] {
        let suite = Suite::generate(kind, &h.optical, clips);
        // losses[variant][clip] = per-step loss series.
        let mut losses: Vec<Vec<Vec<f64>>> = vec![Vec::new(); variants.len()];
        for clip in suite.clips() {
            let problem =
                SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
                    .expect("problem setup");
            for (vi, name) in variants.iter().enumerate() {
                eprintln!("fig5 [{}] {} on {}", kind.name(), name, clip.name);
                let out = SolverRegistry::builtin()
                    .run(name, &problem, &cfg)
                    .expect(name);
                losses[vi].push(out.trace.records().iter().map(|r| r.loss).collect());
            }
        }

        let mut csv = String::from("step");
        for name in &variants {
            csv.push_str(&format!(",{name}_mean,{name}_std"));
        }
        csv.push('\n');
        for step in 0..outer {
            csv.push_str(&step.to_string());
            for series in &losses {
                let at_step: Vec<f64> =
                    series.iter().filter_map(|s| s.get(step).copied()).collect();
                csv.push_str(&format!(",{:.5},{:.5}", mean(&at_step), std_dev(&at_step)));
            }
            csv.push('\n');
        }
        let path = out_dir().join(format!(
            "fig5_{}.csv",
            kind.name().to_lowercase().replace('-', "")
        ));
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {}", path.display());
    }
    println!("Check: NMN lowest mean; CG largest STD (paper §4.2).");
}
