//! Regenerates **Figure 3** (log-scaled loss convergence of MO methods vs
//! SMO methods): writes one CSV per case to `bench_results/fig3_<case>.csv`
//! with a `log10(L_smo)` series per method, using the paper's 0.01 learning
//! rate. Every method runs through the solver registry; the per-case
//! budgets are plain `SolverConfig` edits.

#![forbid(unsafe_code)]

use bismo_bench::{out_dir, Harness, Scale, SuiteKind};
use bismo_core::{ConvergenceTrace, SmoProblem, SolverConfig, SolverRegistry};

fn main() {
    let h = Harness::new(Scale::from_env());
    let steps = match Scale::from_env() {
        Scale::Quick => 30,
        _ => 100,
    };
    let lr = 0.01; // Figure 3 caption: "with a 0.01 learning rate".

    // One shared config: fixed budgets (no early stopping — the figure
    // wants full curves), the caption's learning rate everywhere, and the
    // §4 ratio ξ_J = 10·ξ_M for the BiSMO inner loop.
    let mut cfg = SolverConfig {
        lr,
        stop: None,
        ..SolverConfig::default()
    };
    cfg.mo.steps = steps;
    cfg.am.rounds = (steps / 20).max(1);
    cfg.am.so_steps = 10;
    cfg.am.mo_steps = 10;
    cfg.am.phase_stop = None;
    cfg.bismo.outer_steps = steps;
    cfg.bismo.xi_j = lr * 10.0;
    cfg.bismo.xi_m = lr;

    // Paper cases: ICCAD test5, ICCAD test7, ICCAD-L test17, ISPD test62 —
    // we take one clip per suite plus a second ICCAD13 clip.
    let cases: Vec<(String, SuiteKind, usize)> = vec![
        ("iccad_a".into(), SuiteKind::Iccad13, 0),
        ("iccad_b".into(), SuiteKind::Iccad13, 1),
        ("iccadl".into(), SuiteKind::IccadL, 0),
        ("ispd".into(), SuiteKind::Ispd19, 0),
    ];
    let methods = [
        ("DAC23", "DAC23-MILT"),
        ("Abbe-MO", "Abbe-MO"),
        ("AM-SMO", "AM(A~A)"),
        ("BiSMO-FD", "BiSMO-FD"),
        ("BiSMO-CG", "BiSMO-CG"),
        ("BiSMO-NMN", "BiSMO-NMN"),
    ];

    for (label, kind, clip_idx) in cases {
        let suite = bismo_bench::Suite::generate(kind, &h.optical, clip_idx + 1);
        let clip = &suite.clips()[clip_idx];
        eprintln!("fig3 case {label}: {}", clip.name);
        let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
            .expect("problem setup");

        let mut series: Vec<(&str, ConvergenceTrace)> = Vec::new();
        for (column, solver_name) in methods {
            let out = SolverRegistry::builtin()
                .run(solver_name, &problem, &cfg)
                .expect(solver_name);
            series.push((column, out.trace));
        }

        // CSV: step, then one log10-loss column per method (blank when a
        // series is shorter).
        let max_len = series.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
        let mut csv = String::from("step");
        for (name, _) in &series {
            csv.push(',');
            csv.push_str(name);
        }
        csv.push('\n');
        for i in 0..max_len {
            csv.push_str(&i.to_string());
            for (_, t) in &series {
                csv.push(',');
                if let Some(r) = t.records().get(i) {
                    csv.push_str(&format!("{:.5}", r.loss.max(1e-12).log10()));
                }
            }
            csv.push('\n');
        }
        let path = out_dir().join(format!("fig3_{label}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {}", path.display());
    }
    println!(
        "Check: solid SMO curves (AM-SMO, BiSMO-*) settle below dashed MO curves;\n\
         AM-SMO zigzags; BiSMO-NMN lowest."
    );
}
