//! Regenerates **Figure 3** (log-scaled loss convergence of MO methods vs
//! SMO methods): writes one CSV per case to `bench_results/fig3_<case>.csv`
//! with a `log10(L_smo)` series per method, using the paper's 0.01 learning
//! rate.

use bismo_bench::{out_dir, Harness, Scale, SuiteKind};
use bismo_core::{
    run_abbe_mo, run_am_smo, run_bismo, run_milt_proxy, AmSmoConfig, BismoConfig, ConvergenceTrace,
    HypergradMethod, MoConfig, MoModel, SmoProblem,
};
use bismo_opt::OptimizerKind;

fn main() {
    let h = Harness::new(Scale::from_env());
    let steps = match Scale::from_env() {
        Scale::Quick => 30,
        _ => 100,
    };
    let lr = 0.01; // Figure 3 caption: "with a 0.01 learning rate".

    // Paper cases: ICCAD test5, ICCAD test7, ICCAD-L test17, ISPD test62 —
    // we take one clip per suite plus a second ICCAD13 clip.
    let cases: Vec<(String, SuiteKind, usize)> = vec![
        ("iccad_a".into(), SuiteKind::Iccad13, 0),
        ("iccad_b".into(), SuiteKind::Iccad13, 1),
        ("iccadl".into(), SuiteKind::IccadL, 0),
        ("ispd".into(), SuiteKind::Ispd19, 0),
    ];

    for (label, kind, clip_idx) in cases {
        let suite = bismo_bench::Suite::generate(kind, &h.optical, clip_idx + 1);
        let clip = &suite.clips()[clip_idx];
        eprintln!("fig3 case {label}: {}", clip.name);
        let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
            .expect("problem setup");
        let tj = problem.init_theta_j(h.template());
        let tm = problem.init_theta_m();
        let template = problem.source(&tj);

        let mut series: Vec<(&str, ConvergenceTrace)> = Vec::new();
        let mo_cfg = MoConfig {
            steps,
            lr,
            kind: OptimizerKind::Adam,
            stop: None,
        };
        series.push((
            "DAC23",
            run_milt_proxy(
                problem.abbe().core(),
                &h.settings,
                &clip.target,
                &template,
                mo_cfg,
            )
            .expect("milt")
            .trace,
        ));
        series.push((
            "Abbe-MO",
            run_abbe_mo(&problem, &tj, &tm, mo_cfg)
                .expect("abbe-mo")
                .trace,
        ));
        series.push((
            "AM-SMO",
            run_am_smo(
                &problem,
                &tj,
                &tm,
                AmSmoConfig {
                    rounds: (steps / 20).max(1),
                    so_steps: 10,
                    mo_steps: 10,
                    lr,
                    kind: OptimizerKind::Adam,
                    mo_model: MoModel::Abbe,
                    stop: None,
                    phase_stop: None,
                },
            )
            .expect("am-smo")
            .trace,
        ));
        for (name, method) in [
            ("BiSMO-FD", HypergradMethod::FiniteDiff),
            ("BiSMO-CG", HypergradMethod::ConjGrad { k: 5 }),
            ("BiSMO-NMN", HypergradMethod::Neumann { k: 5 }),
        ] {
            series.push((
                name,
                run_bismo(
                    &problem,
                    &tj,
                    &tm,
                    BismoConfig {
                        outer_steps: steps,
                        xi_j: lr * 10.0, // inner loop keeps the §4 ratio ξ_J = ξ
                        xi_m: lr,
                        method,
                        stop: None,
                        ..BismoConfig::default()
                    },
                )
                .expect(name)
                .trace,
            ));
        }

        // CSV: step, then one log10-loss column per method (blank when a
        // series is shorter).
        let max_len = series.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
        let mut csv = String::from("step");
        for (name, _) in &series {
            csv.push(',');
            csv.push_str(name);
        }
        csv.push('\n');
        for i in 0..max_len {
            csv.push_str(&i.to_string());
            for (_, t) in &series {
                csv.push(',');
                if let Some(r) = t.records().get(i) {
                    csv.push_str(&format!("{:.5}", r.loss.max(1e-12).log10()));
                }
            }
            csv.push('\n');
        }
        let path = out_dir().join(format!("fig3_{label}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {}", path.display());
    }
    println!(
        "Check: solid SMO curves (AM-SMO, BiSMO-*) settle below dashed MO curves;\n\
         AM-SMO zigzags; BiSMO-NMN lowest."
    );
}
