//! Regenerates the §3.1/§4.1 **runtime analysis**: per-iteration forward and
//! gradient cost of the accelerated Abbe model vs the Hopkins/SOCS model,
//! the thread-parallel scaling of Abbe over source points, and the hybrid's
//! TCC construction cost.

#![forbid(unsafe_code)]

use std::time::Instant;

use bismo_bench::{format_table, Harness, Scale};
use bismo_core::GradRequest;
use bismo_layout::Clip;
use bismo_litho::{AbbeImager, HopkinsImager};
use bismo_optics::RealField;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let h = Harness::new(Scale::from_env());
    let reps = match Scale::from_env() {
        Scale::Quick => 2,
        _ => 5,
    };
    let clip = Clip::simple_rect(&h.optical);
    let problem = bismo_core::SmoProblem::new(
        h.optical.clone(),
        h.settings.clone().without_pvb(),
        clip.target.clone(),
    )
    .expect("problem setup");
    let tj = problem.init_theta_j(h.template());
    let tm = problem.init_theta_m();
    let source = problem.source(&tj);
    let mask = problem.mask(&tm);
    let effective = source.effective_count(1e-9);
    // The shared per-configuration imaging state (pupil, shifted-pupil
    // table, FFT plan): every engine constructed below reuses it, so engine
    // construction in the sweeps costs no table re-evaluation.
    let core = problem.abbe().core();

    println!(
        "Abbe vs Hopkins runtime (mask {0}×{0}, N_j = {1}, σ = {2} effective points, Q = 24)\n",
        h.optical.mask_dim(),
        h.optical.source_dim(),
        effective
    );

    // TCC build (the hybrid AM-SMO per-round cost). Built against the
    // shared core, as the hybrid driver now does: only the Gram matrix and
    // eigendecomposition are paid per build, not the shifted pupils.
    let t_tcc = time(1, || {
        let _ = HopkinsImager::with_core(core, &source, 24).expect("tcc build");
    });
    let hopkins = HopkinsImager::with_core(core, &source, 24).expect("tcc build");

    let g = RealField::filled(h.optical.mask_dim(), 1.0);
    let headers: Vec<String> = ["Kernel", "Time (ms)"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut rows = Vec::new();

    let t_abbe_fwd = time(reps, || {
        let _ = problem.abbe().intensity(&source, &mask).expect("abbe fwd");
    });
    rows.push(vec![
        "Abbe forward".into(),
        format!("{:.2}", 1e3 * t_abbe_fwd),
    ]);

    let t_hop_fwd = time(reps, || {
        let _ = hopkins.intensity(&mask).expect("hopkins fwd");
    });
    rows.push(vec![
        "Hopkins forward".into(),
        format!("{:.2}", 1e3 * t_hop_fwd),
    ]);

    let t_abbe_grad = time(reps, || {
        let _ = problem
            .abbe()
            .grad_mask(&source, &mask, &g)
            .expect("abbe grad");
    });
    rows.push(vec![
        "Abbe mask-grad".into(),
        format!("{:.2}", 1e3 * t_abbe_grad),
    ]);

    let t_hop_grad = time(reps, || {
        let _ = hopkins.grad_mask(&mask, &g).expect("hopkins grad");
    });
    rows.push(vec![
        "Hopkins mask-grad".into(),
        format!("{:.2}", 1e3 * t_hop_grad),
    ]);

    let t_eval = time(reps, || {
        let _ = problem.eval(&tj, &tm, GradRequest::BOTH).expect("eval");
    });
    rows.push(vec![
        "Full SMO eval (both grads)".into(),
        format!("{:.2}", 1e3 * t_eval),
    ]);
    rows.push(vec![
        "TCC + SOCS build".into(),
        format!("{:.2}", 1e3 * t_tcc),
    ]);
    println!("{}", format_table(&headers, &rows));

    println!(
        "Complexity ratio σ/Q = {:.2} (paper §3.1: parallel time ratio ⌈σ/P⌉/⌈Q/P⌉ → 1 when P ≥ σ)\n",
        effective as f64 / 24.0
    );

    // Thread sweep over the source-point axis.
    let headers: Vec<String> = ["Threads", "Abbe forward (ms)", "Speedup"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut rows = Vec::new();
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let abbe = AbbeImager::from_core(core.clone()).with_threads(threads);
        let t = time(reps, || {
            let _ = abbe.intensity(&source, &mask).expect("fwd");
        });
        let b = *base.get_or_insert(t);
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", 1e3 * t),
            format!("{:.2}×", b / t),
        ]);
    }
    println!("{}", format_table(&headers, &rows));
    println!("(On a single-core host the sweep shows overhead, not speedup; the paper's GPU plays the role of P ≥ σ threads.)");
}
