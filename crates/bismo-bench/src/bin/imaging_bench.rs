//! Times forward + gradient imaging at several grid sizes and writes
//! `BENCH_imaging.json`, seeding the perf trajectory of the imaging hot path
//! (DESIGN.md §6). Also counts heap allocations per imaging call via a
//! wrapping global allocator, so the zero-allocation claim of the reusable
//! workspace pipeline is measured, not asserted.
//!
//! Usage:
//!
//! ```text
//! imaging_bench [--quick] [--batch] [--threads N] [--label NAME] [--out PATH] [--baseline PATH]
//! ```
//!
//! `--quick` restricts the sweep to the smallest grid (the CI smoke
//! configuration). `--batch` additionally measures the batched imaging axis
//! (DESIGN.md §9): the three dose-corner masks of the SMO objective
//! evaluated as one fused `intensity_batch` + `grad_mask_batch` call versus
//! three sequential single-mask passes, recording both totals, the
//! per-corner amortized cost of each path, and their ratio
//! (`batch_speedup`). Each `--batch` row also re-runs the fused pass on a
//! multi-threaded engine (`max(--threads, 2)` workers, reported under
//! `mt_*` keys), exercising the `BatchFft2::forward_threaded` /
//! `inverse_threaded` batch-FFT entry points of the fused path; those
//! spawn per-worker scratch, so `mt_fused_batch_allocs` is expected to be
//! nonzero — the zero-allocation claim is a single-thread property.
//! `--baseline` embeds a previously written report verbatim under a
//! `"baseline"` key, producing a before/after trajectory in one file.
//! `--gate FACTOR` (requires `--baseline`) turns the run into a soft perf
//! gate: if any grid's `abbe_forward_ms` **or `abbe_gradients_ms`** exceeds
//! `FACTOR ×` the baseline's figure for the same grid, the process exits
//! nonzero — CI runs `--quick --gate 1.5` so transform-layer regressions
//! fail the job instead of landing silently.
//!
//! Every run also times the opt-in real-input mask-spectrum path
//! (`abbe_forward_real_ms`, via [`AbbeImager::with_real_spectrum`]) next to
//! the default complex path, so the report tracks both variants; the
//! headline `abbe_forward_ms` stays on the default bit-stable path.
//!
//! Hopkins TCC acquisition is measured per grid as `hopkins_build_ms` (a
//! genuinely cold assembly, cache bypassed) versus `hopkins_build_cached_ms`
//! (the normal constructor path through the process-global [`KernelCache`]),
//! together with the hit/miss/disk-hit deltas those constructions produced.
//! With `BISMO_KERNEL_CACHE` set the cached figure spans the disk tier too,
//! which is what the CI cache smoke exercises: run twice at the same dir,
//! pass `--require-cache-hit` on the second run, and the process exits
//! nonzero unless at least one bundle was served from disk and every grid's
//! cached acquisition beat its cold build. The gate additionally covers
//! `hopkins_build_ms` when the baseline row carries it. Full (non-`--quick`)
//! runs append a top-level `"tcc_build"` section: one paper-scale build
//! (256² mask, 31×31 annular source, past the dense-eigensolver limit) timed
//! cold at one thread, cold multi-threaded, and warm from the cache —
//! `thread_speedup` scales with the machine's cores, `cache_speedup` is the
//! headline warm-vs-cold acquisition ratio.
//!
//! @bismo:allow-unsafe — the one sanctioned `unsafe` site class in the
//! workspace (DESIGN.md §12): the counting global allocator below must
//! implement the `unsafe trait GlobalAlloc`. Every `unsafe` carries its own
//! `// SAFETY:` rationale, enforced by bismo-analyze's unsafe-hygiene rule.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bismo_litho::{AbbeImager, DoseCorners, FieldBatch, HopkinsImager, KernelCache, TccBuild};
use bismo_optics::{OpticalConfig, Pupil, RealField, Source, SourceShape};

/// Allocation-counting wrapper around the system allocator. The counter is
/// process-global; timed sections run single-threaded so per-call deltas are
/// attributable.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the only addition is a relaxed
// atomic increment, which cannot violate the `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System::alloc`, to which this
    // delegates unchanged; the counter bump allocates nothing.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` are forwarded verbatim to `System::dealloc`,
    // which allocated them (every alloc path above delegates to `System`).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    // SAFETY: forwarded verbatim to `System::realloc` under the same
    // contract; only the relaxed counter bump is added.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Median-of-reps wall time in milliseconds.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct SizeResult {
    mask_dim: usize,
    source_dim: usize,
    effective_points: usize,
    abbe_forward_ms: f64,
    abbe_forward_real_ms: f64,
    abbe_gradients_ms: f64,
    abbe_grad_mask_ms: f64,
    hopkins_forward_ms: f64,
    hopkins_grad_mask_ms: f64,
    /// Cold TCC assembly + SOCS decomposition (cache bypassed) at the
    /// requested thread count.
    hopkins_build_ms: f64,
    /// The same acquisition through the process-global kernel cache, warm.
    hopkins_build_cached_ms: f64,
    /// In-memory cache hits produced by this grid's cache-path builds.
    hopkins_cache_hits: u64,
    /// Cold builds the cache had to run for this grid (expected: ≤ 1, and 0
    /// when the disk tier already held the bundle).
    hopkins_cache_misses: u64,
    /// Bundles served from the `BISMO_KERNEL_CACHE` disk tier.
    hopkins_cache_disk_hits: u64,
    abbe_forward_allocs: u64,
    abbe_gradients_allocs: u64,
    batch: Option<BatchResult>,
    /// The same fused 3-corner evaluation on a `threads > 1` engine, so the
    /// threaded batch-FFT path is measured next to the single-threaded one.
    batch_mt: Option<MtBatchResult>,
}

/// A [`BatchResult`] measured on a multi-threaded engine.
struct MtBatchResult {
    threads: usize,
    inner: BatchResult,
}

/// The fused 3-dose-corner evaluation (forward + mask gradient, the per-step
/// cost of every mask-optimizing method) versus three sequential single-mask
/// passes, both through the allocation-free `*_into` APIs.
struct BatchResult {
    /// Three sequential passes: `intensity_into` + `grad_mask_into` per
    /// dose corner.
    abbe_seq3_ms: f64,
    /// One fused pass: `intensity_batch_into` + `grad_mask_batch_into` at
    /// B = 3.
    abbe_fused3_ms: f64,
    /// Sequential cost amortized per corner (`abbe_seq3_ms / 3`).
    seq_corner_ms: f64,
    /// Fused cost amortized per corner (`abbe_fused3_ms / 3`).
    fused_corner_ms: f64,
    /// `abbe_seq3_ms / abbe_fused3_ms`.
    batch_speedup: f64,
    /// Heap allocations of one warm fused evaluation (expected: 0).
    fused_allocs: u64,
}

fn square_target(n: usize) -> RealField {
    RealField::from_fn(n, |r, c| {
        let lo = 3 * n / 8;
        let hi = 5 * n / 8;
        if (lo..hi).contains(&r) && (lo..hi).contains(&c) {
            1.0
        } else {
            0.0
        }
    })
}

/// Measures the fused 3-corner evaluation against three sequential passes.
/// Both sides run the allocation-free `*_into` variants on warm pools, so
/// the ratio isolates the batch axis itself (shared table walks + the
/// cache-blocked batch FFT) from allocator noise.
fn run_batch(
    abbe: &AbbeImager,
    source: &Source,
    mask: &RealField,
    g: &RealField,
    reps: usize,
) -> BatchResult {
    let n = mask.dim();
    let dose = DoseCorners::PAPER;
    let corners = [1.0, dose.min(), dose.max()];
    let corner_masks: Vec<RealField> = corners.iter().map(|&d| mask.map(|v| d * v)).collect();
    let masks = FieldBatch::from_fields(&corner_masks);
    let g_batch = FieldBatch::from_fields(&[g.clone(), g.clone(), g.clone()]);

    let mut image = RealField::zeros(n);
    let mut grad = RealField::zeros(n);
    let mut images = FieldBatch::zeros(n, 3);
    let mut grads = FieldBatch::zeros(n, 3);

    // Warm-up both pools.
    for m in &corner_masks {
        abbe.intensity_into(source, m, &mut image).expect("warm-up");
        abbe.grad_mask_into(source, m, g, &mut grad)
            .expect("warm-up");
    }
    abbe.intensity_batch_into(source, &masks, &mut images)
        .expect("warm-up batch");
    abbe.grad_mask_batch_into(source, &masks, &g_batch, &mut grads)
        .expect("warm-up batch");

    let before = alloc_count();
    abbe.intensity_batch_into(source, &masks, &mut images)
        .expect("counted batch forward");
    abbe.grad_mask_batch_into(source, &masks, &g_batch, &mut grads)
        .expect("counted batch gradient");
    let fused_allocs = alloc_count() - before;

    let abbe_seq3_ms = time_ms(reps, || {
        for m in &corner_masks {
            abbe.intensity_into(source, m, &mut image)
                .expect("seq forward");
            abbe.grad_mask_into(source, m, g, &mut grad)
                .expect("seq gradient");
        }
    });
    let abbe_fused3_ms = time_ms(reps, || {
        abbe.intensity_batch_into(source, &masks, &mut images)
            .expect("fused forward");
        abbe.grad_mask_batch_into(source, &masks, &g_batch, &mut grads)
            .expect("fused gradient");
    });

    BatchResult {
        abbe_seq3_ms,
        abbe_fused3_ms,
        seq_corner_ms: abbe_seq3_ms / 3.0,
        fused_corner_ms: abbe_fused3_ms / 3.0,
        batch_speedup: abbe_seq3_ms / abbe_fused3_ms,
        fused_allocs,
    }
}

fn run_size(
    mask_dim: usize,
    source_dim: usize,
    reps: usize,
    threads: usize,
    batch: bool,
) -> SizeResult {
    let cfg = OpticalConfig::builder()
        .mask_dim(mask_dim)
        .pixel_nm(16.0)
        .source_dim(source_dim)
        .build()
        .expect("bench optical config");
    let source = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    let mask = square_target(mask_dim).map(|v| 0.2 + 0.6 * v);
    let g = RealField::from_fn(mask_dim, |r, c| ((r * 7 + c * 3) % 5) as f64 / 5.0 - 0.4);

    let abbe = AbbeImager::new(&cfg)
        .expect("abbe engine")
        .with_threads(threads);

    // Cold acquisition first (cache bypassed, so it never reads the disk
    // tier and the figure stays honest even under BISMO_KERNEL_CACHE), then
    // the cache path: the first `new` below seeds the process-global cache
    // (or loads the disk tier), and the timed loop measures warm hits.
    let cold_build = TccBuild {
        threads,
        bypass_cache: true,
    };
    let hopkins_build_ms = time_ms(reps.min(3), || {
        let _ = HopkinsImager::with_pupil_build(&cfg, Pupil::new(&cfg), &source, 24, cold_build)
            .expect("hopkins cold build");
    });
    let stats_before = KernelCache::stats();
    let hopkins = HopkinsImager::new(&cfg, &source, 24).expect("hopkins engine");
    let hopkins_build_cached_ms = time_ms(reps, || {
        let _ = HopkinsImager::new(&cfg, &source, 24).expect("hopkins warm build");
    });
    let stats_after = KernelCache::stats();

    // Warm-up: populates workspace pools and page-faults the buffers so the
    // timed and allocation-counted sections see steady state.
    let i0 = abbe.intensity(&source, &mask).expect("warm-up forward");
    let _ = abbe
        .gradients(&source, &mask, &g, &i0)
        .expect("warm-up gradients");

    let before = alloc_count();
    let _ = abbe.intensity(&source, &mask).expect("counted forward");
    let abbe_forward_allocs = alloc_count() - before;

    let before = alloc_count();
    let _ = abbe
        .gradients(&source, &mask, &g, &i0)
        .expect("counted gradients");
    let abbe_gradients_allocs = alloc_count() - before;

    let abbe_forward_ms = time_ms(reps, || {
        let _ = abbe.intensity(&source, &mask).expect("abbe forward");
    });
    // The real-spectrum variant shares the core (and its caches) but keeps
    // its own workspace pool; warm it before timing.
    let abbe_real = abbe.clone().with_real_spectrum(true);
    let _ = abbe_real
        .intensity(&source, &mask)
        .expect("warm-up real forward");
    let abbe_forward_real_ms = time_ms(reps, || {
        let _ = abbe_real
            .intensity(&source, &mask)
            .expect("abbe real forward");
    });
    let abbe_gradients_ms = time_ms(reps, || {
        let _ = abbe
            .gradients(&source, &mask, &g, &i0)
            .expect("abbe gradients");
    });
    let abbe_grad_mask_ms = time_ms(reps, || {
        let _ = abbe.grad_mask(&source, &mask, &g).expect("abbe grad_mask");
    });
    let hopkins_forward_ms = time_ms(reps, || {
        let _ = hopkins.intensity(&mask).expect("hopkins forward");
    });
    let hopkins_grad_mask_ms = time_ms(reps, || {
        let _ = hopkins.grad_mask(&mask, &g).expect("hopkins grad_mask");
    });

    // The threads > 1 batch row: the same fused evaluation on a threaded
    // engine, routing the batched spectrum forward and the final adjoint
    // inverse through `BatchFft2::forward_threaded` / `inverse_threaded`.
    let mt_threads = threads.max(2);
    let batch_mt = batch.then(|| {
        let abbe_mt = abbe.clone().with_threads(mt_threads);
        MtBatchResult {
            threads: mt_threads,
            inner: run_batch(&abbe_mt, &source, &mask, &g, reps),
        }
    });

    SizeResult {
        mask_dim,
        source_dim,
        effective_points: source.effective_count(1e-9),
        abbe_forward_ms,
        abbe_forward_real_ms,
        abbe_gradients_ms,
        abbe_grad_mask_ms,
        hopkins_forward_ms,
        hopkins_grad_mask_ms,
        hopkins_build_ms,
        hopkins_build_cached_ms,
        hopkins_cache_hits: stats_after.hits - stats_before.hits,
        hopkins_cache_misses: stats_after.misses - stats_before.misses,
        hopkins_cache_disk_hits: stats_after.disk_hits - stats_before.disk_hits,
        abbe_forward_allocs,
        abbe_gradients_allocs,
        batch: batch.then(|| run_batch(&abbe, &source, &mask, &g, reps)),
        batch_mt,
    }
}

/// The paper-scale TCC acquisition benchmark (full mode only): one 256²
/// build past `DENSE_EIG_LIMIT`, timed cold single-threaded, cold
/// multi-threaded, and warm from the cache.
struct TccBuildResult {
    mask_dim: usize,
    source_dim: usize,
    effective_points: usize,
    cold_ms: f64,
    mt_threads: usize,
    cold_mt_ms: f64,
    warm_ms: f64,
    thread_speedup: f64,
    cache_speedup: f64,
}

fn run_tcc_build(threads: usize) -> TccBuildResult {
    let cfg = OpticalConfig::builder()
        .mask_dim(256)
        .pixel_nm(16.0)
        .source_dim(31)
        .build()
        .expect("tcc-build optical config");
    let source = Source::from_shape(
        &cfg,
        SourceShape::Annular {
            sigma_in: cfg.sigma_in(),
            sigma_out: cfg.sigma_out(),
        },
    );
    let effective_points = source.effective_count(1e-12);
    let q = 24;
    let cold = |threads| TccBuild {
        threads,
        bypass_cache: true,
    };
    let build_once = |b| {
        let _ = HopkinsImager::with_pupil_build(&cfg, Pupil::new(&cfg), &source, q, b)
            .expect("tcc build");
    };
    let cold_ms = time_ms(2, || build_once(cold(1)));
    let mt_threads = threads.max(2);
    let cold_mt_ms = time_ms(2, || build_once(cold(mt_threads)));
    // Seed the cache, then time warm acquisitions.
    let _engine = HopkinsImager::new(&cfg, &source, q).expect("tcc cache seed");
    let warm_ms = time_ms(5, || {
        let _ = HopkinsImager::new(&cfg, &source, q).expect("tcc warm");
    });
    TccBuildResult {
        mask_dim: cfg.mask_dim(),
        source_dim: cfg.source_dim(),
        effective_points,
        cold_ms,
        mt_threads,
        cold_mt_ms,
        warm_ms,
        thread_speedup: cold_ms / cold_mt_ms,
        cache_speedup: cold_ms / warm_ms,
    }
}

/// Minimal JSON string escaping for user-supplied labels.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_report(
    label: &str,
    threads: usize,
    results: &[SizeResult],
    tcc_build: Option<&TccBuildResult>,
    baseline: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"imaging\",\n  \"label\": \"{}\",\n",
        json_escape(label)
    ));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let batch_fields = match &r.batch {
            Some(b) => format!(
                ", \"abbe_seq3_ms\": {:.3}, \"abbe_fused3_ms\": {:.3}, \
                 \"seq_corner_ms\": {:.3}, \"fused_corner_ms\": {:.3}, \
                 \"batch_speedup\": {:.3}, \"fused_batch_allocs\": {}",
                b.abbe_seq3_ms,
                b.abbe_fused3_ms,
                b.seq_corner_ms,
                b.fused_corner_ms,
                b.batch_speedup,
                b.fused_allocs
            ),
            None => String::new(),
        };
        let mt_fields = match &r.batch_mt {
            Some(m) => format!(
                ", \"mt_batch_threads\": {}, \"mt_abbe_seq3_ms\": {:.3}, \
                 \"mt_abbe_fused3_ms\": {:.3}, \"mt_batch_speedup\": {:.3}, \
                 \"mt_fused_batch_allocs\": {}",
                m.threads,
                m.inner.abbe_seq3_ms,
                m.inner.abbe_fused3_ms,
                m.inner.batch_speedup,
                m.inner.fused_allocs
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"mask_dim\": {}, \"source_dim\": {}, \"effective_points\": {}, \
             \"abbe_forward_ms\": {:.3}, \"abbe_forward_real_ms\": {:.3}, \
             \"abbe_gradients_ms\": {:.3}, \
             \"abbe_grad_mask_ms\": {:.3}, \"hopkins_forward_ms\": {:.3}, \
             \"hopkins_grad_mask_ms\": {:.3}, \"hopkins_build_ms\": {:.3}, \
             \"hopkins_build_cached_ms\": {:.4}, \"hopkins_cache_hits\": {}, \
             \"hopkins_cache_misses\": {}, \"hopkins_cache_disk_hits\": {}, \
             \"abbe_forward_allocs\": {}, \
             \"abbe_gradients_allocs\": {}{}{}}}{}\n",
            r.mask_dim,
            r.source_dim,
            r.effective_points,
            r.abbe_forward_ms,
            r.abbe_forward_real_ms,
            r.abbe_gradients_ms,
            r.abbe_grad_mask_ms,
            r.hopkins_forward_ms,
            r.hopkins_grad_mask_ms,
            r.hopkins_build_ms,
            r.hopkins_build_cached_ms,
            r.hopkins_cache_hits,
            r.hopkins_cache_misses,
            r.hopkins_cache_disk_hits,
            r.abbe_forward_allocs,
            r.abbe_gradients_allocs,
            batch_fields,
            mt_fields,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(t) = tcc_build {
        out.push_str(&format!(
            ",\n  \"tcc_build\": {{\"mask_dim\": {}, \"source_dim\": {}, \
             \"effective_points\": {}, \"cold_ms\": {:.3}, \"mt_threads\": {}, \
             \"cold_mt_ms\": {:.3}, \"warm_ms\": {:.4}, \
             \"thread_speedup\": {:.3}, \"cache_speedup\": {:.1}}}",
            t.mask_dim,
            t.source_dim,
            t.effective_points,
            t.cold_ms,
            t.mt_threads,
            t.cold_mt_ms,
            t.warm_ms,
            t.thread_speedup,
            t.cache_speedup
        ));
    }
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        // The baseline file is itself a report this binary wrote, so it can
        // be embedded verbatim; re-indenting is cosmetic only.
        out.push_str(b.trim_end());
    }
    out.push_str("\n}\n");
    out
}

/// Pulls a numeric field's value out of a single-line JSON object emitted by
/// [`json_report`] (`"key": 12.345`). Returns `None` if the key is absent.
fn find_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One gated baseline row:
/// `(mask_dim, abbe_forward_ms, abbe_gradients_ms, hopkins_build_ms)`.
/// The latter two are `None` for baselines predating them in the gate (the
/// fields are always written today, but tolerating their absence keeps
/// hand-trimmed and older baselines usable).
type BaselineRow = (usize, f64, Option<f64>, Option<f64>);

/// Extracts the gated timings from the **first** `"results"` array of a
/// report this binary wrote. Scanning stops at the array's closing bracket,
/// so nested `"baseline"` reports embedded further down never leak into the
/// comparison.
fn parse_baseline_forward(report: &str) -> Vec<BaselineRow> {
    let mut in_results = false;
    let mut out = Vec::new();
    for line in report.lines() {
        let trimmed = line.trim();
        if !in_results {
            in_results = trimmed.starts_with("\"results\"");
            continue;
        }
        if trimmed.starts_with(']') {
            break;
        }
        if let (Some(dim), Some(ms)) = (
            find_num(trimmed, "mask_dim"),
            find_num(trimmed, "abbe_forward_ms"),
        ) {
            out.push((
                dim as usize,
                ms,
                find_num(trimmed, "abbe_gradients_ms"),
                find_num(trimmed, "hopkins_build_ms"),
            ));
        }
    }
    out
}

/// The soft perf gate: fails (returns `Err`) if any grid's current
/// `abbe_forward_ms`, `abbe_gradients_ms`, or cold `hopkins_build_ms`
/// exceeds `factor ×` the baseline's figure for the same grid. Grids (or
/// metrics) present on only one side are reported but never fail the gate —
/// a new size has no baseline to regress against.
fn check_gate(results: &[SizeResult], baseline: &str, factor: f64) -> Result<(), String> {
    let base = parse_baseline_forward(baseline);
    if base.is_empty() {
        return Err("baseline report contains no parsable results".into());
    }
    let mut failures = Vec::new();
    let mut gate_metric = |dim: usize, metric: &str, now_ms: f64, base_ms: f64| {
        if base_ms <= 0.0 {
            return;
        }
        let ratio = now_ms / base_ms;
        eprintln!(
            "[imaging_bench] gate {dim}²: {metric} {now_ms:.3} ms vs baseline {base_ms:.3} ms \
             ({ratio:.2}x, limit {factor:.2}x)"
        );
        if ratio > factor {
            failures.push(format!(
                "{dim}² {metric}: {now_ms:.3} ms is {ratio:.2}x the baseline {base_ms:.3} ms \
                 (limit {factor:.2}x)"
            ));
        }
    };
    for r in results {
        match base.iter().find(|(dim, _, _, _)| *dim == r.mask_dim) {
            Some((_, fwd_ms, grad_ms, build_ms)) => {
                gate_metric(r.mask_dim, "abbe_forward", r.abbe_forward_ms, *fwd_ms);
                match grad_ms {
                    Some(g) => {
                        gate_metric(r.mask_dim, "abbe_gradients", r.abbe_gradients_ms, *g);
                    }
                    None => eprintln!(
                        "[imaging_bench] gate {}²: baseline has no abbe_gradients_ms, skipping",
                        r.mask_dim
                    ),
                }
                match build_ms {
                    Some(b) => {
                        gate_metric(r.mask_dim, "hopkins_build", r.hopkins_build_ms, *b);
                    }
                    None => eprintln!(
                        "[imaging_bench] gate {}²: baseline has no hopkins_build_ms, skipping",
                        r.mask_dim
                    ),
                }
            }
            None => eprintln!(
                "[imaging_bench] gate {}²: no baseline entry, skipping",
                r.mask_dim
            ),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let mut quick = false;
    let mut batch = false;
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_imaging.json");
    let mut baseline_path: Option<String> = None;
    let mut threads = 1usize;
    let mut gate: Option<f64> = None;
    let mut require_cache_hit = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--batch" => batch = true,
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a value")),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads must be an integer");
            }
            "--gate" => {
                gate = Some(
                    args.next()
                        .expect("--gate needs a factor")
                        .parse()
                        .expect("--gate must be a number"),
                );
            }
            "--require-cache-hit" => require_cache_hit = true,
            other => panic!("unknown argument {other}"),
        }
    }
    if gate.is_some() && baseline_path.is_none() {
        panic!("--gate requires --baseline to compare against");
    }

    let sizes: &[(usize, usize, usize)] = if quick {
        &[(64, 7, 3)]
    } else {
        &[(64, 7, 9), (128, 9, 5), (256, 9, 3)]
    };

    let mut results = Vec::new();
    for &(mask_dim, source_dim, reps) in sizes {
        eprintln!("[imaging_bench] {mask_dim}x{mask_dim}, N_j = {source_dim} ...");
        let r = run_size(mask_dim, source_dim, reps, threads, batch);
        eprintln!(
            "[imaging_bench]   hopkins build: cold {:.1} ms, cached {:.3} ms \
             (hits {}, misses {}, disk hits {})",
            r.hopkins_build_ms,
            r.hopkins_build_cached_ms,
            r.hopkins_cache_hits,
            r.hopkins_cache_misses,
            r.hopkins_cache_disk_hits
        );
        if let Some(b) = &r.batch {
            eprintln!(
                "[imaging_bench]   3-corner eval: sequential {:.1} ms, fused {:.1} ms \
                 ({:.2}x, {:.1} -> {:.1} ms/corner, {} allocs warm)",
                b.abbe_seq3_ms,
                b.abbe_fused3_ms,
                b.batch_speedup,
                b.seq_corner_ms,
                b.fused_corner_ms,
                b.fused_allocs
            );
        }
        if let Some(m) = &r.batch_mt {
            eprintln!(
                "[imaging_bench]   3-corner eval @ {} threads: sequential {:.1} ms, \
                 fused {:.1} ms ({:.2}x, {} allocs warm)",
                m.threads,
                m.inner.abbe_seq3_ms,
                m.inner.abbe_fused3_ms,
                m.inner.batch_speedup,
                m.inner.fused_allocs
            );
        }
        results.push(r);
    }

    let tcc_build = (!quick).then(|| {
        eprintln!("[imaging_bench] paper-scale TCC build (256², N_j = 31) ...");
        let t = run_tcc_build(threads);
        eprintln!(
            "[imaging_bench]   σ = {}: cold {:.1} ms, cold @ {} threads {:.1} ms \
             ({:.2}x), warm {:.3} ms ({:.0}x)",
            t.effective_points,
            t.cold_ms,
            t.mt_threads,
            t.cold_mt_ms,
            t.thread_speedup,
            t.warm_ms,
            t.cache_speedup
        );
        t
    });

    let baseline = baseline_path
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));
    let report = json_report(
        &label,
        threads,
        &results,
        tcc_build.as_ref(),
        baseline.as_deref(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &report).expect("write report");
    println!("{report}");
    eprintln!("[imaging_bench] wrote {out_path}");

    if let (Some(factor), Some(base)) = (gate, baseline.as_deref()) {
        if let Err(msg) = check_gate(&results, base, factor) {
            eprintln!("[imaging_bench] PERF GATE FAILED: {msg}");
            std::process::exit(1);
        }
        eprintln!("[imaging_bench] perf gate passed (limit {factor:.2}x)");
    }

    // The CI cache smoke: a second run against a populated
    // `BISMO_KERNEL_CACHE` dir must serve at least one bundle from disk
    // (this process never built it) and beat every cold build.
    if require_cache_hit {
        let stats = KernelCache::stats();
        let mut failures = Vec::new();
        if stats.disk_hits == 0 {
            failures.push(format!(
                "no disk-tier hit (stats: {} hits, {} misses, {} disk hits)",
                stats.hits, stats.misses, stats.disk_hits
            ));
        }
        for r in &results {
            if r.hopkins_build_cached_ms >= r.hopkins_build_ms {
                failures.push(format!(
                    "{0}²: cached acquisition {1:.3} ms did not beat cold build {2:.3} ms",
                    r.mask_dim, r.hopkins_build_cached_ms, r.hopkins_build_ms
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!(
                "[imaging_bench] CACHE SMOKE FAILED: {}",
                failures.join("; ")
            );
            std::process::exit(1);
        }
        eprintln!(
            "[imaging_bench] cache smoke passed ({} disk hit(s), {} in-memory hit(s))",
            stats.disk_hits, stats.hits
        );
    }
}
