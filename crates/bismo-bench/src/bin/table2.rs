//! Regenerates **Table 2** (dataset details): generates each synthetic suite
//! at the harness scale and prints its statistics next to the published
//! targets.

#![forbid(unsafe_code)]

use bismo_bench::{format_table, Harness, Scale, SuiteKind};

fn main() {
    let h = Harness::new(Scale::from_env());
    let tile = h.optical.tile_nm();
    let area_scale = tile * tile / 4.0e6;
    println!(
        "Table 2: dataset details (tile {tile:.0} nm, area scale ×{area_scale:.3} vs the paper's 4 µm² window)\n"
    );
    let headers: Vec<String> = [
        "Dataset",
        "Avg area (nm²)",
        "Paper target ×scale",
        "Test num.",
        "Layer",
        "CD (nm)",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    for kind in SuiteKind::all() {
        let suite = h.suite(kind);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.0}", suite.average_area_nm2()),
            format!("{:.0}", kind.target_area_nm2() * area_scale),
            format!("{} (paper: {})", suite.clips().len(), kind.test_count()),
            kind.layer().to_string(),
            format!("{:.0}", kind.cd_nm()),
        ]);
    }
    println!("{}", format_table(&headers, &rows));
}
