//! Regenerates **Table 2** (dataset details): generates each synthetic suite
//! at the harness scale and prints its statistics next to the published
//! targets.

use bismo_bench::{format_table, Harness, Scale, SuiteKind};

fn main() {
    let h = Harness::new(Scale::from_env());
    let tile = h.optical.tile_nm();
    let area_scale = tile * tile / 4.0e6;
    println!(
        "Table 2: dataset details (tile {:.0} nm, area scale ×{:.3} vs the paper's 4 µm² window)\n",
        tile, area_scale
    );
    let headers: Vec<String> = [
        "Dataset",
        "Avg area (nm²)",
        "Paper target ×scale",
        "Test num.",
        "Layer",
        "CD (nm)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for kind in SuiteKind::all() {
        let suite = h.suite(kind);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.0}", suite.average_area_nm2()),
            format!("{:.0}", kind.target_area_nm2() * area_scale),
            format!("{} (paper: {})", suite.clips().len(), kind.test_count()),
            kind.layer().to_string(),
            format!("{:.0}", kind.cd_nm()),
        ]);
    }
    println!("{}", format_table(&headers, &rows));
}
