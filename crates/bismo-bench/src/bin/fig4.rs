//! Regenerates **Figure 4** (result samples): optimizes one ICCAD13-style
//! and one ISPD19-style clip with BiSMO-NMN (via the solver registry) and
//! writes source / mask / resist / target PGM panels to `bench_results/`.

#![forbid(unsafe_code)]

use bismo_bench::{out_dir, Harness, Scale, Suite, SuiteKind};
use bismo_core::{SmoProblem, SolverRegistry};
use bismo_layout::{upsample, write_pgm};
use bismo_optics::RealField;

fn main() {
    let h = Harness::new(Scale::from_env());
    let outer = match Scale::from_env() {
        Scale::Quick => 6,
        Scale::Default => 25,
        Scale::Paper => 40,
    };
    let mut cfg = h.solver.clone();
    cfg.bismo.outer_steps = outer;
    for kind in [SuiteKind::Iccad13, SuiteKind::Ispd19] {
        let suite = Suite::generate(kind, &h.optical, 1);
        let clip = &suite.clips()[0];
        eprintln!("fig4: optimizing {}", clip.name);
        let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
            .expect("problem setup");
        let out = SolverRegistry::builtin()
            .run("BiSMO-NMN", &problem, &cfg)
            .expect("bismo run");

        let tag = kind.name().to_lowercase().replace('-', "");
        let dir = out_dir();
        // Source panel (upsampled for visibility).
        let source = problem.source(&out.theta_j);
        let nj = source.dim();
        let source_field = RealField::from_vec(nj, source.weights().to_vec());
        let factor = (h.optical.mask_dim() / nj).max(1);
        write_pgm(
            &upsample(&source_field, factor),
            dir.join(format!("fig4_{tag}_source.pgm")),
        )
        .expect("write source panel");
        // Mask, resist, target panels.
        write_pgm(
            &problem.mask(&out.theta_m),
            dir.join(format!("fig4_{tag}_mask.pgm")),
        )
        .expect("write mask panel");
        let resist = problem
            .resist_nominal(&out.theta_j, &out.theta_m)
            .expect("resist image");
        write_pgm(&resist, dir.join(format!("fig4_{tag}_resist.pgm"))).expect("write resist");
        write_pgm(&clip.target, dir.join(format!("fig4_{tag}_target.pgm"))).expect("write target");
        println!(
            "wrote fig4_{tag}_{{source,mask,resist,target}}.pgm (final loss {:.3})",
            out.trace.final_loss().unwrap_or(f64::NAN)
        );
    }
}
