//! Registry smoke: enumerates every solver in the [`SolverRegistry`] and
//! runs **one session step per method** on a quick clip. A method that
//! compiles but panics on construction — or whose lazily-built state (TCC,
//! optimizers) blows up at the first step — fails this binary, and CI runs
//! it at `BISMO_SCALE=quick` on every push.

#![forbid(unsafe_code)]

use bismo_bench::{Clip, Harness, Scale};
use bismo_core::{Session, SessionStatus, SmoProblem, SolverRegistry};

fn main() {
    let h = Harness::new(Scale::from_env());
    let clip = Clip::simple_rect(&h.optical);
    let problem = SmoProblem::new(h.optical.clone(), h.settings.clone(), clip.target.clone())
        .expect("problem setup");
    let registry = SolverRegistry::builtin();
    let dim = h.optical.mask_dim();
    println!(
        "solver registry smoke: {} methods on {} ({dim}×{dim} mask)",
        registry.specs().len(),
        clip.name,
    );
    for spec in registry.specs() {
        let solver = spec.create(&problem, &h.solver);
        assert_eq!(solver.name(), spec.name(), "ctor/name mismatch");
        let mut session = Session::new(&problem, solver)
            .unwrap_or_else(|e| panic!("session for {:?}: {e}", spec.name()));
        let status = session
            .step()
            .unwrap_or_else(|e| panic!("first step of {:?}: {e}", spec.name()));
        let first_loss = session
            .trace()
            .records()
            .first()
            .map_or(f64::NAN, |r| r.loss);
        assert!(
            status == SessionStatus::Running || !session.trace().is_empty(),
            "{:?} finished without recording anything",
            spec.name()
        );
        assert!(
            first_loss.is_finite(),
            "{:?} recorded a non-finite first loss",
            spec.name()
        );
        println!(
            "  {:<10} first-step loss {:>12.6} ({:?}) — {}",
            spec.name(),
            first_loss,
            status,
            spec.summary()
        );
    }
    println!("all methods stepped cleanly");
}
