//! Integration tests of the parallel suite runner (DESIGN.md §7): the
//! determinism, failure-isolation and resume guarantees, exercised on a
//! deliberately tiny harness so the whole file runs in seconds.

use std::path::PathBuf;

use bismo_bench::{
    Harness, ItemOutcome, Method, RunnerOptions, Scale, SuiteComparison, SuiteKind, SuiteSweep,
};

/// A quick-scale harness with the optimization budgets cut to the bone:
/// enough to produce nonzero metrics, small enough for test time.
fn tiny_harness() -> Harness {
    let mut h = Harness::new(Scale::Quick);
    h.solver.mo.steps = 2;
    h.solver.am.rounds = 1;
    h.solver.am.so_steps = 2;
    h.solver.am.mo_steps = 2;
    h.solver.bismo.outer_steps = 2;
    h
}

fn metric_bits(comparisons: &[SuiteComparison]) -> Vec<(u64, u64, u64)> {
    comparisons
        .iter()
        .flat_map(|cmp| {
            cmp.methods
                .iter()
                .map(|agg| (agg.l2.to_bits(), agg.pvb.to_bits(), agg.epe.to_bits()))
        })
        .collect()
}

#[test]
fn one_worker_and_many_workers_agree_bit_for_bit() {
    let h = tiny_harness();
    let sweep = SuiteSweep::new(&h)
        .with_suites(&[SuiteKind::Iccad13])
        .with_methods(&[Method::NILT, Method::ABBE_MO, Method::BISMO_FD]);
    let opts = RunnerOptions::default().without_journal();
    let seq = sweep.run(&opts.clone().with_jobs(1));
    let par = sweep.run(&opts.with_jobs(4));
    assert_eq!(seq.jobs, 1);
    assert_eq!(par.jobs, 4);
    assert_eq!(seq.records.len(), par.records.len());
    assert_eq!(seq.failures, 0);
    assert_eq!(par.failures, 0);
    // Metric aggregates — and therefore every printed table — must be
    // byte-identical regardless of worker count (DESIGN.md §6 rule 3, one
    // level up). Only the timing columns may differ.
    assert_eq!(metric_bits(&seq.comparisons), metric_bits(&par.comparisons));
    for (a, b) in seq.records.iter().zip(&par.records) {
        assert_eq!(a.item, b.item);
        assert_eq!(a.clip_name, b.clip_name);
    }
    // Sanity: the runs actually computed something.
    assert!(seq.comparisons[0].methods[0].l2 > 0.0);
}

#[test]
fn cell_batched_metrics_match_per_clip_measurement_bit_for_bit() {
    // A multi-clip cell of a mask-only method takes the cell-batched path
    // (one fused measure_batch call over every clip's dose corners); the
    // aggregates must be bit-identical to per-clip measurement, and an
    // injected failure inside the cell must stay isolated.
    let mut h = tiny_harness();
    h.clips_per_suite = 3;
    let sweep = SuiteSweep::new(&h)
        .with_suites(&[SuiteKind::Iccad13])
        .with_methods(&[Method::NILT, Method::ABBE_MO]);
    let opts = RunnerOptions::default().without_journal().with_jobs(2);
    let batched = sweep.run(&opts.clone().with_cell_batching(true));
    let per_clip = sweep.run(&opts.clone().with_cell_batching(false));
    assert_eq!(batched.records.len(), per_clip.records.len());
    assert_eq!(batched.failures, 0);
    assert_eq!(
        metric_bits(&batched.comparisons),
        metric_bits(&per_clip.comparisons),
        "cell-batched metrics must be bit-identical to per-clip measurement"
    );
    for (a, b) in batched.records.iter().zip(&per_clip.records) {
        assert_eq!(a.item, b.item);
        match (&a.outcome, &b.outcome) {
            (
                ItemOutcome::Ok {
                    l2_nm2: l_a,
                    pvb_nm2: p_a,
                    epe: e_a,
                    ..
                },
                ItemOutcome::Ok {
                    l2_nm2: l_b,
                    pvb_nm2: p_b,
                    epe: e_b,
                    ..
                },
            ) => {
                assert_eq!(l_a.to_bits(), l_b.to_bits());
                assert_eq!(p_a.to_bits(), p_b.to_bits());
                assert_eq!(e_a.to_bits(), e_b.to_bits());
            }
            _ => panic!("expected ok outcomes on both paths"),
        }
    }

    // Failure isolation inside a batched cell: the poisoned clip fails at
    // optimization and is excluded from the fused metric pass; the healthy
    // clips still measure.
    let poisoned = sweep
        .clone()
        .with_injected_failure()
        .run(&opts.with_cell_batching(true));
    assert_eq!(poisoned.failures, 2, "one injected failure per method cell");
    for rec in &poisoned.records {
        match &rec.outcome {
            ItemOutcome::Failed { .. } => assert!(rec.clip_name.contains("injected-failure")),
            ItemOutcome::Ok { l2_nm2, .. } => assert!(l2_nm2.is_finite()),
        }
    }
}

#[test]
fn failing_item_is_recorded_and_sweep_completes() {
    let h = tiny_harness();
    let methods = [Method::NILT, Method::ABBE_MO];
    let sweep = SuiteSweep::new(&h)
        .with_suites(&[SuiteKind::Iccad13])
        .with_methods(&methods)
        .with_injected_failure();
    let report = sweep.run(&RunnerOptions::default().with_jobs(2).without_journal());

    // One genuine clip + one poisoned clip per method.
    assert_eq!(report.records.len(), methods.len() * 2);
    assert_eq!(report.failures, methods.len());
    for rec in &report.records {
        match &rec.outcome {
            ItemOutcome::Failed { error } => {
                assert!(rec.clip_name.contains("injected-failure"));
                assert!(error.contains("shape"), "unexpected error: {error}");
            }
            ItemOutcome::Ok { l2_nm2, .. } => assert!(l2_nm2.is_finite()),
        }
    }
    // Aggregates are computed over the surviving clips only.
    for cmp in &report.comparisons {
        for agg in &cmp.methods {
            assert!(agg.l2.is_finite() && agg.l2 > 0.0);
        }
    }

    // A cell with zero surviving clips must aggregate to NaN ("no data"),
    // never to a fabricated best-in-table 0.0.
    let mut empty = h.clone();
    empty.clips_per_suite = 0;
    let all_failed = SuiteSweep::new(&empty)
        .with_suites(&[SuiteKind::Iccad13])
        .with_methods(&[Method::NILT])
        .with_injected_failure()
        .run(&RunnerOptions::default().with_jobs(1).without_journal());
    assert_eq!(all_failed.failures, 1);
    assert!(all_failed.comparisons[0].methods[0].l2.is_nan());
    assert!(all_failed.comparisons[0].methods[0].tat.is_nan());
}

#[test]
fn interrupted_sweep_resumes_and_completed_sweep_reruns() {
    let h = tiny_harness();
    let sweep = SuiteSweep::new(&h)
        .with_suites(&[SuiteKind::Iccad13])
        .with_methods(&[Method::NILT, Method::MILT]);
    let journal: PathBuf = std::env::temp_dir().join(format!(
        "bismo_runner_test_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&journal);
    let opts = RunnerOptions::default()
        .with_jobs(2)
        .with_journal(journal.clone());

    let first = sweep.run(&opts);
    assert_eq!(first.resumed, 0);
    assert_eq!(first.executed, 2);

    // Simulate an interruption: drop the final aggregate line and the last
    // item record, leaving a partial journal whose final line is torn
    // mid-append (no closing brace, no newline) — the crash shape resume
    // exists for. The torn tail must be dropped, not destroy the journal.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.last().unwrap().contains("\"type\":\"aggregate\""));
    assert_eq!(lines.len(), 4, "header + 2 items + aggregate");
    std::fs::write(
        &journal,
        format!(
            "{}\n{}\n{{\"type\":\"item\",\"suite\":\"ICC",
            lines[0], lines[1]
        ),
    )
    .unwrap();

    let resumed = sweep.run(&opts);
    assert_eq!(resumed.resumed, 1, "one journaled item must be skipped");
    assert_eq!(resumed.executed, 1, "the dropped item must be re-run");
    assert_eq!(
        metric_bits(&first.comparisons),
        metric_bits(&resumed.comparisons),
        "resumed aggregates must match the uninterrupted run"
    );

    // The journal is now complete again, so the next invocation starts
    // fresh instead of replaying cached results forever.
    let rerun = sweep.run(&opts);
    assert_eq!(rerun.resumed, 0);
    assert_eq!(rerun.executed, 2);

    let _ = std::fs::remove_file(&journal);
}
